//===----------------------------------------------------------------------===//
///
/// \file
/// The HPDR-style auto-tuning splitter: pipelined domain decomposition
/// of each compress batch across reduction backends. Every batch is
/// cut at a chunk boundary into a device share and a CPU share — the
/// domains are independent, so both become ready at dedup-done and
/// replay concurrently through the BatchScheduler overlap window
/// (endStageCompressSliced). The split fraction comes from a tuner
/// that tracks *observed* per-backend rates — bytes per modelled
/// microsecond of slice completion, EWMA over recent batches, seeded
/// from the static CostModel quotes — and picks the fraction (over a
/// 1/16 grid that always includes the pure-CPU and pure-GPU
/// endpoints, so the tuned split can never predict worse than the
/// best static choice). In Auto mode the device share is additionally
/// pipelined at sub-batch granularity (one slice record per kernel
/// round trip), the splitter's pipeline-depth lever.
///
/// Forced modes (CpuOnly / GpuOnly with one device) are exact
/// pass-throughs: results, recipes, ledger charges and the scheduled
/// timeline are bit-identical to the classic single-backend stage —
/// the correctness bar tests/test_backend.cpp holds the splitter to.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_BACKEND_AUTOSPLITTER_H
#define PADRE_BACKEND_AUTOSPLITTER_H

#include "backend/CpuBackend.h"
#include "backend/GpuBackend.h"
#include "backend/MultiGpuBackend.h"
#include "fault/FaultInjector.h"

#include <memory>

namespace padre {
namespace backend {

/// Tuner/split state surfaced to reports and padrectl's run footer.
struct SplitterStats {
  /// Device byte share chosen for the most recent batch.
  double Fraction = 0.0;
  /// Device-side slice records of the most recent batch (the pipeline
  /// depth actually used).
  unsigned DeviceSlices = 0;
  /// Observed EWMA rates (bytes per modelled µs of slice completion).
  double CpuRateBytesPerUs = 0.0;
  double GpuRateBytesPerUs = 0.0;
  std::uint64_t Batches = 0;
  std::uint64_t CpuChunks = 0;
  std::uint64_t GpuChunks = 0;
};

class AutoSplitter {
public:
  /// Everything the splitter borrows from the pipeline. All references
  /// must outlive the splitter; \p Primary may be null only when
  /// Config.Split == CpuOnly (no device backend is built then).
  struct Setup {
    const CostModel &Model;
    ResourceLedger &Ledger;
    ThreadPool &Pool;
    BatchScheduler &Sched;
    GpuDevice *Primary = nullptr;
    CompressEngineConfig Engine;
    obs::ObsSinks Obs;
    fault::FaultInjector *Faults = nullptr;
    BackendConfig Config;
  };

  explicit AutoSplitter(const Setup &S);

  /// The compress stage under the splitter: partitions \p Chunks,
  /// executes the slices functionally (charging the ledger), replays
  /// them via BatchScheduler::endStageCompressSliced, and feeds the
  /// observed slice rates back to the tuner. Replaces the
  /// compressBatch + endStage(Compress) pair — the caller must still
  /// bracket with beginStage(Compress).
  void runCompressStage(std::span<const ChunkView> Chunks,
                        std::vector<CompressedChunk> &Out);

  const SplitterStats &stats() const { return Stats; }
  const BackendConfig &config() const { return Config; }

  /// Devices the device-side backend drives (0 when CPU-only).
  unsigned deviceCount() const {
    return Dev ? Dev->caps().DeviceCount : 0;
  }

  /// Store-raw fallbacks / device-fault CPU re-compressions across all
  /// backend engines (the splitter-mode sources of the pipeline
  /// report's fallback counters).
  std::uint64_t rawFallbacks() const {
    return Cpu->rawFallbacks() + (Dev ? Dev->rawFallbacks() : 0);
  }
  std::uint64_t deviceFallbacks() const {
    return Dev ? Dev->deviceFallbacks() : 0;
  }

  /// Rewinds backend-owned timeline state (extra devices' staging) in
  /// lockstep with BatchScheduler::reset.
  void resetTimelineState() {
    if (Dev)
      Dev->resetTimelineState();
  }

private:
  double chooseFraction(std::uint64_t TotalBytes) const;
  std::size_t cutIndex(std::span<const ChunkView> Chunks, double Fraction,
                       std::uint64_t TotalBytes) const;

  const CostModel &Model;
  ResourceLedger &Ledger;
  BatchScheduler &Sched;
  obs::TraceRecorder *Trace;
  BackendConfig Config;
  std::unique_ptr<CpuBackend> Cpu;
  std::unique_ptr<ReductionBackend> Dev; ///< null when CPU-only
  /// Reused slice-record scratch (no steady-state allocation).
  std::vector<BatchScheduler::CompressSlice> Records;
  // Tuner state: EWMA rates in bytes/µs; 0 = not yet seeded.
  double CpuRate = 0.0;
  double GpuRate = 0.0;
  double Alpha = 0.25; ///< 2 / (TunerWindow + 1)
  // The tuner's occupancy view (raw busy µs per pool), advanced at
  // every batch entry by the ledger deltas since the last batch and
  // clamped at ledger rebaselines — a measurement reset never zeroes
  // the learned occupancy gap, so the split does not re-learn from
  // scratch mid-run.
  double CpuSeenUs = 0.0;
  double GpuSeenUs = 0.0;
  double PcieSeenUs = 0.0;
  double LastCpuUs = 0.0;
  double LastGpuUs = 0.0;
  double LastPcieUs = 0.0;
  SplitterStats Stats;
  // Observability (null = disabled), cached at construction.
  obs::Gauge *SplitCpuGauge = nullptr;
  obs::Gauge *SplitGpuGauge = nullptr;
  obs::LogHistogram *BatchUsCpu = nullptr;
  obs::LogHistogram *BatchUsGpu = nullptr;
};

} // namespace backend
} // namespace padre

#endif // PADRE_BACKEND_AUTOSPLITTER_H
