//===----------------------------------------------------------------------===//
///
/// \file
/// The N-GPU backend: device 0 is the pipeline's primary GpuDevice;
/// devices 1..N-1 are instantiated here with their own staging slots
/// and async queues, replaying on aux timeline lanes
/// (ResourceLedger::addTimelineLane) that mirror Resource::Gpu/Pcie.
/// Busy time stays on the shared per-resource accumulators — charges
/// are bit-identical across device counts; only the scheduled timeline
/// (and the capacity term of makespanSeconds) fans out per device.
///
/// Work distribution is HPDR-style static round-robin over compression
/// sub-batches: sub-batch i goes to device i mod N, each device's
/// sub-batches chaining on its own lanes with its own double-buffered
/// staging. One engine per device keeps the op chains, fault fallback
/// and fallback accounting per device.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_BACKEND_MULTIGPUBACKEND_H
#define PADRE_BACKEND_MULTIGPUBACKEND_H

#include "backend/ReductionBackend.h"

#include <memory>
#include <string>

namespace padre {

namespace fault {
class FaultInjector;
} // namespace fault

namespace backend {

class MultiGpuBackend final : public ReductionBackend {
public:
  /// \p Primary is the pipeline's device 0 (not owned; must outlive
  /// the backend). \p Devices >= 2 is the total device count; the
  /// extra devices are created here against the same model/ledger and
  /// inherit \p Primary's mixed-mode flag, \p Obs and \p Faults.
  MultiGpuBackend(const CostModel &Model, ResourceLedger &Ledger,
                  ThreadPool &Pool, GpuDevice &Primary,
                  CompressEngineConfig Engine, const obs::ObsSinks &Obs,
                  fault::FaultInjector *Faults, unsigned Devices);

  const BackendCaps &caps() const override { return Caps; }
  double quoteCompressUs(std::uint64_t Bytes,
                         std::size_t Chunks) const override;
  void executeSlice(std::span<const ChunkView> Chunks, std::size_t Begin,
                    std::size_t End, std::vector<CompressedChunk> &Out,
                    std::vector<BatchScheduler::CompressSlice> &Slices,
                    bool Pipelined) override;
  std::uint64_t rawFallbacks() const override;
  std::uint64_t deviceFallbacks() const override;
  void resetTimelineState() override;

  unsigned deviceCount() const {
    return static_cast<unsigned>(Units.size());
  }

private:
  /// One modelled device with its engine and timeline lanes.
  struct Unit {
    GpuDevice *Device = nullptr; ///< Units[0] aliases the primary
    std::unique_ptr<GpuDevice> Owned;
    std::unique_ptr<CompressEngine> Engine;
    unsigned GpuLane = 0;
    unsigned PcieLane = 0;
  };

  CostModel Model;
  ResourceLedger &Ledger;
  std::vector<Unit> Units;
  std::string NameStr;
  std::string SpanNameStr;
  BackendCaps Caps;
};

} // namespace backend
} // namespace padre

#endif // PADRE_BACKEND_MULTIGPUBACKEND_H
