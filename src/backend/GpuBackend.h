//===----------------------------------------------------------------------===//
///
/// \file
/// The single-GPU backend: wraps a GpuLane-mode CompressEngine driving
/// the pipeline's primary GpuDevice (device 0). Its slice records
/// replay on the Resource::Gpu / Resource::Pcie timeline lanes with the
/// device's own double-buffered staging, so a full-batch unpipelined
/// slice reproduces the classic GpuCompress stage bit-exactly —
/// charges, op chain and timeline included.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_BACKEND_GPUBACKEND_H
#define PADRE_BACKEND_GPUBACKEND_H

#include "backend/ReductionBackend.h"

namespace padre {
namespace backend {

class GpuBackend final : public ReductionBackend {
public:
  /// \p Device is the pipeline's primary device (index 0); must
  /// outlive the backend. \p Engine is the base engine configuration;
  /// its Backend field is forced to GpuLane.
  GpuBackend(const CostModel &Model, ResourceLedger &Ledger,
             ThreadPool &Pool, GpuDevice &Device,
             CompressEngineConfig Engine, const obs::ObsSinks &Obs);

  const BackendCaps &caps() const override { return Caps; }
  double quoteCompressUs(std::uint64_t Bytes,
                         std::size_t Chunks) const override;
  void executeSlice(std::span<const ChunkView> Chunks, std::size_t Begin,
                    std::size_t End, std::vector<CompressedChunk> &Out,
                    std::vector<BatchScheduler::CompressSlice> &Slices,
                    bool Pipelined) override;
  std::uint64_t rawFallbacks() const override {
    return Engine.rawFallbacks();
  }
  std::uint64_t deviceFallbacks() const override {
    return Engine.gpuFallbackCount();
  }

private:
  /// Runs [Begin, End) through the engine with the device op log armed
  /// and appends one slice record carrying the captured chain.
  void runRange(std::span<const ChunkView> Chunks, std::size_t Begin,
                std::size_t End, std::vector<CompressedChunk> &Out,
                std::vector<BatchScheduler::CompressSlice> &Slices);

  CostModel Model;
  ResourceLedger &Ledger;
  GpuDevice &Device;
  CompressEngine Engine;
  BackendCaps Caps;
};

/// The shared static GPU quote (also the per-device seed of the N-GPU
/// backend): PCIe round trip + launch + pessimistic lockstep kernel +
/// pool-width CPU refinement, per compression sub-batch.
double gpuQuoteCompressUs(const CostModel &Model, std::uint64_t Bytes,
                          std::size_t Chunks);

} // namespace backend
} // namespace padre

#endif // PADRE_BACKEND_GPUBACKEND_H
