//===----------------------------------------------------------------------===//
///
/// \file
/// Single-GPU backend implementation.
///
//===----------------------------------------------------------------------===//

#include "backend/GpuBackend.h"

#include <algorithm>
#include <cassert>

using namespace padre;
using namespace padre::backend;

static CompressEngineConfig gpuConfig(CompressEngineConfig Engine) {
  Engine.Backend = CompressBackend::GpuLane;
  return Engine;
}

double padre::backend::gpuQuoteCompressUs(const CostModel &Model,
                                          std::uint64_t Bytes,
                                          std::size_t Chunks) {
  if (Chunks == 0)
    return 0.0;
  const std::size_t SubBatch =
      std::max<std::size_t>(1, Model.Gpu.CompressBatchChunks);
  const double SubBatches = static_cast<double>(
      (Chunks + SubBatch - 1) / SubBatch);
  // Pessimistic all-literal lockstep kernel: every wavefront is gated
  // by its literal-heaviest lane, so the whole payload scans at the
  // literal rate (plus per-lane setup folded into the per-chunk term).
  const double KernelUs =
      Model.Gpu.LzLiteralPerByteNs * 1e-3 * static_cast<double>(Bytes) +
      Model.Gpu.LaneSetupNs * 1e-3 * static_cast<double>(Chunks);
  // One H2D of the payload and one D2H of roughly the payload (the
  // unrefined token streams are not smaller in the worst case), per
  // sub-batch round trip.
  const double PcieUs = 2.0 * (Model.Pcie.PerTransferUs * SubBatches +
                               static_cast<double>(Bytes) /
                                   (Model.Pcie.GigabytesPerSec * 1e3));
  const double LaunchUs = Model.Gpu.LaunchUs * SubBatches;
  // CPU refinement follows the kernels, at full pool width.
  const double RefineUs =
      (static_cast<double>(Chunks) * Model.Cpu.PostSetupUs +
       Model.Cpu.PostPerByteNs * 1e-3 * static_cast<double>(Bytes)) /
      static_cast<double>(Model.Cpu.Threads);
  return PcieUs + LaunchUs + KernelUs + RefineUs;
}

GpuBackend::GpuBackend(const CostModel &Model, ResourceLedger &Ledger,
                       ThreadPool &Pool, GpuDevice &Device,
                       CompressEngineConfig Engine, const obs::ObsSinks &Obs)
    : Model(Model), Ledger(Ledger), Device(Device),
      Engine(Model, Ledger, Pool, &Device, gpuConfig(Engine), Obs) {
  assert(Device.present() && "GPU backend without a modelled GPU");
  Caps.Name = "gpu";
  Caps.SpanName = "backend:gpu";
  Caps.DeviceCount = 1;
}

double GpuBackend::quoteCompressUs(std::uint64_t Bytes,
                                   std::size_t Chunks) const {
  return gpuQuoteCompressUs(Model, Bytes, Chunks);
}

void GpuBackend::runRange(
    std::span<const ChunkView> Chunks, std::size_t Begin, std::size_t End,
    std::vector<CompressedChunk> &Out,
    std::vector<BatchScheduler::CompressSlice> &Slices) {
  BatchScheduler::CompressSlice Slice;
  Slice.GpuLane = static_cast<unsigned>(Resource::Gpu);
  Slice.PcieLane = static_cast<unsigned>(Resource::Pcie);
  Slice.Staging = &Device.staging();
  // Capture this range's async submissions on our own log (the
  // scheduler's stage-level log stays empty; the slice replay is the
  // only consumer). CPU attribution by busy snapshot, as in CpuBackend
  // — for a device range this is the refinement pass plus any
  // fault-fallback re-compression.
  const double CpuBeforeUs = Ledger.busyMicros(Resource::CpuPool);
  Device.setOpLog(&Slice.Ops);
  Engine.compressSlice(Chunks, Begin, End, Out);
  Device.setOpLog(nullptr);
  Slice.CpuUs = Ledger.busyMicros(Resource::CpuPool) - CpuBeforeUs;
  Slices.push_back(std::move(Slice));
}

void GpuBackend::executeSlice(
    std::span<const ChunkView> Chunks, std::size_t Begin, std::size_t End,
    std::vector<CompressedChunk> &Out,
    std::vector<BatchScheduler::CompressSlice> &Slices, bool Pipelined) {
  if (Begin >= End)
    return;
  if (!Pipelined) {
    runRange(Chunks, Begin, End, Out, Slices);
    return;
  }
  // Pipelined: one slice record per compression sub-batch, so each
  // sub-batch's CPU refinement replays after *its* kernel round trip
  // instead of after the whole chain — the splitter's pipeline-depth
  // lever. Results and charges are unchanged; only the timeline
  // placement differs.
  const std::size_t SubBatch =
      std::max<std::size_t>(1, Model.Gpu.CompressBatchChunks);
  for (std::size_t B = Begin; B < End; B += SubBatch)
    runRange(Chunks, B, std::min(End, B + SubBatch), Out, Slices);
}
