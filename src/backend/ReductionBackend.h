//===----------------------------------------------------------------------===//
///
/// \file
/// The portable reduction-backend interface — the new layer between the
/// compression engines and the batch scheduler (DESIGN.md decision 17).
/// A backend wraps one parallel execution substrate (the CPU pool, the
/// modelled GPU, or N modelled GPUs) behind three operations:
///
///   * caps()             — static capabilities (name, device count),
///   * quoteCompressUs()  — a modelled cost quote from the static
///                          CostModel constants, used to seed the
///                          AutoSplitter's tuner before any observation
///                          exists,
///   * executeSlice()     — run one contiguous slice of a batch
///                          functionally (charging the ledger) and
///                          append the BatchScheduler::CompressSlice
///                          records that replay it onto the timeline.
///
/// Slice ownership: the splitter owns the full batch's output vector
/// and hands each backend a [Begin, End) range; backends write only
/// their range, so slices compose into exactly the single-engine
/// output no matter how the batch was partitioned (the bit-exactness
/// bar of tests/test_backend.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_BACKEND_REDUCTIONBACKEND_H
#define PADRE_BACKEND_REDUCTIONBACKEND_H

#include "backend/BackendConfig.h"
#include "core/BatchScheduler.h"
#include "core/CompressEngine.h"

#include <cstdint>
#include <span>
#include <vector>

namespace padre {
namespace backend {

/// Static backend capabilities.
struct BackendCaps {
  /// Short stable name ("cpu", "gpu", "gpu2", ...). Points at storage
  /// owned by the backend; valid for its lifetime.
  const char *Name = "cpu";
  /// Span label ("backend:cpu", ...) — a stable string for the trace
  /// recorder, which never copies names.
  const char *SpanName = "backend:cpu";
  /// Modelled GPUs this backend drives (0 = pure CPU).
  unsigned DeviceCount = 0;
};

/// One parallel execution substrate for the compression stage.
class ReductionBackend {
public:
  virtual ~ReductionBackend() = default;

  virtual const BackendCaps &caps() const = 0;

  /// Modelled stage time (µs, at the backend's full width) to compress
  /// \p Chunks chunks totalling \p Bytes payload bytes — a static
  /// quote from the CostModel constants, pessimistic (all-literal
  /// data). Only used to seed the tuner; observed rates take over
  /// after the first batch.
  virtual double quoteCompressUs(std::uint64_t Bytes,
                                 std::size_t Chunks) const = 0;

  /// Compresses Chunks[Begin, End) into Out[Begin, End) functionally,
  /// charging the ledger, and appends one or more CompressSlice
  /// records (op chains, CPU attribution, device lanes) to \p Slices
  /// for the scheduler's timeline replay. \p Out must be pre-sized to
  /// Chunks.size(). With \p Pipelined the backend may emit one record
  /// per device sub-batch so refinement overlaps later kernels; without
  /// it the slice is one record — the forced-{0,1} pass-through modes
  /// rely on that to reproduce the classic timeline bit-exactly.
  /// Device faults are absorbed per sub-batch (CPU re-compression), so
  /// results are bit-exact either way.
  virtual void
  executeSlice(std::span<const ChunkView> Chunks, std::size_t Begin,
               std::size_t End, std::vector<CompressedChunk> &Out,
               std::vector<BatchScheduler::CompressSlice> &Slices,
               bool Pipelined) = 0;

  /// Cumulative store-raw fallbacks across this backend's engines.
  virtual std::uint64_t rawFallbacks() const = 0;

  /// Cumulative device-fault CPU re-compressions (0 for pure CPU).
  virtual std::uint64_t deviceFallbacks() const { return 0; }

  /// Rewinds backend-owned timeline state (extra devices' staging
  /// slots) in lockstep with BatchScheduler::reset.
  virtual void resetTimelineState() {}
};

} // namespace backend
} // namespace padre

#endif // PADRE_BACKEND_REDUCTIONBACKEND_H
