//===----------------------------------------------------------------------===//
///
/// \file
/// CPU backend implementation.
///
//===----------------------------------------------------------------------===//

#include "backend/CpuBackend.h"

using namespace padre;
using namespace padre::backend;

static CompressEngineConfig cpuConfig(CompressEngineConfig Engine) {
  Engine.Backend = CompressBackend::Cpu;
  return Engine;
}

CpuBackend::CpuBackend(const CostModel &Model, ResourceLedger &Ledger,
                       ThreadPool &Pool, CompressEngineConfig Engine,
                       const obs::ObsSinks &Obs)
    : Model(Model), Ledger(Ledger),
      Engine(Model, Ledger, Pool, /*Device=*/nullptr, cpuConfig(Engine),
             Obs) {
  Caps.Name = "cpu";
  Caps.SpanName = "backend:cpu";
  Caps.DeviceCount = 0;
}

double CpuBackend::quoteCompressUs(std::uint64_t Bytes,
                                   std::size_t Chunks) const {
  // Pessimistic all-literal quote: setup per chunk plus the literal
  // scan rate, at full pool width.
  const double WorkUs =
      static_cast<double>(Chunks) * Model.Cpu.LzSetupUs +
      Model.Cpu.LzLiteralPerByteNs * 1e-3 * static_cast<double>(Bytes);
  return WorkUs / static_cast<double>(Model.Cpu.Threads);
}

void CpuBackend::executeSlice(
    std::span<const ChunkView> Chunks, std::size_t Begin, std::size_t End,
    std::vector<CompressedChunk> &Out,
    std::vector<BatchScheduler::CompressSlice> &Slices, bool) {
  if (Begin >= End)
    return;
  // Attribution by busy snapshot: the splitter runs slices
  // sequentially on the pipeline thread, so the pool delta across this
  // call is exactly this slice's charge.
  const double CpuBeforeUs = Ledger.busyMicros(Resource::CpuPool);
  Engine.compressSlice(Chunks, Begin, End, Out);
  BatchScheduler::CompressSlice Slice;
  Slice.CpuUs = Ledger.busyMicros(Resource::CpuPool) - CpuBeforeUs;
  Slices.push_back(std::move(Slice));
}
