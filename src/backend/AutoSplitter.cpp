//===----------------------------------------------------------------------===//
///
/// \file
/// Auto-tuning splitter implementation.
///
//===----------------------------------------------------------------------===//

#include "backend/AutoSplitter.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace padre;
using namespace padre::backend;

const char *padre::backend::splitModeName(SplitMode Mode) {
  switch (Mode) {
  case SplitMode::Auto:
    return "auto";
  case SplitMode::CpuOnly:
    return "cpu";
  case SplitMode::GpuOnly:
    return "gpu";
  case SplitMode::Fixed:
    return "fixed";
  }
  assert(false && "Unknown split mode");
  return "?";
}

namespace {

/// Split-fraction candidates: a 1/16 grid. Including both endpoints is
/// what makes the tuned split never predict worse than the best static
/// mode — pure-CPU and pure-GPU are always on the menu.
constexpr int FractionGridSteps = 16;

/// Slice completion times below the ledger's resolution observe
/// nothing (an empty share has no rate).
constexpr double MinElapsedUs = 1e-3;

} // namespace

AutoSplitter::AutoSplitter(const Setup &S)
    : Model(S.Model), Ledger(S.Ledger), Sched(S.Sched), Trace(S.Obs.Trace),
      Config(S.Config) {
  Config.GpuDevices = std::max(1u, Config.GpuDevices);
  Config.TunerWindow = std::max(1u, Config.TunerWindow);
  Alpha = 2.0 / (static_cast<double>(Config.TunerWindow) + 1.0);
  Cpu = std::make_unique<CpuBackend>(S.Model, S.Ledger, S.Pool, S.Engine,
                                     S.Obs);
  if (Config.Split != SplitMode::CpuOnly) {
    assert(S.Primary && S.Primary->present() &&
           "Device-capable split modes need the pipeline's GPU");
    if (Config.GpuDevices >= 2)
      Dev = std::make_unique<MultiGpuBackend>(S.Model, S.Ledger, S.Pool,
                                              *S.Primary, S.Engine, S.Obs,
                                              S.Faults, Config.GpuDevices);
    else
      Dev = std::make_unique<GpuBackend>(S.Model, S.Ledger, S.Pool,
                                         *S.Primary, S.Engine, S.Obs);
  }
  if (S.Obs.Metrics) {
    obs::MetricsRegistry &M = *S.Obs.Metrics;
    SplitCpuGauge = &M.gauge(
        "padre_backend_split_fraction{backend=\"cpu\"}",
        "Byte share of the last batch routed to the backend");
    SplitGpuGauge = &M.gauge(
        "padre_backend_split_fraction{backend=\"gpu\"}",
        "Byte share of the last batch routed to the backend");
    BatchUsCpu = &M.histogram(
        "padre_backend_batch_us{backend=\"cpu\"}",
        "Modelled slice completion time per batch (microseconds)",
        1.0, 2.0, 24);
    BatchUsGpu = &M.histogram(
        "padre_backend_batch_us{backend=\"gpu\"}",
        "Modelled slice completion time per batch (microseconds)",
        1.0, 2.0, 24);
  }
}

double AutoSplitter::chooseFraction(std::uint64_t TotalBytes) const {
  switch (Config.Split) {
  case SplitMode::CpuOnly:
    return 0.0;
  case SplitMode::GpuOnly:
    return Dev ? 1.0 : 0.0;
  case SplitMode::Fixed:
    return Dev ? std::clamp(Config.Fraction, 0.0, 1.0) : 0.0;
  case SplitMode::Auto:
    break;
  }
  if (!Dev)
    return 0.0;
  assert(CpuRate > 0.0 && GpuRate > 0.0 && "Tuner rates not seeded");
  // HPDR-style idle-resource routing: cut where the projected
  // *cumulative* normalized occupancy of the two pools balances, not
  // where this stage's slice latencies do. The CPU pool also carries
  // chunking, dedup and refinement, so its occupancy head start routes
  // compression to the device until the device lanes catch up — over a
  // run the split converges on the cut that minimizes the compute
  // makespan. Deterministic: the ledger's busy totals at batch entry
  // are a pure function of the batches already executed.
  const double Threads =
      static_cast<double>(std::max(1u, Model.Cpu.Threads));
  const double Devices = static_cast<double>(Config.GpuDevices);
  // The splitter's own monotone occupancy view, not the raw ledger:
  // a measurement reset rebaselines the ledger to ~0 mid-run, and
  // re-learning the occupancy gap from scratch would make the first
  // measured batches split against a bottleneck that isn't there.
  const double CpuBusy = CpuSeenUs / Threads;
  const double DevBusy = std::fmax(GpuSeenUs, PcieSeenUs) / Devices;
  const double Bytes = static_cast<double>(TotalBytes);
  // Scan the grid from the device end so ties resolve toward the
  // device — at equal projections the GPU share frees CPU width for
  // the dedup front half. Both endpoints are on the menu, so the tuned
  // split never projects worse than the better static mode.
  double BestFraction = 1.0;
  double BestTime = std::numeric_limits<double>::infinity();
  for (int Step = FractionGridSteps; Step >= 0; --Step) {
    const double F =
        static_cast<double>(Step) / static_cast<double>(FractionGridSteps);
    const double T = std::fmax(CpuBusy + (1.0 - F) * Bytes / CpuRate,
                               DevBusy + F * Bytes / GpuRate);
    if (T < BestTime) {
      BestTime = T;
      BestFraction = F;
    }
  }
  return BestFraction;
}

std::size_t AutoSplitter::cutIndex(std::span<const ChunkView> Chunks,
                                   double Fraction,
                                   std::uint64_t TotalBytes) const {
  if (Fraction <= 0.0)
    return 0;
  if (Fraction >= 1.0)
    return Chunks.size();
  const double TargetBytes = Fraction * static_cast<double>(TotalBytes);
  std::uint64_t Acc = 0;
  std::size_t Cut = 0;
  while (Cut < Chunks.size() &&
         static_cast<double>(Acc) < TargetBytes) {
    Acc += Chunks[Cut].Data.size();
    ++Cut;
  }
  return Cut;
}

void AutoSplitter::runCompressStage(std::span<const ChunkView> Chunks,
                                    std::vector<CompressedChunk> &Out) {
  Out.assign(Chunks.size(), CompressedChunk());
  Records.clear();
  if (Chunks.empty()) {
    // Still close the stage bracket: the replay disarms the op logs
    // and advances the batch's compress-done timestamp.
    Sched.endStageCompressSliced(Records);
    return;
  }
  std::uint64_t TotalBytes = 0;
  for (const ChunkView &Chunk : Chunks)
    TotalBytes += Chunk.Data.size();

  // Seed the tuner from the static quotes on first contact; observed
  // rates take over below. Deterministic: quotes are pure functions of
  // the cost model and the batch shape.
  if (CpuRate <= 0.0) {
    const double QuoteUs =
        Cpu->quoteCompressUs(TotalBytes, Chunks.size());
    CpuRate = QuoteUs > 0.0 ? static_cast<double>(TotalBytes) / QuoteUs
                            : 1.0;
  }
  if (GpuRate <= 0.0 && Dev) {
    const double QuoteUs =
        Dev->quoteCompressUs(TotalBytes, Chunks.size());
    GpuRate = QuoteUs > 0.0 ? static_cast<double>(TotalBytes) / QuoteUs
                            : 1.0;
  }

  // Advance the occupancy view by the ledger deltas since the last
  // batch (this batch's chunking/dedup charges included). Clamping at
  // zero absorbs ledger rebaselines — resetMeasurement drops the raw
  // busy totals, but the gap the tuner has learned survives.
  const double NowCpuUs = Ledger.busyMicros(Resource::CpuPool);
  const double NowGpuUs = Ledger.busyMicros(Resource::Gpu);
  const double NowPcieUs = Ledger.busyMicros(Resource::Pcie);
  CpuSeenUs += std::fmax(0.0, NowCpuUs - LastCpuUs);
  GpuSeenUs += std::fmax(0.0, NowGpuUs - LastGpuUs);
  PcieSeenUs += std::fmax(0.0, NowPcieUs - LastPcieUs);
  LastCpuUs = NowCpuUs;
  LastGpuUs = NowGpuUs;
  LastPcieUs = NowPcieUs;

  const double Fraction = chooseFraction(TotalBytes);
  const std::size_t Cut = cutIndex(Chunks, Fraction, TotalBytes);
  // Auto pipelines the device share per sub-batch; the forced and
  // fixed modes keep one record per backend (the pass-through shape).
  const bool Pipelined = Config.Split == SplitMode::Auto;

  std::uint64_t DevBytes = 0;
  for (std::size_t I = 0; I < Cut; ++I)
    DevBytes += Chunks[I].Data.size();

  std::size_t DevRecords = 0;
  double DevCostUs = 0.0, CpuCostUs = 0.0;
  if (Cut > 0 && Dev) {
    const double GpuBeginUs = Ledger.busyMicros(Resource::Gpu);
    const double PcieBeginUs = Ledger.busyMicros(Resource::Pcie);
    Dev->executeSlice(Chunks, 0, Cut, Out, Records, Pipelined);
    DevRecords = Records.size();
    // The device share's marginal occupancy: the larger of the GPU and
    // PCIe busy deltas (the pool the slice actually loads most).
    DevCostUs =
        std::fmax(Ledger.busyMicros(Resource::Gpu) - GpuBeginUs,
                  Ledger.busyMicros(Resource::Pcie) - PcieBeginUs);
    if (Trace)
      Trace->record(Dev->caps().SpanName, obs::CategoryBackend,
                    Resource::Gpu, GpuBeginUs,
                    Ledger.busyMicros(Resource::Gpu) - GpuBeginUs);
  }
  if (Cut < Chunks.size()) {
    const double CpuBeginUs = Ledger.busyMicros(Resource::CpuPool);
    Cpu->executeSlice(Chunks, Cut, Chunks.size(), Out, Records,
                      /*Pipelined=*/false);
    // The CPU share's marginal occupancy, normalized by the pool width
    // (the splitter balances normalized busy, see chooseFraction).
    CpuCostUs = (Ledger.busyMicros(Resource::CpuPool) - CpuBeginUs) /
                static_cast<double>(std::max(1u, Model.Cpu.Threads));
    if (Trace)
      Trace->record(Cpu->caps().SpanName, obs::CategoryBackend,
                    Resource::CpuPool, CpuBeginUs,
                    Ledger.busyMicros(Resource::CpuPool) - CpuBeginUs);
  }

  Sched.endStageCompressSliced(Records);

  // Observe: rate = share bytes per microsecond of marginal pool
  // occupancy. EWMA over the window. (Elapsed times feed the
  // histograms; the tuner itself balances occupancy, not latency —
  // a slice's round trip waits on PCIe and launch gaps the pool could
  // spend on other batches.)
  double DevElapsedUs = 0.0;
  for (std::size_t I = 0; I < DevRecords; ++I)
    DevElapsedUs = std::fmax(DevElapsedUs, Records[I].ElapsedUs);
  double CpuElapsedUs = 0.0;
  for (std::size_t I = DevRecords; I < Records.size(); ++I)
    CpuElapsedUs = std::fmax(CpuElapsedUs, Records[I].ElapsedUs);
  if (Cut > 0 && DevCostUs > MinElapsedUs) {
    const double Observed = static_cast<double>(DevBytes) / DevCostUs;
    GpuRate = Alpha * Observed + (1.0 - Alpha) * GpuRate;
    if (BatchUsGpu)
      BatchUsGpu->observe(DevElapsedUs);
  }
  if (Cut < Chunks.size() && CpuCostUs > MinElapsedUs) {
    const double Observed =
        static_cast<double>(TotalBytes - DevBytes) / CpuCostUs;
    CpuRate = Alpha * Observed + (1.0 - Alpha) * CpuRate;
    if (BatchUsCpu)
      BatchUsCpu->observe(CpuElapsedUs);
  }

  Stats.Fraction = Fraction;
  Stats.DeviceSlices = static_cast<unsigned>(DevRecords);
  Stats.CpuRateBytesPerUs = CpuRate;
  Stats.GpuRateBytesPerUs = GpuRate;
  ++Stats.Batches;
  Stats.GpuChunks += Cut;
  Stats.CpuChunks += Chunks.size() - Cut;
  if (SplitCpuGauge) {
    SplitCpuGauge->set(1.0 - Fraction);
    SplitGpuGauge->set(Fraction);
  }
}
