//===----------------------------------------------------------------------===//
///
/// \file
/// The CPU-pool backend: wraps a Cpu-mode CompressEngine (one codec
/// call per chunk across the pool, §3.2(1)) behind ReductionBackend.
/// Its slice record carries no device ops — just the pool time it
/// charged — so a full-batch slice replays bit-identically to the
/// classic CpuOnly compress stage.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_BACKEND_CPUBACKEND_H
#define PADRE_BACKEND_CPUBACKEND_H

#include "backend/ReductionBackend.h"

namespace padre {
namespace backend {

class CpuBackend final : public ReductionBackend {
public:
  /// \p Engine is the base engine configuration (matcher, entropy
  /// stage, sub-block framing); its Backend field is forced to Cpu.
  CpuBackend(const CostModel &Model, ResourceLedger &Ledger,
             ThreadPool &Pool, CompressEngineConfig Engine,
             const obs::ObsSinks &Obs);

  const BackendCaps &caps() const override { return Caps; }
  double quoteCompressUs(std::uint64_t Bytes,
                         std::size_t Chunks) const override;
  void executeSlice(std::span<const ChunkView> Chunks, std::size_t Begin,
                    std::size_t End, std::vector<CompressedChunk> &Out,
                    std::vector<BatchScheduler::CompressSlice> &Slices,
                    bool Pipelined) override;
  std::uint64_t rawFallbacks() const override {
    return Engine.rawFallbacks();
  }

private:
  CostModel Model;
  ResourceLedger &Ledger;
  CompressEngine Engine;
  BackendCaps Caps;
};

} // namespace backend
} // namespace padre

#endif // PADRE_BACKEND_CPUBACKEND_H
