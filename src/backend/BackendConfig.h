//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the multi-backend reduction framework (src/backend)
/// — a plain-data header so PipelineConfig can embed it without pulling
/// the backend layer's engine dependencies into every core include.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_BACKEND_BACKENDCONFIG_H
#define PADRE_BACKEND_BACKENDCONFIG_H

namespace padre {
namespace backend {

/// How the splitter partitions each batch across backends.
///
///   Auto    — the HPDR-style tuner picks the device share per batch
///             from observed per-backend rates (EWMA, seeded from the
///             static cost-model quotes) and pipelines the device
///             share at sub-batch granularity.
///   CpuOnly — forced split fraction 0: every chunk on the CPU
///             backend. Bit-identical (results, recipes, charges,
///             timeline) to the classic CpuOnly compress path.
///   GpuOnly — forced split fraction 1: every chunk on the device
///             backend. Bit-identical to the classic GpuCompress path
///             when one device is configured.
///   Fixed   — a static fraction of each batch's bytes to the device
///             backend (BackendConfig::Fraction); no tuning.
enum class SplitMode { Auto, CpuOnly, GpuOnly, Fixed };

/// Returns "auto", "cpu", "gpu" or "fixed".
const char *splitModeName(SplitMode Mode);

/// Backend-framework knobs, embedded in PipelineConfig::Backend.
struct BackendConfig {
  /// Off by default: the pipeline keeps the single-engine compress
  /// stage and nothing in this struct is read.
  bool Enabled = false;
  /// Modelled GPUs driven by the device-side backend: 1 selects the
  /// single-GPU backend (pass-through to the classic GPU engine), >= 2
  /// the N-GPU backend (extra GpuDevice instances with independent
  /// staging/queues on their own timeline lanes).
  unsigned GpuDevices = 1;
  SplitMode Split = SplitMode::Auto;
  /// Fixed-mode device share of each batch's bytes, clamped to [0, 1].
  double Fraction = 1.0;
  /// Tuner observation window in batches: the EWMA smoothing factor is
  /// 2 / (TunerWindow + 1). Clamped to >= 1.
  unsigned TunerWindow = 8;
};

} // namespace backend
} // namespace padre

#endif // PADRE_BACKEND_BACKENDCONFIG_H
