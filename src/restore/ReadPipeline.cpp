//===----------------------------------------------------------------------===//
///
/// \file
/// Batched restore pipeline implementation.
///
//===----------------------------------------------------------------------===//

#include "restore/ReadPipeline.h"

#include "compress/ChunkCodec.h"
#include "compress/GpuLaneCompressor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

using namespace padre;
using namespace padre::restore;

namespace {

/// Methods whose payload is the shared LZ token stream — what the
/// lane-decompression kernel accepts. Raw copies on the CPU; LzHuff
/// needs the serial Huffman stage first, so it stays on the CPU too.
/// LzFramed is NOT here: the lane planner predates the v2 frame, so
/// framed chunks go to the warp kernel (WarpGpu mode) or the CPU.
bool gpuDecodable(BlockMethod Method) {
  return Method == BlockMethod::Lz77 || Method == BlockMethod::QuickLz ||
         Method == BlockMethod::GpuLane;
}

} // namespace

ReadPipeline::ReadPipeline(ReductionPipeline &Pipeline,
                           const ReadConfig &Config)
    : Pipe(Pipeline), Config(Config), Model(Pipeline.platform().Model),
      Decoder(GpuLaneConfig().Lanes) {
  if (this->Config.BatchDepth == 0)
    this->Config.BatchDepth = 1;

  Device = Pipeline.gpuDevice();
  if (!Device && Model.Gpu.Present) {
    // CPU-only *write* mode on a GPU platform: the restore path may
    // still offload, so bring up a device on the shared ledger.
    OwnedDevice = std::make_unique<GpuDevice>(Model, Pipeline.ledger());
    OwnedDevice->setObs(
        obs::ObsSinks{Pipe.config().Trace, Pipe.config().Metrics});
    if (Pipe.config().Faults)
      OwnedDevice->setFaultInjector(Pipe.config().Faults);
    Device = OwnedDevice.get();
  }

  // The probe always runs (cheap cost-model arithmetic): even forced
  // modes report their modelled makespans and the framed ratio delta.
  Probe = probeMode();

  switch (this->Config.Mode) {
  case DecodeMode::Cpu:
    Mode = DecodeMode::Cpu;
    break;
  case DecodeMode::Gpu:
    Mode = Device ? DecodeMode::Gpu : DecodeMode::Cpu;
    break;
  case DecodeMode::WarpGpu:
    Mode = Device ? DecodeMode::WarpGpu : DecodeMode::Cpu;
    break;
  case DecodeMode::Auto:
    Mode = Probe.Mode;
    break;
  }
  // The warp kernel only accepts framed payloads; unframed LZ chunks in
  // WarpGpu mode ride the lane kernel only when the probe priced it
  // under the CPU pool (forced Gpu mode keeps the old unconditional
  // routing).
  UnframedToLane =
      Mode == DecodeMode::Gpu ||
      (Mode == DecodeMode::WarpGpu && Probe.GpuUs > 0.0 &&
       Probe.GpuUs < Probe.CpuUs);

  resetMeasurement();

  if (obs::MetricsRegistry *M = Pipe.config().Metrics) {
    ReadLatencyHist = &M->histogram(
        "padre_read_latency_us",
        "Per-read modelled service latency (microseconds)", 1.0, 2.0, 24);
    ReadChunksTotal = &M->counter("padre_read_chunks_total",
                                  "Chunk reads served by the restore path");
    ReadBytesTotal = &M->counter("padre_read_bytes_total",
                                 "Decoded bytes returned to readers");
    SsdChunksTotal = &M->counter("padre_read_ssd_chunks_total",
                                 "Chunks fetched from flash (cache misses)");
    CoalescedRunsTotal =
        &M->counter("padre_read_coalesced_runs_total",
                    "Adjacent-miss runs issued as sequential SSD reads");
    ReadaheadTotal = &M->counter("padre_read_readahead_total",
                                 "Chunks decoded speculatively into the cache");
    DecodeFailTotal =
        &M->counter("padre_read_decode_fail_total",
                    "Chunk reads that failed to decode (corruption)");
    CpuBatchesTotal = &M->counter("padre_read_batches_total{mode=\"cpu\"}",
                                  "Decode batches by executing resource");
    GpuBatchesTotal = &M->counter("padre_read_batches_total{mode=\"gpu\"}",
                                  "Decode batches by executing resource");
    WarpBatchesTotal = &M->counter("padre_read_batches_total{mode=\"warp\"}",
                                   "Decode batches by executing resource");
    MixedLaneTotal =
        &M->counter("padre_read_mixed_batches_total{route=\"lane\"}",
                    "Mixed framed/unframed batches by arbitrated route of "
                    "the unframed remainder");
    MixedCpuTotal =
        &M->counter("padre_read_mixed_batches_total{route=\"cpu\"}",
                    "Mixed framed/unframed batches by arbitrated route of "
                    "the unframed remainder");
    DecodeModeGauge =
        &M->gauge("padre_read_decode_mode",
                  "Effective decode mode (0=cpu 1=gpu 2=warp)");
    DecodeModeGauge->set(static_cast<double>(static_cast<unsigned>(Mode)));
    ProbeCpuGauge =
        &M->gauge("padre_read_probe_us{mode=\"cpu\"}",
                  "Construction-probe modelled decode makespan (us)");
    ProbeGpuGauge =
        &M->gauge("padre_read_probe_us{mode=\"gpu\"}",
                  "Construction-probe modelled decode makespan (us)");
    ProbeWarpGauge =
        &M->gauge("padre_read_probe_us{mode=\"warp\"}",
                  "Construction-probe modelled decode makespan (us)");
    ProbeCpuGauge->set(Probe.CpuUs);
    ProbeGpuGauge->set(Probe.GpuUs);
    ProbeWarpGauge->set(Probe.WarpUs);
    if (Device)
      GpuFallbackTotal = &M->counter(
          "padre_gpu_fallback_total{family=\"decompression\"}",
          "GPU decode sub-batches re-decoded on the CPU after a device "
          "fault");
  }
}

void ReadPipeline::resetMeasurement() {
  for (unsigned R = 0; R < ResourceCount; ++R)
    BaselineUs[R] = Pipe.ledger().busyMicros(static_cast<Resource>(R));
  ChunksRequested = BytesOut = 0;
  CacheHits = SsdChunks = EncodedBytesIn = 0;
  CoalescedRuns = RandomReads = ReadaheadChunks = 0;
  DecodeFailures = GpuBatches = CpuBatches = 0;
  WarpBatches = FramedChunks = 0;
  MixedBatches = MixedToLane = 0;
  LatencyHist = Histogram(20000.0, 2000);
}

bool ReadPipeline::readLocations(std::span<const std::uint64_t> Locations,
                                 std::vector<ByteVector> &Out,
                                 std::vector<ReadFailure> *Failures) {
  // Every batch runs even after a failure: a mid-stream bad chunk must
  // not strand the remaining fetches (the caller may be restoring
  // everything else around a known-lost chunk).
  bool Ok = true;
  for (std::size_t Begin = 0; Begin < Locations.size();
       Begin += Config.BatchDepth) {
    const std::size_t End =
        std::min(Locations.size(), Begin + Config.BatchDepth);
    if (!processBatch(Locations.subspan(Begin, End - Begin), Out, Failures))
      Ok = false;
  }
  return Ok;
}

std::optional<ByteVector>
ReadPipeline::readStream(const StreamRecipe &Recipe) {
  std::vector<ByteVector> Chunks;
  Chunks.reserve(Recipe.ChunkLocations.size());
  if (!readLocations(std::span<const std::uint64_t>(
                         Recipe.ChunkLocations.data(),
                         Recipe.ChunkLocations.size()),
                     Chunks))
    return std::nullopt;
  ByteVector Stream;
  Stream.reserve(Recipe.logicalBytes());
  for (const ByteVector &Chunk : Chunks)
    appendBytes(Stream, ByteSpan(Chunk.data(), Chunk.size()));
  return Stream;
}

void ReadPipeline::noteFailure(std::uint64_t Location) {
  ++DecodeFailures;
  if (DecodeFailTotal)
    DecodeFailTotal->add(1);
  // A corrupt block must not leave a stale good copy behind (the same
  // invariant ReductionPipeline::readChunk enforces).
  if (ChunkCache *Cache = Pipe.readCache())
    Cache->invalidate(Location);
}

bool ReadPipeline::processBatch(std::span<const std::uint64_t> Locations,
                                std::vector<ByteVector> &Out,
                                std::vector<ReadFailure> *Failures) {
  ResourceLedger &Ledger = Pipe.ledger();
  obs::TraceRecorder *Trace = Pipe.config().Trace;
  ChunkCache *Cache = Pipe.readCache();
  const ChunkStore &Store = Pipe.store();

  // Batch-scoped scratch (request tables, warp sub-block tables) lives
  // in the arena: reset here poisons last batch's allocations and
  // recycles the block — steady-state batches make no heap calls for
  // scratch. Allocation stays on this (batch-driving) thread.
  BatchArena.reset();

  const std::size_t Base = Out.size();
  Out.resize(Base + Locations.size());
  ChunksRequested += Locations.size();
  if (ReadChunksTotal)
    ReadChunksTotal->add(Locations.size());

  std::vector<BatchItem> Items;
  Items.reserve(Locations.size());
  std::unordered_map<std::uint64_t, std::size_t> ItemIndex;
  /// Per request: index into Items, or npos for a cache hit.
  constexpr std::size_t CacheHit = ~static_cast<std::size_t>(0);
  std::span<std::size_t> Source =
      BatchArena.allocateFilled<std::size_t>(Locations.size(), CacheHit);
  std::span<double> LatencyUs =
      BatchArena.allocateFilled<double>(Locations.size(), 0.0);

  //===------------------------------------------------------------===//
  // Stage 1: fetch — cache front tier, then coalesced SSD reads.
  //===------------------------------------------------------------===//
  {
    const obs::StageSpan Stage(Trace, Ledger, "restore:fetch");

    for (std::size_t I = 0; I < Locations.size(); ++I) {
      const std::uint64_t Loc = Locations[I];
      if (Cache) {
        if (auto Hit = Cache->get(Loc)) {
          const double CopyUs = Model.Cpu.CacheCopyPerByteNs * 1e-3 *
                                static_cast<double>(Hit->size());
          Ledger.chargeMicros(Resource::CpuPool, CopyUs);
          LatencyUs[I] = CopyUs;
          Out[Base + I] = std::move(*Hit);
          ++CacheHits;
          continue;
        }
      }
      const auto [It, Inserted] = ItemIndex.try_emplace(Loc, Items.size());
      if (Inserted) {
        BatchItem Item;
        Item.Location = Loc;
        Items.push_back(std::move(Item));
      }
      Source[I] = It->second;
    }

    // Resolve encoded blocks; a location absent from the store is a
    // failed read (the recipe/mapping references a chunk GC dropped or
    // that never destaged). The miss is recorded and the rest of the
    // batch proceeds — one lost chunk must not strand its neighbours.
    for (BatchItem &Item : Items) {
      const auto Block = Store.encodedBlock(Item.Location);
      if (!Block) {
        Item.Failed = true;
        Item.Error = fault::ErrorCode::ChunkMissing;
        continue;
      }
      Item.Encoded = *Block;
    }

    // Coalescing: destage writes a batch's unique chunks at adjacent
    // locations, so sorted misses form sequential runs on flash.
    // Missing chunks issue no flash traffic.
    std::vector<std::size_t> Order;
    Order.reserve(Items.size());
    for (std::size_t I = 0; I < Items.size(); ++I)
      if (!Items[I].Failed)
        Order.push_back(I);
    std::sort(Order.begin(), Order.end(),
              [&](std::size_t A, std::size_t B) {
                return Items[A].Location < Items[B].Location;
              });

    const std::size_t MissCount = Order.size();
    SsdChunks += MissCount;
    if (SsdChunksTotal)
      SsdChunksTotal->add(MissCount);

    std::size_t RunBegin = 0;
    while (RunBegin < Order.size()) {
      std::size_t RunEnd = RunBegin + 1;
      while (RunEnd < Order.size() &&
             Items[Order[RunEnd]].Location ==
                 Items[Order[RunEnd - 1]].Location + 1)
        ++RunEnd;
      std::vector<std::size_t> Run(Order.begin() + RunBegin,
                                   Order.begin() + RunEnd);
      RunBegin = RunEnd;

      // Readahead: extend the run with the next store-resident
      // locations (recipe locality: the stream's following chunks)
      // that are neither cached nor already in this batch. They ride
      // the same sequential read and decode into the cache only.
      if (Cache && Config.ReadaheadChunks > 0) {
        std::uint64_t Next = Items[Run.back()].Location + 1;
        for (std::size_t A = 0; A < Config.ReadaheadChunks; ++A, ++Next) {
          if (ItemIndex.count(Next) || Cache->contains(Next))
            break;
          const auto Block = Store.encodedBlock(Next);
          if (!Block)
            break;
          BatchItem Item;
          Item.Location = Next;
          Item.Encoded = *Block;
          Item.Readahead = true;
          ItemIndex.emplace(Next, Items.size());
          Run.push_back(Items.size());
          Items.push_back(std::move(Item));
          ++ReadaheadChunks;
          if (ReadaheadTotal)
            ReadaheadTotal->add(1);
        }
      }

      // Charge the run: one sequential stream, or a random 4K read
      // for a singleton. A flash command that exhausts its retry
      // budget fails every chunk riding it — the other runs still
      // complete (independent commands).
      std::uint64_t RunBytes = 0;
      for (std::size_t Idx : Run)
        RunBytes += Items[Idx].Encoded.size();
      EncodedBytesIn += RunBytes;
      double ShareUs;
      fault::Status IoStatus;
      if (Run.size() > 1) {
        IoStatus = Pipe.ssd().readSequential(RunBytes);
        ++CoalescedRuns;
        if (CoalescedRunsTotal)
          CoalescedRunsTotal->add(1);
        ShareUs = Model.ssdSeqReadUs(RunBytes) /
                  static_cast<double>(Run.size());
      } else {
        IoStatus = Pipe.ssd().readRandom4K(1);
        ++RandomReads;
        ShareUs = Model.Ssd.RandRead4KUs;
      }
      for (std::size_t Idx : Run) {
        Items[Idx].FetchShareUs = ShareUs;
        if (!IoStatus.ok()) {
          Items[Idx].Failed = true;
          Items[Idx].Error = fault::ErrorCode::SsdReadError;
        }
      }
    }
  }

  //===------------------------------------------------------------===//
  // Stage 2: decode — parse headers, then CPU pool or GPU kernel.
  // Fetch-failed items skip the stage; decode failures are per-item.
  //===------------------------------------------------------------===//
  {
    const obs::StageSpan Stage(Trace, Ledger, "restore:decode");

    std::vector<BatchItem *> CpuItems, GpuItems, WarpItems, Unframed;
    for (BatchItem &Item : Items) {
      if (Item.Failed)
        continue;
      const auto View = decodeBlock(Item.Encoded);
      if (!View) {
        Item.Failed = true;
        Item.Error = fault::ErrorCode::ChunkCorrupt;
        continue;
      }
      Item.Method = View->Method;
      Item.OriginalSize = View->OriginalSize;
      Item.Payload = View->Payload;
      if (Item.Method == BlockMethod::LzFramed)
        ++FramedChunks;
      if (Mode == DecodeMode::WarpGpu &&
          Item.Method == BlockMethod::LzFramed)
        WarpItems.push_back(&Item);
      else if (Mode == DecodeMode::WarpGpu && Device &&
               gpuDecodable(Item.Method))
        Unframed.push_back(&Item); // routed below, once the mix is known
      else if (UnframedToLane && gpuDecodable(Item.Method))
        GpuItems.push_back(&Item);
      else
        CpuItems.push_back(&Item);
    }

    // WarpGpu-mode unframed remainders: a homogeneous batch (no warp
    // work) keeps the run-level probe decision; a genuinely mixed
    // batch arbitrates per batch — the remainder is usually much
    // shallower than BatchDepth, so the probe's full-batch launch
    // amortization no longer holds for it.
    if (!Unframed.empty()) {
      bool ToLane = UnframedToLane;
      if (!WarpItems.empty()) {
        ++MixedBatches;
        ToLane = unframedLaneWins(Unframed);
        if (ToLane) {
          ++MixedToLane;
          if (MixedLaneTotal)
            MixedLaneTotal->add(1);
        } else if (MixedCpuTotal) {
          MixedCpuTotal->add(1);
        }
      }
      std::vector<BatchItem *> &Dest = ToLane ? GpuItems : CpuItems;
      Dest.insert(Dest.end(), Unframed.begin(), Unframed.end());
    }

    if (!CpuItems.empty())
      decodeCpu(CpuItems);
    if (!GpuItems.empty())
      decodeGpu(GpuItems);
    if (!WarpItems.empty())
      decodeWarp(WarpItems);

    // Fill the cache: every successfully decoded chunk, readahead
    // included — the cache as front tier is the whole point of
    // fetching ahead. Failed items must NOT pollute the cache: an
    // empty/garbage buffer under a live location would satisfy later
    // reads with wrong data.
    if (Cache)
      for (BatchItem &Item : Items)
        if (!Item.Failed)
          Cache->put(Item.Location, Item.Decoded);
  }

  // Failure accounting: count + invalidate per failed item; only
  // *requested* (non-readahead) failures surface to the caller — a
  // speculative readahead miss is not the reader's problem.
  bool Ok = true;
  for (const BatchItem &Item : Items) {
    if (!Item.Failed)
      continue;
    noteFailure(Item.Location);
    if (!Item.Readahead) {
      Ok = false;
      if (Failures)
        Failures->push_back(ReadFailure{Item.Location, Item.Error});
    }
  }

  // Deliver and account. No ledger charges below — the stage spans
  // above already tile every lane. Failed requests deliver an empty
  // buffer (their slot stays default-constructed).
  for (std::size_t I = 0; I < Locations.size(); ++I) {
    if (Source[I] != CacheHit) {
      const BatchItem &Item = Items[Source[I]];
      LatencyUs[I] = Item.FetchShareUs + Item.DecodeUs;
      if (!Item.Failed)
        Out[Base + I] = Item.Decoded;
    }
    BytesOut += Out[Base + I].size();
    LatencyHist.add(LatencyUs[I]);
    if (ReadLatencyHist)
      ReadLatencyHist->observe(LatencyUs[I]);
  }
  if (ReadBytesTotal) {
    std::uint64_t Delivered = 0;
    for (std::size_t I = 0; I < Locations.size(); ++I)
      Delivered += Out[Base + I].size();
    ReadBytesTotal->add(Delivered);
  }
  return Ok;
}

bool ReadPipeline::unframedLaneWins(
    const std::vector<BatchItem *> &Unframed) const {
  assert(Device && "Arbitration without a device");
  const double Threads = static_cast<double>(Model.Cpu.Threads);
  // CPU pool: chunk-parallel over the remainder's actual sizes.
  double CpuUs = 0.0;
  // Lane path: plan on the pool, then kernel + DMA. The kernel time is
  // the all-literal single-lane estimate (the dominant literal rate,
  // no plan computed yet — planning is part of the path being priced,
  // so the quote must not pay it twice).
  double PlanUs = 0.0;
  double ExecUs = 0.0;
  double PayloadBytes = 0.0;
  double OutBytes = 0.0;
  for (const BatchItem *Item : Unframed) {
    CpuUs += Model.Cpu.DecompressSetupUs +
             Model.Cpu.DecompressPerByteNs * 1e-3 *
                 static_cast<double>(Item->OriginalSize);
    PlanUs += Model.Cpu.PlanSetupUs +
              Model.Cpu.PlanPerByteNs * 1e-3 *
                  static_cast<double>(Item->Payload.size());
    ExecUs += Model.gpuDecodeLaneUs(Item->OriginalSize, 0, 1);
    PayloadBytes += static_cast<double>(Item->Payload.size());
    OutBytes += static_cast<double>(Item->OriginalSize);
  }
  const double Kernels =
      std::ceil(static_cast<double>(Unframed.size()) /
                static_cast<double>(Model.Gpu.DecompressBatchChunks));
  const double GpuBusyUs = Kernels * Model.Gpu.LaunchUs + ExecUs;
  const double PcieBusyUs = Kernels * 2.0 * Model.Pcie.PerTransferUs +
                            (PayloadBytes + OutBytes) /
                                (Model.Pcie.GigabytesPerSec * 1e3);
  const double LaneUs =
      std::max(PlanUs / Threads, std::max(GpuBusyUs, PcieBusyUs));
  return LaneUs < CpuUs / Threads;
}

void ReadPipeline::decodeCpu(const std::vector<BatchItem *> &Items) {
  ++CpuBatches;
  if (CpuBatchesTotal)
    CpuBatchesTotal->add(1);
  // Chunk-parallel across the pool, the read-side mirror of
  // CompressEngine::compressBatchCpu: each slice decodes its chunks
  // functionally and charges its accumulated modelled time once.
  Pipe.pool().parallelForSlices(
      0, Items.size(), [&](std::size_t Begin, std::size_t End, unsigned) {
        double Micros = 0.0;
        for (std::size_t I = Begin; I < End; ++I) {
          BatchItem &Item = *Items[I];
          double Us = Model.Cpu.DecompressSetupUs;
          switch (Item.Method) {
          case BlockMethod::Raw:
            // No token decode — a DRAM copy out of the block.
            Us += Model.Cpu.CacheCopyPerByteNs * 1e-3 *
                  static_cast<double>(Item.OriginalSize);
            break;
          case BlockMethod::LzHuff:
            // Serial entropy stage over the payload, then the LZ pass.
            Us += (Model.Cpu.HuffmanPerByteNs * 1e-3 *
                   static_cast<double>(Item.Payload.size())) +
                  (Model.Cpu.DecompressPerByteNs * 1e-3 *
                   static_cast<double>(Item.OriginalSize));
            break;
          default:
            Us += Model.Cpu.DecompressPerByteNs * 1e-3 *
                  static_cast<double>(Item.OriginalSize);
            break;
          }
          Micros += Us;
          Item.DecodeUs += Us;
          const BlockView View{Item.Method, Item.OriginalSize,
                               Item.Payload};
          Item.Decoded.clear();
          Item.Decoded.reserve(Item.OriginalSize);
          if (!decodeChunkPayload(View, Item.Decoded)) {
            Item.Failed = true;
            Item.Error = fault::ErrorCode::DecodeError;
          }
        }
        Pipe.ledger().chargeMicros(Resource::CpuPool, Micros);
      });
}

void ReadPipeline::decodeGpu(const std::vector<BatchItem *> &Items) {
  assert(Device && "GPU decode without device");
  const std::size_t SubBatch = Model.Gpu.DecompressBatchChunks;

  for (std::size_t Begin = 0; Begin < Items.size(); Begin += SubBatch) {
    const std::size_t End = std::min(Items.size(), Begin + SubBatch);
    ++GpuBatches;
    if (GpuBatchesTotal)
      GpuBatchesTotal->add(1);

    // CPU pre-parse across the pool: split every token stream into
    // lane segments. Planning doubles as validation — a malformed
    // payload fails here, before any device traffic, and only fails
    // its own chunk.
    Pipe.pool().parallelForSlices(
        Begin, End, [&](std::size_t SliceBegin, std::size_t SliceEnd,
                        unsigned) {
          double Micros = 0.0;
          for (std::size_t I = SliceBegin; I < SliceEnd; ++I) {
            BatchItem &Item = *Items[I];
            const double PlanUs =
                Model.Cpu.PlanSetupUs +
                Model.Cpu.PlanPerByteNs * 1e-3 *
                    static_cast<double>(Item.Payload.size());
            Micros += PlanUs;
            Item.DecodeUs += PlanUs;
            Item.Plan = Decoder.plan(Item.Payload, Item.OriginalSize);
            if (!Item.Plan) {
              Item.Failed = true;
              Item.Error = fault::ErrorCode::DecodeError;
            }
          }
          Pipe.ledger().chargeMicros(Resource::CpuPool, Micros);
        });

    // Host -> device: the compressed payloads (planned chunks only).
    std::size_t InBytes = 0;
    for (std::size_t I = Begin; I < End; ++I)
      if (Items[I]->Plan)
        InBytes += Items[I]->Payload.size();

    // Kernel time under the SIMT lockstep rule: every chunk costs
    // lanes x its slowest lane, with divergence priced per token-kind
    // switch (compress/GpuLaneDecompressor.h).
    double ExecMicros = 0.0;
    for (std::size_t I = Begin; I < End; ++I) {
      if (!Items[I]->Plan)
        continue;
      const GpuDecodePlan &Plan = *Items[I]->Plan;
      double SlowestLane = 0.0;
      for (const GpuDecodeLane &Lane : Plan.Lanes)
        SlowestLane = std::max(
            SlowestLane,
            Model.gpuDecodeLaneUs(Lane.Stats.LiteralBytes,
                                  Lane.Stats.MatchBytes,
                                  Lane.TokenSwitches));
      ExecMicros += SlowestLane * static_cast<double>(Plan.Lanes.size());
    }

    fault::Status DeviceOk = Device->transferToDevice(InBytes);

    // The lane-parallel kernel over the whole sub-batch; the body is
    // the functional decode. An injected kernel fault skips the body.
    if (DeviceOk.ok())
      DeviceOk =
          Device->launchKernel(KernelFamily::Decompression, ExecMicros, [&] {
            for (std::size_t I = Begin; I < End; ++I) {
              BatchItem &Item = *Items[I];
              if (!Item.Plan)
                continue;
              Item.Decoded.reserve(Item.OriginalSize);
              if (!GpuLaneDecompressor::runLanes(Item.Payload, *Item.Plan,
                                                 Item.Decoded)) {
                Item.Failed = true;
                Item.Error = fault::ErrorCode::DecodeError;
              }
            }
          });

    // Device -> host: the decoded chunks.
    std::size_t OutBytes = 0;
    for (std::size_t I = Begin; I < End; ++I)
      if (Items[I]->Plan)
        OutBytes += Items[I]->OriginalSize;
    if (DeviceOk.ok())
      DeviceOk = Device->transferFromDevice(OutBytes);

    if (!DeviceOk.ok()) {
      // Degraded mode: re-decode this sub-batch on the CPU path.
      // Whatever the device produced (including DMA-corrupt output) is
      // discarded — the CPU decode is authoritative, so the delivered
      // bytes are bit-exact either way; only the modelled cost
      // differs. Plan failures stay failed: the payload is malformed
      // on any backend.
      ++GpuDecodeFallbacks;
      if (GpuFallbackTotal)
        GpuFallbackTotal->add(1);
      std::vector<BatchItem *> Retry;
      Retry.reserve(End - Begin);
      for (std::size_t I = Begin; I < End; ++I) {
        BatchItem &Item = *Items[I];
        if (!Item.Plan)
          continue;
        Item.Failed = false;
        Item.Error = fault::ErrorCode::Ok;
        Item.Decoded.clear();
        Retry.push_back(&Item);
      }
      if (!Retry.empty())
        decodeCpu(Retry);
      continue;
    }

    // Every chunk in the sub-batch waits for the whole round trip —
    // the same latency semantics as the write side's GPU batches.
    const double Penalty =
        Device->mixedMode() ? Model.Gpu.MixedKernelPenalty : 1.0;
    const double RoundTripUs = Model.pcieTransferUs(InBytes) +
                               (Model.Gpu.LaunchUs + ExecMicros) * Penalty +
                               Model.pcieTransferUs(OutBytes);
    for (std::size_t I = Begin; I < End; ++I)
      if (Items[I]->Plan)
        Items[I]->DecodeUs += RoundTripUs;
  }
}

void ReadPipeline::decodeWarp(const std::vector<BatchItem *> &Items) {
  assert(Device && "Warp decode without device");
  const std::size_t SubBatch = Model.Gpu.DecompressBatchChunks;

  for (std::size_t Begin = 0; Begin < Items.size(); Begin += SubBatch) {
    const std::size_t End = std::min(Items.size(), Begin + SubBatch);
    ++WarpBatches;
    if (WarpBatchesTotal)
      WarpBatchesTotal->add(1);

    // Planning is the whole point of the frame: an O(sub-blocks) header
    // parse at FramePlanUs per chunk instead of the lane planner's
    // O(payload) token walk. Cheap enough to run serially on the batch
    // thread — which is also what the arena's single-owner contract
    // wants (sub-block tables are arena-backed).
    double PlanMicros = 0.0;
    for (std::size_t I = Begin; I < End; ++I) {
      BatchItem &Item = *Items[I];
      PlanMicros += Model.Cpu.FramePlanUs;
      Item.DecodeUs += Model.Cpu.FramePlanUs;
      Item.WarpPlan = GpuWarpDecompressor::plan(
          Item.Payload, Item.OriginalSize,
          BatchArena.allocateSpan<WarpSubBlock>(MaxSubBlocks));
      if (!Item.WarpPlan) {
        Item.Failed = true;
        Item.Error = fault::ErrorCode::DecodeError;
      }
    }
    Pipe.ledger().chargeMicros(Resource::CpuPool, PlanMicros);

    // Functional kernel body first: the charge inputs (per-sub-block
    // token/divergence/overlap counts) exist only after the decode —
    // the same idiom as the write-side kernels. A chunk whose token
    // stream is damaged fails here, is dropped from the plan (it is
    // malformed on any backend — no CPU retry), and issues no device
    // traffic.
    double ExecMicros = 0.0;
    std::size_t InBytes = 0, OutBytes = 0, Planned = 0;
    for (std::size_t I = Begin; I < End; ++I) {
      BatchItem &Item = *Items[I];
      if (!Item.WarpPlan)
        continue;
      Item.Decoded.clear();
      Item.Decoded.reserve(Item.OriginalSize);
      if (!GpuWarpDecompressor::runWarps(Item.Payload, *Item.WarpPlan,
                                         Item.Decoded)) {
        Item.Failed = true;
        Item.Error = fault::ErrorCode::DecodeError;
        Item.WarpPlan.reset();
        continue;
      }
      for (const WarpSubBlock &Sub : Item.WarpPlan->SubBlocks)
        ExecMicros +=
            Model.gpuWarpSubBlockUs(Sub.Tokens, Sub.Seg.OutputBytes,
                                    Sub.TokenSwitches, Sub.OverlapMatches);
      InBytes += Item.Payload.size();
      OutBytes += Item.OriginalSize;
      ++Planned;
    }
    if (Planned == 0)
      continue; // whole sub-batch malformed: no device traffic

    // Persistent-kernel economics: the first sub-batch pays the full
    // LaunchUs; once resident, later sub-batches only ring the
    // work-queue doorbell. Any device fault evicts the kernel.
    const bool Resident = WarpKernelResident;
    const double FixedUs =
        Resident ? Model.Gpu.WarpDoorbellUs : Model.Gpu.LaunchUs;

    fault::Status DeviceOk = Device->transferToDevice(InBytes);
    if (DeviceOk.ok())
      DeviceOk = Resident
                     ? Device->dispatchResident(KernelFamily::Decompression,
                                                Model.Gpu.WarpDoorbellUs,
                                                ExecMicros, nullptr)
                     : Device->launchKernel(KernelFamily::Decompression,
                                            ExecMicros, nullptr);
    if (DeviceOk.ok())
      DeviceOk = Device->transferFromDevice(OutBytes);

    if (!DeviceOk.ok()) {
      // Degraded mode, same contract as the lane path: discard whatever
      // the device produced (the functional results stand in for data
      // that a fault made untrustworthy) and re-decode on the CPU —
      // delivered bytes stay bit-exact, only the modelled cost differs.
      // The kernel is evicted: the next warp sub-batch relaunches.
      WarpKernelResident = false;
      ++GpuDecodeFallbacks;
      if (GpuFallbackTotal)
        GpuFallbackTotal->add(1);
      std::vector<BatchItem *> Retry;
      Retry.reserve(End - Begin);
      for (std::size_t I = Begin; I < End; ++I) {
        BatchItem &Item = *Items[I];
        if (!Item.WarpPlan)
          continue;
        Item.Failed = false;
        Item.Error = fault::ErrorCode::Ok;
        Item.Decoded.clear();
        Retry.push_back(&Item);
      }
      if (!Retry.empty())
        decodeCpu(Retry);
      continue;
    }
    WarpKernelResident = true;

    const double Penalty =
        Device->mixedMode() ? Model.Gpu.MixedKernelPenalty : 1.0;
    const double RoundTripUs = Model.pcieTransferUs(InBytes) +
                               (FixedUs + ExecMicros) * Penalty +
                               Model.pcieTransferUs(OutBytes);
    for (std::size_t I = Begin; I < End; ++I)
      if (Items[I]->WarpPlan)
        Items[I]->DecodeUs += RoundTripUs;
  }
}

ReadPipeline::ProbeResult ReadPipeline::probeMode() const {
  ProbeResult Result;

  // Synthetic ~2:1-compressible chunk: alternate a repeating motif
  // with pseudo-random noise so the token stream mixes matches and
  // literals (the divergence-relevant shape), then price every decode
  // path at BatchDepth. Everything here is arithmetic on the cost
  // model — nothing is charged to the ledger.
  const std::size_t ChunkSize =
      std::min(Pipe.config().ChunkSize, LzCodec::MaxInputSize);
  ByteVector Chunk(ChunkSize);
  std::uint32_t State = 0x9e3779b9u;
  for (std::size_t I = 0; I < ChunkSize; ++I) {
    if ((I / 64) % 2 == 0) {
      Chunk[I] = static_cast<std::uint8_t>(I % 64);
    } else {
      State = State * 1664525u + 1013904223u;
      Chunk[I] = static_cast<std::uint8_t>(State >> 24);
    }
  }
  const LzCodec Codec(LzCodec::MatcherKind::SingleProbe);
  const CompressResult Probe =
      Codec.compress(ByteSpan(Chunk.data(), Chunk.size()));

  const double Depth = static_cast<double>(Config.BatchDepth);
  const double Threads = static_cast<double>(Model.Cpu.Threads);
  const double PayloadBytes = static_cast<double>(Probe.Payload.size());

  // CPU pool: chunk-parallel, bottlenecked by the pool itself.
  Result.CpuUs = Depth *
                 (Model.Cpu.DecompressSetupUs +
                  Model.Cpu.DecompressPerByteNs * 1e-3 *
                      static_cast<double>(ChunkSize)) /
                 Threads;

  // The framed format's measured ratio cost on the probe chunk (the
  // history reset + header overhead the two-level scheme trades for
  // warp parallelism), at the default write-side sub-block count.
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Chunk.data(), Chunk.size()), 4);
  if (!Probe.Payload.empty())
    Result.RatioDeltaPct =
        100.0 *
        (static_cast<double>(Framed.Payload.size()) - PayloadBytes) /
        PayloadBytes;

  if (!Device || Probe.Payload.size() >= Chunk.size())
    return Result; // no device / store-raw data never reaches a kernel

  const double Kernels = std::ceil(
      Depth / static_cast<double>(Model.Gpu.DecompressBatchChunks));
  const double PcieStreamUs =
      Depth * (PayloadBytes + static_cast<double>(ChunkSize)) /
      (Model.Pcie.GigabytesPerSec * 1e3);

  // Lane-GPU path: plan on the pool, kernel + DMA on device lanes; the
  // makespan is the busiest of the three (perfect stage overlap, the
  // same first-order model the ledger uses).
  if (const auto Plan = Decoder.plan(
          ByteSpan(Probe.Payload.data(), Probe.Payload.size()), ChunkSize)) {
    double SlowestLane = 0.0;
    for (const GpuDecodeLane &Lane : Plan->Lanes)
      SlowestLane = std::max(
          SlowestLane, Model.gpuDecodeLaneUs(Lane.Stats.LiteralBytes,
                                             Lane.Stats.MatchBytes,
                                             Lane.TokenSwitches));
    const double ChunkExecUs =
        SlowestLane * static_cast<double>(Plan->Lanes.size());
    const double PlanBusyUs =
        Depth *
        (Model.Cpu.PlanSetupUs +
         Model.Cpu.PlanPerByteNs * 1e-3 * PayloadBytes) /
        Threads;
    const double GpuBusyUs =
        Kernels * Model.Gpu.LaunchUs + Depth * ChunkExecUs;
    const double PcieBusyUs =
        Kernels * 2.0 * Model.Pcie.PerTransferUs + PcieStreamUs;
    Result.GpuUs = std::max(PlanBusyUs, std::max(GpuBusyUs, PcieBusyUs));
  }

  // Warp-GPU path over the framed probe: O(sub-blocks) planning,
  // per-warp (not lockstep) execution, and steady-state persistent
  // dispatch — each sub-batch pays the doorbell, not LaunchUs (the
  // one-time launch amortizes to nothing over a stream of batches).
  WarpSubBlock Table[MaxSubBlocks];
  auto WarpPlan = GpuWarpDecompressor::plan(
      ByteSpan(Framed.Payload.data(), Framed.Payload.size()), ChunkSize,
      std::span<WarpSubBlock>(Table, MaxSubBlocks));
  if (WarpPlan) {
    ByteVector Scratch;
    if (GpuWarpDecompressor::runWarps(
            ByteSpan(Framed.Payload.data(), Framed.Payload.size()),
            *WarpPlan, Scratch)) {
      double ChunkExecUs = 0.0;
      for (const WarpSubBlock &Sub : WarpPlan->SubBlocks)
        ChunkExecUs +=
            Model.gpuWarpSubBlockUs(Sub.Tokens, Sub.Seg.OutputBytes,
                                    Sub.TokenSwitches, Sub.OverlapMatches);
      const double PlanBusyUs = Depth * Model.Cpu.FramePlanUs / Threads;
      const double GpuBusyUs =
          Kernels * Model.Gpu.WarpDoorbellUs + Depth * ChunkExecUs;
      const double FramedPcieUs =
          Kernels * 2.0 * Model.Pcie.PerTransferUs +
          Depth *
              (static_cast<double>(Framed.Payload.size()) +
               static_cast<double>(ChunkSize)) /
              (Model.Pcie.GigabytesPerSec * 1e3);
      Result.WarpUs =
          std::max(PlanBusyUs, std::max(GpuBusyUs, FramedPcieUs));
    }
  }

  // Auto resolves to the cheapest modelled path (0 = unavailable).
  double BestUs = Result.CpuUs;
  Result.Mode = DecodeMode::Cpu;
  if (Result.GpuUs > 0.0 && Result.GpuUs < BestUs) {
    BestUs = Result.GpuUs;
    Result.Mode = DecodeMode::Gpu;
  }
  if (Result.WarpUs > 0.0 && Result.WarpUs < BestUs) {
    BestUs = Result.WarpUs;
    Result.Mode = DecodeMode::WarpGpu;
  }
  return Result;
}

ReadReport ReadPipeline::report() const {
  ReadReport Report;
  Report.ChunksRequested = ChunksRequested;
  Report.BytesOut = BytesOut;
  Report.CacheHits = CacheHits;
  Report.SsdChunks = SsdChunks;
  Report.EncodedBytesIn = EncodedBytesIn;
  Report.CoalescedRuns = CoalescedRuns;
  Report.RandomReads = RandomReads;
  Report.ReadaheadChunks = ReadaheadChunks;
  Report.DecodeFailures = DecodeFailures;
  Report.GpuBatches = GpuBatches;
  Report.CpuBatches = CpuBatches;
  Report.WarpBatches = WarpBatches;
  Report.FramedChunks = FramedChunks;
  Report.MixedBatches = MixedBatches;
  Report.MixedToLane = MixedToLane;
  Report.Mode = Mode;
  Report.ProbeCpuUs = Probe.CpuUs;
  Report.ProbeGpuUs = Probe.GpuUs;
  Report.ProbeWarpUs = Probe.WarpUs;
  Report.SubBlockRatioDeltaPct = Probe.RatioDeltaPct;

  // Busy-time deltas against the measurement baseline. The makespan is
  // computed over the deltas (the shared ledger cannot subtract a
  // baseline itself) and spans ALL resources — reads wait on flash.
  const ResourceLedger &Ledger = Pipe.ledger();
  const double Threads = static_cast<double>(Model.Cpu.Threads);
  double MaxNormUs = 0.0;
  Report.Bottleneck = Resource::CpuPool;
  for (unsigned R = 0; R < ResourceCount; ++R) {
    const Resource Lane = static_cast<Resource>(R);
    const double DeltaUs = Ledger.busyMicros(Lane) - BaselineUs[R];
    const double NormUs =
        Lane == Resource::CpuPool ? DeltaUs / Threads : DeltaUs;
    if (NormUs > MaxNormUs) {
      MaxNormUs = NormUs;
      Report.Bottleneck = Lane;
    }
    switch (Lane) {
    case Resource::CpuPool:
      Report.CpuBusySec = DeltaUs * 1e-6;
      break;
    case Resource::Gpu:
      Report.GpuBusySec = DeltaUs * 1e-6;
      break;
    case Resource::Pcie:
      Report.PcieBusySec = DeltaUs * 1e-6;
      break;
    case Resource::Ssd:
      Report.SsdBusySec = DeltaUs * 1e-6;
      break;
    case Resource::IndexLock:
      break;
    }
  }
  Report.MakespanSec = MaxNormUs * 1e-6;
  if (Report.MakespanSec > 0.0) {
    Report.ThroughputMBps =
        static_cast<double>(BytesOut) / Report.MakespanSec / 1e6;
    Report.ThroughputIops =
        static_cast<double>(ChunksRequested) / Report.MakespanSec;
  }
  Report.LatencyP50Us = LatencyHist.percentile(50.0);
  Report.LatencyP95Us = LatencyHist.percentile(95.0);
  Report.LatencyP99Us = LatencyHist.percentile(99.0);
  return Report;
}
