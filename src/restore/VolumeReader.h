//===----------------------------------------------------------------------===//
///
/// \file
/// Batched LBA reads over a Volume — the restore pipeline surfaced at
/// the block-device frontend. Volume::readBlocks walks its mapping one
/// chunk at a time through ReductionPipeline::readChunk; this reader
/// gathers a whole LBA range into one location batch so the restore
/// engine can coalesce the SSD fetches and amortize the GPU decode
/// launch across the range. Snapshot reads take the same path through
/// the snapshot's captured mapping.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_RESTORE_VOLUMEREADER_H
#define PADRE_RESTORE_VOLUMEREADER_H

#include "core/Volume.h"
#include "restore/ReadPipeline.h"

namespace padre {
namespace restore {

/// Batched reads against a volume's current or snapshot mapping.
/// Single-caller semantics like the volume itself; \p Vol (and its
/// pipeline) must outlive the reader.
class VolumeReader {
public:
  VolumeReader(Volume &Vol, const ReadConfig &Config = ReadConfig());

  /// Reads \p Count blocks at \p Lba through the batched restore
  /// pipeline. Unmapped blocks read as zeros. Returns nullopt on
  /// out-of-range or store corruption (mirrors Volume::readBlocks).
  std::optional<ByteVector> readBlocks(std::uint64_t Lba,
                                       std::uint64_t Count);

  /// Reads \p Count blocks at \p Lba as of snapshot \p Id. Unmapped
  /// blocks read as zeros; nullopt on bad id/range or corruption.
  std::optional<ByteVector> readSnapshotBlocks(Volume::SnapshotId Id,
                                               std::uint64_t Lba,
                                               std::uint64_t Count);

  ReadPipeline &pipeline() { return Pipe; }
  const ReadPipeline &pipeline() const { return Pipe; }

private:
  std::optional<ByteVector>
  readMapped(const std::vector<std::uint64_t> &Mapping, std::uint64_t Lba,
             std::uint64_t Count);

  Volume &Vol;
  ReadPipeline Pipe;
};

} // namespace restore
} // namespace padre

#endif // PADRE_RESTORE_VOLUMEREADER_H
