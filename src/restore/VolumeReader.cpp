//===----------------------------------------------------------------------===//
///
/// \file
/// Batched volume reads.
///
//===----------------------------------------------------------------------===//

#include "restore/VolumeReader.h"

#include <cstring>

using namespace padre;
using namespace padre::restore;

VolumeReader::VolumeReader(Volume &Vol, const ReadConfig &Config)
    : Vol(Vol), Pipe(Vol.pipelineForMaintenance(), Config) {}

std::optional<ByteVector>
VolumeReader::readMapped(const std::vector<std::uint64_t> &Mapping,
                         std::uint64_t Lba, std::uint64_t Count) {
  if (Lba + Count > Mapping.size() || Lba + Count < Lba)
    return std::nullopt;

  // Gather the mapped blocks' locations; unmapped blocks contribute
  // zeros without touching the restore engine.
  std::vector<std::uint64_t> Locations;
  Locations.reserve(Count);
  for (std::uint64_t I = 0; I < Count; ++I) {
    const std::uint64_t Loc = Mapping[Lba + I];
    if (Loc != Volume::Unmapped)
      Locations.push_back(Loc);
  }

  std::vector<ByteVector> Chunks;
  Chunks.reserve(Locations.size());
  if (!Pipe.readLocations(std::span<const std::uint64_t>(Locations.data(),
                                                         Locations.size()),
                          Chunks))
    return std::nullopt;

  const std::size_t BlockSize = Vol.blockSize();
  ByteVector Out(Count * BlockSize, std::uint8_t{0});
  std::size_t Next = 0;
  for (std::uint64_t I = 0; I < Count; ++I) {
    if (Mapping[Lba + I] == Volume::Unmapped)
      continue;
    const ByteVector &Chunk = Chunks[Next++];
    if (Chunk.size() != BlockSize)
      return std::nullopt; // store geometry violation
    std::memcpy(Out.data() + I * BlockSize, Chunk.data(), BlockSize);
  }
  return Out;
}

std::optional<ByteVector> VolumeReader::readBlocks(std::uint64_t Lba,
                                                   std::uint64_t Count) {
  return readMapped(Vol.mapping(), Lba, Count);
}

std::optional<ByteVector>
VolumeReader::readSnapshotBlocks(Volume::SnapshotId Id, std::uint64_t Lba,
                                 std::uint64_t Count) {
  for (const auto &[SnapId, Mapping] : Vol.snapshotTable())
    if (SnapId == Id)
      return readMapped(Mapping, Lba, Count);
  return std::nullopt;
}
