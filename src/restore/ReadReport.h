//===----------------------------------------------------------------------===//
///
/// \file
/// The restore pipeline's measurement report — the read-path mirror of
/// core/Report.h. Reads are served by the SSD + decode + cache stack,
/// so (unlike the write report, which quotes the SSD separately) the
/// makespan here spans *all* modelled resources: a read that waits on
/// flash is slow no matter how fast the decoders are.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_RESTORE_READREPORT_H
#define PADRE_RESTORE_READREPORT_H

#include "sim/ResourceLedger.h"

#include <cstdint>
#include <string>

namespace padre {
namespace restore {

/// Who decodes a fetched batch.
enum class DecodeMode {
  Cpu,     ///< chunk-parallel across the CPU pool
  Gpu,     ///< lane-parallel kernel (CPU pre-parses the lane splits)
  WarpGpu, ///< warp-cooperative kernel over v2 framed payloads
  Auto,    ///< probe all paths at construction, pick the fastest
};

/// Returns "cpu", "gpu", "warp" or "auto".
const char *decodeModeName(DecodeMode Mode);

/// Everything a restore run measures since construction or
/// ReadPipeline::resetMeasurement().
struct ReadReport {
  // Workload.
  /// Chunk reads requested by callers (count); cache hits included.
  std::uint64_t ChunksRequested = 0;
  /// Decoded bytes returned to callers (bytes).
  std::uint64_t BytesOut = 0;

  // Tier breakdown.
  /// Requests served from the DRAM chunk cache (count).
  std::uint64_t CacheHits = 0;
  /// Distinct chunks fetched from flash (count); duplicates within a
  /// batch fetch once.
  std::uint64_t SsdChunks = 0;
  /// Encoded bytes read off flash, headers included (bytes).
  std::uint64_t EncodedBytesIn = 0;
  /// Multi-chunk sequential read commands issued — location-adjacent
  /// misses coalesced into one SSD stream (count).
  std::uint64_t CoalescedRuns = 0;
  /// Single-chunk random 4K reads (count).
  std::uint64_t RandomReads = 0;
  /// Chunks fetched and decoded speculatively into the cache by
  /// recipe-locality readahead (count); not part of ChunksRequested.
  std::uint64_t ReadaheadChunks = 0;
  /// Chunks whose block failed to parse or decode (count).
  std::uint64_t DecodeFailures = 0;

  // Decode-mode breakdown.
  /// Decode sub-batches dispatched to the GPU lane kernel (count).
  std::uint64_t GpuBatches = 0;
  /// Decode batches run on the CPU pool (count).
  std::uint64_t CpuBatches = 0;
  /// Decode sub-batches dispatched to the warp-cooperative kernel
  /// (count).
  std::uint64_t WarpBatches = 0;
  /// v2 framed chunks decoded, on any path (count).
  std::uint64_t FramedChunks = 0;
  /// Batches where framed and unframed chunks genuinely mixed, so the
  /// unframed remainder's route (lane kernel vs CPU pool) was
  /// arbitrated per batch from that batch's actual composition (count).
  std::uint64_t MixedBatches = 0;
  /// Mixed-batch arbitrations that sent the unframed remainder to the
  /// lane kernel (count); the remainder ran on the CPU pool otherwise.
  std::uint64_t MixedToLane = 0;
  /// The mode batches run in (the probe's resolution of Auto; never
  /// Auto itself).
  DecodeMode Mode = DecodeMode::Cpu;

  // The construction-time decode probe: modelled makespans of one
  // synthetic batch at BatchDepth per path (µs; 0 when the path is
  // unavailable), and the framed format's payload growth on the probe
  // chunk — the measured sub-block ratio delta the framing trades for
  // warp parallelism.
  double ProbeCpuUs = 0.0;
  double ProbeGpuUs = 0.0;
  double ProbeWarpUs = 0.0;
  double SubBlockRatioDeltaPct = 0.0;

  // Modelled performance (modelled seconds since the measurement
  // baseline — NOT wall time; see OBSERVABILITY.md).
  /// Busiest resource's normalized busy time over AllResources.
  double MakespanSec = 0.0;
  /// BytesOut / MakespanSec (MB per modelled s).
  double ThroughputMBps = 0.0;
  /// ChunksRequested / MakespanSec (chunk reads per modelled s).
  double ThroughputIops = 0.0;
  /// Resource whose busy time equals MakespanSec.
  Resource Bottleneck = Resource::Ssd;
  /// Per-lane busy-time deltas (modelled s). Each equals the trace's
  /// restore stage-span total on its lane (tests/test_restore.cpp).
  double CpuBusySec = 0.0;
  double GpuBusySec = 0.0;
  double PcieBusySec = 0.0;
  double SsdBusySec = 0.0;

  // Modelled per-read service latency (microseconds).
  double LatencyP50Us = 0.0;
  double LatencyP95Us = 0.0;
  double LatencyP99Us = 0.0;

  /// Cache hits / chunk requests (0 when none).
  double cacheHitRate() const {
    return ChunksRequested == 0
               ? 0.0
               : static_cast<double>(CacheHits) /
                     static_cast<double>(ChunksRequested);
  }

  /// Multi-line human-readable rendering.
  std::string toString() const;
};

} // namespace restore
} // namespace padre

#endif // PADRE_RESTORE_READREPORT_H
