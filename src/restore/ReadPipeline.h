//===----------------------------------------------------------------------===//
///
/// \file
/// The batched read/restore pipeline — the read-path mirror of the
/// paper's write pipeline. Where the write side chunks, dedups,
/// compresses and destages, the restore side:
///
///   1. gathers a batch of chunk fetches (from a recipe, an LBA
///      mapping, or an explicit location list),
///   2. serves what it can from the DRAM chunk cache (the front tier),
///   3. coalesces location-adjacent misses into sequential SSD reads
///      (destage wrote them adjacently, so recipe-local reads are
///      sequential on flash) and issues the rest as random 4K reads,
///   4. decompresses the fetched payloads either chunk-parallel on the
///      CPU pool or on the GPU lane-decompression kernel — compressed
///      payloads staged over the modelled PCIe link, the kernel charged
///      under the same SIMT-lockstep slowest-lane rule as the write
///      side, with a CPU pre-parse planning the lane splits
///      (compress/GpuLaneDecompressor.h),
///   5. optionally extends coalesced runs with *readahead*: the next
///      store-resident locations decode into the cache on the same
///      fetch, so recipe-local streams hit DRAM on their next batch.
///
/// GPU decode pays the same launch-latency economics as GPU
/// compression: a deep batch amortizes LaunchUs and wins, a shallow
/// one does not and loses to the 8-thread CPU pool. Decode v2 attacks
/// exactly that crossover: v2-framed chunks (BlockMethod::LzFramed)
/// can go to the *warp-cooperative* kernel instead
/// (compress/GpuWarpDecompressor.h) — O(sub-blocks) planning, per-warp
/// divergence instead of per-wavefront, and a persistent kernel whose
/// steady-state batches pay only a doorbell instead of LaunchUs.
/// DecodeMode::Auto resolves the three-way crossover with a
/// calibrator-style probe (synthetic chunks, modelled costs only —
/// nothing is charged to the ledger); the probe's makespans are
/// published as padre_read_probe_us{mode=}.
///
/// Everything is observable: "restore:fetch"/"restore:decode" stage
/// spans tile the lane clocks (their per-lane totals reconcile with
/// ReadReport's busy times, tests/test_restore.cpp), and the
/// padre_read_* metrics are catalogued in OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_RESTORE_READPIPELINE_H
#define PADRE_RESTORE_READPIPELINE_H

#include "compress/Block.h"
#include "compress/GpuLaneDecompressor.h"
#include "compress/GpuWarpDecompressor.h"
#include "core/ReductionPipeline.h"
#include "restore/ReadReport.h"
#include "util/Arena.h"
#include "util/Stats.h"

#include <memory>
#include <optional>
#include <span>

namespace padre {
namespace restore {

/// One failed chunk read: where and why. SsdReadError means the flash
/// command exhausted its retry budget; ChunkMissing/ChunkCorrupt and
/// DecodeError classify store-level damage.
struct ReadFailure {
  std::uint64_t Location = 0;
  fault::ErrorCode Code = fault::ErrorCode::Ok;
};

/// Restore pipeline configuration.
struct ReadConfig {
  /// Chunk fetches gathered per batch (the read-side analogue of
  /// PipelineConfig::BatchChunks). Deep batches amortize the GPU
  /// launch and coalesce better; shallow ones bound latency.
  std::size_t BatchDepth = 256;
  DecodeMode Mode = DecodeMode::Auto;
  /// Store-resident successor chunks decoded into the cache per
  /// coalesced run (recipe-locality readahead). 0 disables; ignored
  /// when the pipeline has no read cache.
  std::size_t ReadaheadChunks = 0;
};

/// The batched restore engine over a reduction pipeline's store, cache,
/// SSD and (optional) GPU. Single-caller semantics like Volume: the
/// parallelism lives inside the batch stages.
class ReadPipeline {
public:
  /// \p Pipeline supplies the store, ledger, pool, SSD, cache and
  /// observability sinks, and must outlive this object. If the
  /// platform has a GPU but the pipeline was built in a CPU-only mode
  /// (no device), the restore engine brings up its own device on the
  /// shared ledger — the read path may offload even when the write
  /// path does not.
  ReadPipeline(ReductionPipeline &Pipeline,
               const ReadConfig &Config = ReadConfig());

  /// Reads the chunks at \p Locations, appending one decoded buffer
  /// per location to \p Out in order. Duplicate locations fetch and
  /// decode once and copy out per requester. A chunk that is missing,
  /// unreadable (SSD retry budget exhausted) or corrupt does NOT abort
  /// the batch: every remaining fetch still completes, the failed
  /// request delivers an empty buffer, and — when \p Failures is
  /// non-null — one ReadFailure per failed location records the typed
  /// cause. Returns true iff every requested chunk was delivered.
  /// Failures are counted and any stale cache entry invalidated.
  bool readLocations(std::span<const std::uint64_t> Locations,
                     std::vector<ByteVector> &Out,
                     std::vector<ReadFailure> *Failures = nullptr);

  /// Reconstructs a whole stream from \p Recipe through the batched
  /// path — the restore mirror of ReductionPipeline::readBack().
  /// Returns nullopt on any missing/corrupt chunk.
  std::optional<ByteVector> readStream(const StreamRecipe &Recipe);

  /// The mode batches actually run in: never Auto — the probe resolved
  /// it at construction (and Gpu degrades to Cpu on GPU-less
  /// platforms).
  DecodeMode effectiveMode() const { return Mode; }

  /// Rebaselines the measurement: report busy times and counters
  /// restart here. Unlike ReductionPipeline::resetMeasurement() this
  /// does NOT reset the shared ledger — write-side measurements in the
  /// same run stay intact; the report subtracts the baseline instead.
  void resetMeasurement();

  /// The measurements since construction or resetMeasurement().
  ReadReport report() const;

  /// GPU decode sub-batches transparently re-decoded on the CPU after
  /// an injected device fault (kernel/ECC/DMA).
  std::uint64_t gpuDecodeFallbackCount() const { return GpuDecodeFallbacks; }

  const ReadConfig &config() const { return Config; }

private:
  /// One chunk being fetched/decoded in the current batch.
  struct BatchItem {
    std::uint64_t Location = 0;
    ByteSpan Encoded; ///< store block (header + payload)
    // Parsed header (restore:decode fills these).
    BlockMethod Method = BlockMethod::Raw;
    std::uint32_t OriginalSize = 0;
    ByteSpan Payload;
    std::optional<GpuDecodePlan> Plan;     ///< lane-GPU path only
    std::optional<GpuWarpPlan> WarpPlan;   ///< warp-GPU path only
                                           ///< (arena-backed table)
    ByteVector Decoded;
    double FetchShareUs = 0.0; ///< this chunk's share of SSD latency
    double DecodeUs = 0.0;     ///< decode stage latency contribution
    bool Readahead = false;    ///< cache-fill only, no requester
    bool Failed = false;
    fault::ErrorCode Error = fault::ErrorCode::Ok;
  };

  /// The construction-time probe's modelled makespans (µs; 0 when the
  /// path is unavailable) plus the framed format's measured payload
  /// growth on the probe chunk, and the mode the probe would pick.
  struct ProbeResult {
    double CpuUs = 0.0;
    double GpuUs = 0.0;
    double WarpUs = 0.0;
    double RatioDeltaPct = 0.0;
    DecodeMode Mode = DecodeMode::Cpu;
  };

  bool processBatch(std::span<const std::uint64_t> Locations,
                    std::vector<ByteVector> &Out,
                    std::vector<ReadFailure> *Failures);
  /// Per-batch arbitration for batches mixing framed and unframed
  /// chunks (WarpGpu mode): prices THIS batch's unframed remainder on
  /// the lane-kernel path vs the CPU pool — launch amortized over the
  /// remainder's real count, transfers over its real bytes — and
  /// returns true when the lane wins. Homogeneous batches never get
  /// here; they keep the run-level probe decision.
  bool unframedLaneWins(const std::vector<BatchItem *> &Unframed) const;
  void decodeCpu(const std::vector<BatchItem *> &Items);
  void decodeGpu(const std::vector<BatchItem *> &Items);
  void decodeWarp(const std::vector<BatchItem *> &Items);
  void noteFailure(std::uint64_t Location);
  /// The Auto probe: modelled decode makespans of a synthetic batch at
  /// BatchDepth for every available path (CPU pool, lane kernel, warp
  /// kernel over the framed probe); charges nothing.
  ProbeResult probeMode() const;

  ReductionPipeline &Pipe;
  ReadConfig Config;
  const CostModel &Model;
  /// The pipeline's device, or OwnedDevice on CPU-only write modes.
  std::unique_ptr<GpuDevice> OwnedDevice;
  GpuDevice *Device = nullptr;
  GpuLaneDecompressor Decoder;
  DecodeMode Mode = DecodeMode::Cpu;
  ProbeResult Probe;
  /// In WarpGpu mode, do unframed LZ chunks still go to the lane
  /// kernel? True when the probe priced the lane path under the CPU
  /// pool (or the user forced Gpu) — the warp kernel itself only
  /// accepts framed payloads.
  bool UnframedToLane = false;
  /// Persistent warp kernel residency: the first warp sub-batch pays
  /// the full launch, later ones only the doorbell; any device fault
  /// evicts the kernel (see GpuDevice::dispatchResident).
  bool WarpKernelResident = false;
  /// Per-batch decode scratch (request tables, warp sub-block tables);
  /// reset at every processBatch entry — allocations never outlive the
  /// batch that made them.
  Arena BatchArena;

  // Report counters (reset by resetMeasurement).
  std::uint64_t ChunksRequested = 0;
  std::uint64_t BytesOut = 0;
  std::uint64_t CacheHits = 0;
  std::uint64_t SsdChunks = 0;
  std::uint64_t EncodedBytesIn = 0;
  std::uint64_t CoalescedRuns = 0;
  std::uint64_t RandomReads = 0;
  std::uint64_t ReadaheadChunks = 0;
  std::uint64_t DecodeFailures = 0;
  std::uint64_t GpuBatches = 0;
  std::uint64_t CpuBatches = 0;
  std::uint64_t WarpBatches = 0;
  std::uint64_t FramedChunks = 0;
  std::uint64_t MixedBatches = 0;
  std::uint64_t MixedToLane = 0;
  /// GPU decode sub-batches re-decoded on the CPU after a device fault.
  std::uint64_t GpuDecodeFallbacks = 0;
  /// Ledger busy-time baselines (µs) captured at resetMeasurement.
  double BaselineUs[ResourceCount] = {};
  Histogram LatencyHist{20000.0, 2000};

  // Observability instruments (null when the pipeline has no metrics
  // registry), cached at construction.
  obs::LogHistogram *ReadLatencyHist = nullptr;
  obs::Counter *ReadChunksTotal = nullptr;
  obs::Counter *ReadBytesTotal = nullptr;
  obs::Counter *SsdChunksTotal = nullptr;
  obs::Counter *CoalescedRunsTotal = nullptr;
  obs::Counter *ReadaheadTotal = nullptr;
  obs::Counter *DecodeFailTotal = nullptr;
  obs::Counter *CpuBatchesTotal = nullptr;
  obs::Counter *GpuBatchesTotal = nullptr;
  obs::Counter *WarpBatchesTotal = nullptr;
  obs::Counter *MixedLaneTotal = nullptr;
  obs::Counter *MixedCpuTotal = nullptr;
  obs::Counter *GpuFallbackTotal = nullptr;
  obs::Gauge *DecodeModeGauge = nullptr;
  obs::Gauge *ProbeCpuGauge = nullptr;
  obs::Gauge *ProbeGpuGauge = nullptr;
  obs::Gauge *ProbeWarpGauge = nullptr;
};

} // namespace restore
} // namespace padre

#endif // PADRE_RESTORE_READPIPELINE_H
