//===----------------------------------------------------------------------===//
///
/// \file
/// Read report rendering.
///
//===----------------------------------------------------------------------===//

#include "restore/ReadReport.h"

#include <cstdio>

using namespace padre;
using namespace padre::restore;

std::string ReadReport::toString() const {
  char Buffer[1024];
  std::snprintf(
      Buffer, sizeof(Buffer),
      "reads=%llu (%.1f MiB out)  cacheHits=%llu (%.0f%%) "
      "ssdChunks=%llu (%.1f MiB in)\n"
      "fetch: coalescedRuns=%llu randomReads=%llu readahead=%llu "
      "decodeFailures=%llu\n"
      "decode batches: cpu=%llu gpu=%llu\n"
      "throughput=%.1fK IOPS (%.1f MB/s)  makespan=%.4fs bottleneck=%s\n"
      "latency (modelled): p50=%.0fus p95=%.0fus p99=%.0fus\n"
      "busy: cpu=%.4fs gpu=%.4fs pcie=%.4fs ssd=%.4fs",
      static_cast<unsigned long long>(ChunksRequested),
      static_cast<double>(BytesOut) / (1 << 20),
      static_cast<unsigned long long>(CacheHits), cacheHitRate() * 100.0,
      static_cast<unsigned long long>(SsdChunks),
      static_cast<double>(EncodedBytesIn) / (1 << 20),
      static_cast<unsigned long long>(CoalescedRuns),
      static_cast<unsigned long long>(RandomReads),
      static_cast<unsigned long long>(ReadaheadChunks),
      static_cast<unsigned long long>(DecodeFailures),
      static_cast<unsigned long long>(CpuBatches),
      static_cast<unsigned long long>(GpuBatches), ThroughputIops / 1e3,
      ThroughputMBps, MakespanSec, resourceName(Bottleneck), LatencyP50Us,
      LatencyP95Us, LatencyP99Us, CpuBusySec, GpuBusySec, PcieBusySec,
      SsdBusySec);
  return Buffer;
}
