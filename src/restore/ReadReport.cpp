//===----------------------------------------------------------------------===//
///
/// \file
/// Read report rendering.
///
//===----------------------------------------------------------------------===//

#include "restore/ReadReport.h"

#include <cassert>
#include <cstdio>

using namespace padre;
using namespace padre::restore;

const char *padre::restore::decodeModeName(DecodeMode Mode) {
  switch (Mode) {
  case DecodeMode::Cpu:
    return "cpu";
  case DecodeMode::Gpu:
    return "gpu";
  case DecodeMode::WarpGpu:
    return "warp";
  case DecodeMode::Auto:
    return "auto";
  }
  assert(false && "Unknown decode mode");
  return "?";
}

std::string ReadReport::toString() const {
  char Buffer[1536];
  std::snprintf(
      Buffer, sizeof(Buffer),
      "reads=%llu (%.1f MiB out)  cacheHits=%llu (%.0f%%) "
      "ssdChunks=%llu (%.1f MiB in)\n"
      "fetch: coalescedRuns=%llu randomReads=%llu readahead=%llu "
      "decodeFailures=%llu\n"
      "decode: mode=%s batches cpu=%llu gpu=%llu warp=%llu "
      "framedChunks=%llu\n"
      "probe: cpu=%.1fus gpu=%.1fus warp=%.1fus  "
      "subBlockRatioDelta=%+.2f%%\n"
      "throughput=%.1fK IOPS (%.1f MB/s)  makespan=%.4fs bottleneck=%s\n"
      "latency (modelled): p50=%.0fus p95=%.0fus p99=%.0fus\n"
      "busy: cpu=%.4fs gpu=%.4fs pcie=%.4fs ssd=%.4fs",
      static_cast<unsigned long long>(ChunksRequested),
      static_cast<double>(BytesOut) / (1 << 20),
      static_cast<unsigned long long>(CacheHits), cacheHitRate() * 100.0,
      static_cast<unsigned long long>(SsdChunks),
      static_cast<double>(EncodedBytesIn) / (1 << 20),
      static_cast<unsigned long long>(CoalescedRuns),
      static_cast<unsigned long long>(RandomReads),
      static_cast<unsigned long long>(ReadaheadChunks),
      static_cast<unsigned long long>(DecodeFailures), decodeModeName(Mode),
      static_cast<unsigned long long>(CpuBatches),
      static_cast<unsigned long long>(GpuBatches),
      static_cast<unsigned long long>(WarpBatches),
      static_cast<unsigned long long>(FramedChunks), ProbeCpuUs, ProbeGpuUs,
      ProbeWarpUs, SubBlockRatioDeltaPct, ThroughputIops / 1e3,
      ThroughputMBps, MakespanSec, resourceName(Bottleneck), LatencyP50Us,
      LatencyP95Us, LatencyP99Us, CpuBusySec, GpuBusySec, PcieBusySec,
      SsdBusySec);
  return Buffer;
}
