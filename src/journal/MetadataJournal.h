//===----------------------------------------------------------------------===//
///
/// \file
/// The metadata write-ahead log writer. Pure host-file mechanics:
/// records are appended to an in-memory pending buffer (sequence
/// numbers assigned at append), then group-committed — framed, CRC'd
/// and flushed to the journal file in one write. Modelled-time
/// charging lives in the caller (journal/JournaledVolume.h), which
/// routes the commit through ReductionPipeline::journalWrite.
///
/// tornCommit() persists only a prefix of the pending bytes — the
/// deterministic torn-write the fault layer injects to exercise the
/// scanner's torn-tail discard.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_JOURNAL_METADATAJOURNAL_H
#define PADRE_JOURNAL_METADATAJOURNAL_H

#include "journal/JournalFormat.h"

#include <cstdio>
#include <string>

namespace padre {
namespace journal {

/// Append-only writer over one journal file.
class MetadataJournal {
public:
  MetadataJournal() = default;
  ~MetadataJournal();
  MetadataJournal(const MetadataJournal &) = delete;
  MetadataJournal &operator=(const MetadataJournal &) = delete;

  /// Creates/truncates the journal at \p Path with \p Header (base
  /// sequence included) and keeps it open for appending.
  fault::Status create(const std::string &Path, const JournalHeader &Header);

  /// Buffers \p Record (assigning the next sequence number) for the
  /// next commit. Returns the assigned sequence.
  std::uint64_t append(JournalRecord Record);

  /// What one commit persisted.
  struct CommitInfo {
    std::uint64_t FramedBytes = 0; ///< total bytes appended to the file
    std::uint64_t MetaBytes = 0;   ///< framed bytes minus chunk payloads
    std::size_t Records = 0;
  };

  /// Flushes every pending record to the file. No-op (all zeros) when
  /// nothing is pending.
  fault::Expected<CommitInfo> commit();

  /// Crash injection: persists only the first \p KeepBytes of the
  /// pending buffer — a torn write — and drops the rest. The file is
  /// left exactly as a power cut mid-commit would.
  fault::Status tornCommit(std::size_t KeepBytes);

  /// Restarts the log after a checkpoint: rewrites the file to just a
  /// header with \p BaseSeq (keeping geometry), discarding pending
  /// records. The next append is assigned \p BaseSeq.
  fault::Status truncate(std::uint64_t BaseSeq);

  std::uint64_t nextSeq() const { return NextSeq; }
  /// Last sequence flushed by commit() (0 before the first commit).
  std::uint64_t committedSeq() const { return CommittedSeq; }
  std::size_t pendingRecords() const { return PendingRecords; }
  std::size_t pendingBytes() const { return Pending.size(); }
  const std::string &path() const { return Path; }

private:
  void close();

  std::string Path;
  std::FILE *File = nullptr;
  JournalHeader Header;
  std::uint64_t NextSeq = 1;
  std::uint64_t CommittedSeq = 0;
  ByteVector Pending;
  std::uint64_t PendingChunkPayload = 0;
  std::size_t PendingRecords = 0;
};

} // namespace journal
} // namespace padre

#endif // PADRE_JOURNAL_METADATAJOURNAL_H
