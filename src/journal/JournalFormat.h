//===----------------------------------------------------------------------===//
///
/// \file
/// On-disk format of the crash-consistency artefacts (src/journal):
/// the metadata write-ahead log and the checkpoint container.
///
/// Journal file (little-endian):
///   header:  u64 magic "PADREJL1", u32 version, u32 chunk size,
///            u64 block count, u64 base sequence, u32 CRC-32C over the
///            preceding header bytes
///   records: u32 payload length, u32 CRC-32C(payload), payload
///   payload: u64 sequence, u8 record type, type-specific body
///
/// Record sequences are dense: the Nth record in the file must carry
/// sequence `base + N`. Scanning stops at the first frame that is
/// truncated or fails its CRC — that suffix is the *torn tail*, the
/// residue of a crash mid-commit, and is discarded (never trusted,
/// never an error). A frame whose CRC verifies but whose payload is
/// malformed, or whose sequence breaks the dense order, cannot be
/// explained by tearing and is reported as JournalCorrupt.
///
/// Checkpoint container:
///   u64 magic "PADRECK1", u32 version, u64 covered sequence,
///   u64 image length, image bytes (persist/VolumeImage.h format),
///   u32 CRC-32C over everything before it
///
/// The covered sequence is the last journal sequence whose effects the
/// embedded image includes; recovery replays only newer records.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_JOURNAL_JOURNALFORMAT_H
#define PADRE_JOURNAL_JOURNALFORMAT_H

#include "fault/Status.h"
#include "hash/Fingerprint.h"
#include "util/Bytes.h"

#include <vector>

namespace padre {
namespace journal {

/// "PADREJL1" read as a little-endian u64.
inline constexpr std::uint64_t JournalMagic = 0x314C4A4552444150ull;
/// "PADRECK1" read as a little-endian u64.
inline constexpr std::uint64_t CheckpointMagic = 0x314B434552444150ull;
inline constexpr std::uint32_t JournalVersion = 1;
inline constexpr std::uint32_t CheckpointVersion = 1;

/// Journal header: magic + version + chunk size + block count + base
/// sequence + header CRC.
inline constexpr std::size_t JournalHeaderSize = 8 + 4 + 4 + 8 + 8 + 4;
/// Checkpoint prefix before the embedded image: magic + version +
/// covered sequence + image length.
inline constexpr std::size_t CheckpointPrefixSize = 8 + 4 + 8 + 8;
/// Record frame prefix: payload length + payload CRC.
inline constexpr std::size_t RecordFrameSize = 4 + 4;

/// What one journal record intends (the redo information).
enum class RecordType : std::uint8_t {
  WriteBatch = 0,     ///< one acknowledged-as-a-unit volume write
  Trim = 1,           ///< discard of an LBA range
  SnapshotCreate = 2, ///< snapshot taken (id recorded for validation)
  SnapshotDelete = 3, ///< snapshot dropped
  Gc = 4,             ///< garbage collection ran (count recorded)
};

/// A chunk the batch newly stored: replay re-places the encoded block.
struct NewChunk {
  std::uint64_t Location = 0;
  Fingerprint Fp;
  ByteVector Encoded; ///< the encoded compress/Block.h block
};

/// One LBA remap of the batch, in write order. Fp rides along so
/// replay never depends on index state to re-reference a duplicate.
struct MapUpdate {
  std::uint64_t Lba = 0;
  std::uint64_t Location = 0;
  Fingerprint Fp;
};

/// Expected refcount movement of one location across the record —
/// redundant with the updates, kept as a replay cross-check.
struct RefDelta {
  std::uint64_t Location = 0;
  std::int64_t Delta = 0;
};

/// One decoded journal record. Field use by type:
///   WriteBatch      Chunks, Updates, Deltas
///   Trim            Lba, Count
///   SnapshotCreate  SnapshotId
///   SnapshotDelete  SnapshotId
///   Gc              Collected
struct JournalRecord {
  std::uint64_t Seq = 0;
  RecordType Type = RecordType::WriteBatch;
  std::vector<NewChunk> Chunks;
  std::vector<MapUpdate> Updates;
  std::vector<RefDelta> Deltas;
  std::uint64_t Lba = 0;
  std::uint64_t Count = 0;
  std::uint64_t SnapshotId = 0;
  std::uint64_t Collected = 0;
};

/// Geometry stamped into the journal header; recovery refuses a
/// journal whose geometry does not match the target volume.
struct JournalHeader {
  std::uint32_t ChunkSize = 0;
  std::uint64_t BlockCount = 0;
  std::uint64_t BaseSeq = 1;
};

/// Appends the journal header for \p Header to \p Out.
void encodeJournalHeader(const JournalHeader &Header, ByteVector &Out);

/// Appends one framed record (length + CRC + payload) to \p Out.
/// Returns the number of chunk-payload bytes inside the frame — bytes
/// the destage stage already charged, which the commit-time modelled
/// write therefore excludes (see DESIGN.md decision 12).
std::uint64_t encodeRecord(const JournalRecord &Record, ByteVector &Out);

/// Result of scanning a journal file.
struct JournalScan {
  JournalHeader Header;
  /// Every committed record, in sequence order.
  std::vector<JournalRecord> Records;
  /// Bytes of the discarded torn tail (0 for a cleanly closed log).
  std::uint64_t TornBytes = 0;
};

/// Parses \p File as a journal. Torn tails are discarded silently
/// (reported via JournalScan::TornBytes); structural failures return
/// JournalCorrupt (bad magic, header CRC, CRC-valid-but-malformed
/// payload, sequence discontinuity) or StateMismatch (version).
fault::Expected<JournalScan> scanJournal(ByteSpan File);

/// Builds a checkpoint container around an encoded volume image.
void encodeCheckpoint(std::uint64_t CoveredSeq, ByteSpan Image,
                      ByteVector &Out);

/// Parsed checkpoint container; Image points into the scanned buffer.
struct CheckpointView {
  std::uint64_t CoveredSeq = 0;
  ByteSpan Image;
};

/// Validates \p File (magic, version, bounds, whole-file CRC) and
/// returns views into it. Errors: ImageCorrupt, StateMismatch.
fault::Expected<CheckpointView> scanCheckpoint(ByteSpan File);

} // namespace journal
} // namespace padre

#endif // PADRE_JOURNAL_JOURNALFORMAT_H
