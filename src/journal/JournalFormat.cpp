//===----------------------------------------------------------------------===//
///
/// \file
/// Journal/checkpoint format implementation: framing, CRC validation,
/// torn-tail detection.
///
//===----------------------------------------------------------------------===//

#include "journal/JournalFormat.h"

#include "hash/Crc32.h"

#include <algorithm>
#include <cstring>

using namespace padre;
using namespace padre::journal;
using padre::fault::ErrorCode;
using padre::fault::Status;

namespace {

void appendLe32(ByteVector &Out, std::uint32_t Value) {
  std::uint8_t Buf[4];
  storeLe32(Buf, Value);
  Out.insert(Out.end(), Buf, Buf + 4);
}

void appendLe64(ByteVector &Out, std::uint64_t Value) {
  std::uint8_t Buf[8];
  storeLe64(Buf, Value);
  Out.insert(Out.end(), Buf, Buf + 8);
}

/// Bounds-checked sequential reader over a byte span. Every accessor
/// reports success so malformed input can never read out of bounds.
class ByteReader {
public:
  explicit ByteReader(ByteSpan Data) : Data(Data) {}

  std::size_t position() const { return Pos; }
  std::size_t remaining() const { return Data.size() - Pos; }
  bool atEnd() const { return Pos == Data.size(); }

  bool readU8(std::uint8_t &Out) {
    if (remaining() < 1)
      return false;
    Out = Data[Pos];
    Pos += 1;
    return true;
  }

  bool readU32(std::uint32_t &Out) {
    if (remaining() < 4)
      return false;
    Out = loadLe32(Data.data() + Pos);
    Pos += 4;
    return true;
  }

  bool readU64(std::uint64_t &Out) {
    if (remaining() < 8)
      return false;
    Out = loadLe64(Data.data() + Pos);
    Pos += 8;
    return true;
  }

  bool readBytes(std::size_t Count, ByteSpan &Out) {
    if (remaining() < Count)
      return false;
    Out = ByteSpan(Data.data() + Pos, Count);
    Pos += Count;
    return true;
  }

  bool readFingerprint(Fingerprint &Out) {
    ByteSpan Raw;
    if (!readBytes(Fingerprint::Size, Raw))
      return false;
    Sha1::Digest Digest;
    std::memcpy(Digest.data(), Raw.data(), Fingerprint::Size);
    Out = Fingerprint(Digest);
    return true;
  }

private:
  ByteSpan Data;
  std::size_t Pos = 0;
};

void appendFingerprint(ByteVector &Out, const Fingerprint &Fp) {
  Out.insert(Out.end(), Fp.bytes().begin(), Fp.bytes().end());
}

/// Serializes the type-specific body of \p Record and returns the
/// chunk-payload bytes it contains.
std::uint64_t encodeBody(const JournalRecord &Record, ByteVector &Out) {
  std::uint64_t ChunkPayloadBytes = 0;
  switch (Record.Type) {
  case RecordType::WriteBatch:
    appendLe32(Out, static_cast<std::uint32_t>(Record.Chunks.size()));
    for (const NewChunk &Chunk : Record.Chunks) {
      appendLe64(Out, Chunk.Location);
      appendFingerprint(Out, Chunk.Fp);
      appendLe32(Out, static_cast<std::uint32_t>(Chunk.Encoded.size()));
      appendBytes(Out, ByteSpan(Chunk.Encoded.data(), Chunk.Encoded.size()));
      ChunkPayloadBytes += Chunk.Encoded.size();
    }
    appendLe32(Out, static_cast<std::uint32_t>(Record.Updates.size()));
    for (const MapUpdate &Update : Record.Updates) {
      appendLe64(Out, Update.Lba);
      appendLe64(Out, Update.Location);
      appendFingerprint(Out, Update.Fp);
    }
    appendLe32(Out, static_cast<std::uint32_t>(Record.Deltas.size()));
    for (const RefDelta &Delta : Record.Deltas) {
      appendLe64(Out, Delta.Location);
      appendLe64(Out, static_cast<std::uint64_t>(Delta.Delta));
    }
    break;
  case RecordType::Trim:
    appendLe64(Out, Record.Lba);
    appendLe64(Out, Record.Count);
    break;
  case RecordType::SnapshotCreate:
  case RecordType::SnapshotDelete:
    appendLe64(Out, Record.SnapshotId);
    break;
  case RecordType::Gc:
    appendLe64(Out, Record.Collected);
    break;
  }
  return ChunkPayloadBytes;
}

/// Parses one CRC-verified payload. Failure means the payload is
/// structurally malformed — tearing cannot produce that (the CRC
/// already passed), so callers report JournalCorrupt.
bool decodePayload(ByteSpan Payload, JournalRecord &Out) {
  ByteReader Reader(Payload);
  std::uint8_t TypeByte = 0;
  if (!Reader.readU64(Out.Seq) || !Reader.readU8(TypeByte))
    return false;
  if (TypeByte > static_cast<std::uint8_t>(RecordType::Gc))
    return false;
  Out.Type = static_cast<RecordType>(TypeByte);
  switch (Out.Type) {
  case RecordType::WriteBatch: {
    // The counts are untrusted (CRC-valid garbage can claim ~4e9
    // elements); every reserve() is clamped to what the remaining
    // bytes could actually encode so a crafted payload cannot force a
    // huge allocation — the per-element reads then fail naturally.
    std::uint32_t ChunkCount = 0;
    if (!Reader.readU32(ChunkCount))
      return false;
    Out.Chunks.reserve(
        std::min<std::size_t>(ChunkCount, Reader.remaining() / (12 + Fingerprint::Size)));
    for (std::uint32_t I = 0; I < ChunkCount; ++I) {
      NewChunk Chunk;
      std::uint32_t EncodedSize = 0;
      ByteSpan Encoded;
      if (!Reader.readU64(Chunk.Location) ||
          !Reader.readFingerprint(Chunk.Fp) || !Reader.readU32(EncodedSize) ||
          !Reader.readBytes(EncodedSize, Encoded))
        return false;
      Chunk.Encoded.assign(Encoded.begin(), Encoded.end());
      Out.Chunks.push_back(std::move(Chunk));
    }
    std::uint32_t UpdateCount = 0;
    if (!Reader.readU32(UpdateCount))
      return false;
    Out.Updates.reserve(
        std::min<std::size_t>(UpdateCount, Reader.remaining() / (16 + Fingerprint::Size)));
    for (std::uint32_t I = 0; I < UpdateCount; ++I) {
      MapUpdate Update;
      if (!Reader.readU64(Update.Lba) || !Reader.readU64(Update.Location) ||
          !Reader.readFingerprint(Update.Fp))
        return false;
      Out.Updates.push_back(Update);
    }
    std::uint32_t DeltaCount = 0;
    if (!Reader.readU32(DeltaCount))
      return false;
    Out.Deltas.reserve(std::min<std::size_t>(DeltaCount, Reader.remaining() / 16));
    for (std::uint32_t I = 0; I < DeltaCount; ++I) {
      RefDelta Delta;
      std::uint64_t Raw = 0;
      if (!Reader.readU64(Delta.Location) || !Reader.readU64(Raw))
        return false;
      Delta.Delta = static_cast<std::int64_t>(Raw);
      Out.Deltas.push_back(Delta);
    }
    break;
  }
  case RecordType::Trim:
    if (!Reader.readU64(Out.Lba) || !Reader.readU64(Out.Count))
      return false;
    break;
  case RecordType::SnapshotCreate:
  case RecordType::SnapshotDelete:
    if (!Reader.readU64(Out.SnapshotId))
      return false;
    break;
  case RecordType::Gc:
    if (!Reader.readU64(Out.Collected))
      return false;
    break;
  }
  return Reader.atEnd();
}

} // namespace

void journal::encodeJournalHeader(const JournalHeader &Header,
                                  ByteVector &Out) {
  const std::size_t Begin = Out.size();
  appendLe64(Out, JournalMagic);
  appendLe32(Out, JournalVersion);
  appendLe32(Out, Header.ChunkSize);
  appendLe64(Out, Header.BlockCount);
  appendLe64(Out, Header.BaseSeq);
  appendLe32(Out, crc32c(ByteSpan(Out.data() + Begin, Out.size() - Begin)));
}

std::uint64_t journal::encodeRecord(const JournalRecord &Record,
                                    ByteVector &Out) {
  ByteVector Payload;
  appendLe64(Payload, Record.Seq);
  Payload.push_back(static_cast<std::uint8_t>(Record.Type));
  const std::uint64_t ChunkPayloadBytes = encodeBody(Record, Payload);
  appendLe32(Out, static_cast<std::uint32_t>(Payload.size()));
  appendLe32(Out, crc32c(ByteSpan(Payload.data(), Payload.size())));
  appendBytes(Out, ByteSpan(Payload.data(), Payload.size()));
  return ChunkPayloadBytes;
}

fault::Expected<JournalScan> journal::scanJournal(ByteSpan File) {
  if (File.size() < JournalHeaderSize)
    return Status::error(ErrorCode::JournalCorrupt, File.size());
  const std::uint32_t HeaderCrc = loadLe32(File.data() + JournalHeaderSize - 4);
  if (crc32c(ByteSpan(File.data(), JournalHeaderSize - 4)) != HeaderCrc)
    return Status::error(ErrorCode::JournalCorrupt);
  ByteReader Reader(File);
  JournalScan Scan;
  std::uint64_t Magic = 0;
  std::uint32_t Version = 0;
  std::uint32_t Crc = 0;
  Reader.readU64(Magic);
  Reader.readU32(Version);
  Reader.readU32(Scan.Header.ChunkSize);
  Reader.readU64(Scan.Header.BlockCount);
  Reader.readU64(Scan.Header.BaseSeq);
  Reader.readU32(Crc);
  if (Magic != JournalMagic)
    return Status::error(ErrorCode::JournalCorrupt);
  if (Version != JournalVersion)
    return Status::error(ErrorCode::StateMismatch, Version);

  // Record loop: any frame the CRC cannot vouch for starts the torn
  // tail — discard it and every byte after it.
  std::uint64_t ExpectedSeq = Scan.Header.BaseSeq;
  while (!Reader.atEnd()) {
    const std::size_t FrameStart = Reader.position();
    std::uint32_t PayloadSize = 0;
    std::uint32_t PayloadCrc = 0;
    ByteSpan Payload;
    if (!Reader.readU32(PayloadSize) || !Reader.readU32(PayloadCrc) ||
        !Reader.readBytes(PayloadSize, Payload) ||
        crc32c(Payload) != PayloadCrc) {
      Scan.TornBytes = File.size() - FrameStart;
      break;
    }
    JournalRecord Record;
    if (!decodePayload(Payload, Record))
      return Status::error(ErrorCode::JournalCorrupt, FrameStart);
    if (Record.Seq != ExpectedSeq)
      return Status::error(ErrorCode::JournalCorrupt, Record.Seq);
    ++ExpectedSeq;
    Scan.Records.push_back(std::move(Record));
  }
  return Scan;
}

void journal::encodeCheckpoint(std::uint64_t CoveredSeq, ByteSpan Image,
                               ByteVector &Out) {
  const std::size_t Begin = Out.size();
  appendLe64(Out, CheckpointMagic);
  appendLe32(Out, CheckpointVersion);
  appendLe64(Out, CoveredSeq);
  appendLe64(Out, Image.size());
  appendBytes(Out, Image);
  appendLe32(Out, crc32c(ByteSpan(Out.data() + Begin, Out.size() - Begin)));
}

fault::Expected<CheckpointView> journal::scanCheckpoint(ByteSpan File) {
  if (File.size() < CheckpointPrefixSize + 4)
    return Status::error(ErrorCode::ImageCorrupt, File.size());
  const std::uint32_t FileCrc = loadLe32(File.data() + File.size() - 4);
  if (crc32c(ByteSpan(File.data(), File.size() - 4)) != FileCrc)
    return Status::error(ErrorCode::ImageCorrupt);
  ByteReader Reader(File);
  std::uint64_t Magic = 0;
  std::uint32_t Version = 0;
  CheckpointView View;
  std::uint64_t ImageSize = 0;
  Reader.readU64(Magic);
  Reader.readU32(Version);
  Reader.readU64(View.CoveredSeq);
  Reader.readU64(ImageSize);
  if (Magic != CheckpointMagic)
    return Status::error(ErrorCode::ImageCorrupt);
  if (Version != CheckpointVersion)
    return Status::error(ErrorCode::StateMismatch, Version);
  if (ImageSize != File.size() - CheckpointPrefixSize - 4)
    return Status::error(ErrorCode::ImageCorrupt, ImageSize);
  Reader.readBytes(ImageSize, View.Image);
  return View;
}
