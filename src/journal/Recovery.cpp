//===----------------------------------------------------------------------===//
///
/// \file
/// Recovery implementation: checkpoint load, journal scan, validated
/// replay.
///
//===----------------------------------------------------------------------===//

#include "journal/Recovery.h"

#include "persist/VolumeImage.h"

#include <cerrno>
#include <cstdio>
#include <unordered_set>

using namespace padre;
using namespace padre::journal;
using padre::fault::ErrorCode;
using padre::fault::Status;

namespace {

/// Reads \p Path entirely. False only when the file does not exist
/// (treated as absent by the caller); any other open failure —
/// permissions, transient I/O — reports IoError via \p St, as does a
/// short read on an opened file. Absence must stay distinct from
/// unreadability: recovering from the checkpoint alone while a real
/// journal sits unreadable would silently drop committed records.
bool readFileBytes(const std::string &Path, ByteVector &Out, Status &St) {
  errno = 0;
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    if (errno == ENOENT)
      return false;
    St = Status::error(ErrorCode::IoError);
    return true;
  }
  std::fseek(File, 0, SEEK_END);
  const long Size = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  if (Size < 0) {
    std::fclose(File);
    St = Status::error(ErrorCode::IoError);
    return true;
  }
  Out.resize(static_cast<std::size_t>(Size));
  const std::size_t Read =
      Out.empty() ? 0 : std::fread(Out.data(), 1, Out.size(), File);
  std::fclose(File);
  if (Read != Out.size())
    St = Status::error(ErrorCode::IoError);
  return true;
}

/// Charges the modelled cost of reading + validating \p Bytes:
/// a sequential SSD read and the CPU verification pass.
double chargeScan(ReductionPipeline &Pipeline, std::uint64_t Bytes) {
  double Us = 0.0;
  ResourceLedger &Ledger = Pipeline.ledger();
  const double SsdBeforeUs = Ledger.busyMicros(Resource::Ssd);
  Pipeline.ssd().readSequential(Bytes);
  Us += Ledger.busyMicros(Resource::Ssd) - SsdBeforeUs;
  const double VerifyUs = Pipeline.platform().Model.Cpu.VerifyPerByteNs *
                          1e-3 * static_cast<double>(Bytes);
  Ledger.chargeMicros(Resource::CpuPool, VerifyUs);
  Us += VerifyUs;
  return Us;
}

/// Replays one committed record onto the pair, validating every effect
/// against the recorded intent.
Status replayRecord(JournalRecord &Record, ReductionPipeline &Pipeline,
                    Volume &Vol) {
  switch (Record.Type) {
  case RecordType::WriteBatch: {
    std::vector<std::uint32_t> RefsBefore;
    RefsBefore.reserve(Record.Deltas.size());
    for (const RefDelta &Delta : Record.Deltas)
      RefsBefore.push_back(Vol.refCount(Delta.Location));
    std::unordered_set<std::uint64_t> FreshChunks;
    for (NewChunk &Chunk : Record.Chunks) {
      FreshChunks.insert(Chunk.Location);
      if (!Pipeline.restoreChunk(Chunk.Location, std::move(Chunk.Encoded),
                                 Chunk.Fp))
        return Status::error(ErrorCode::ReplayMismatch, Chunk.Location);
    }
    for (const MapUpdate &Update : Record.Updates)
      if (!Vol.applyMappingUpdate(Update.Lba, Update.Location, Update.Fp,
                                  FreshChunks.count(Update.Location) != 0))
        return Status::error(ErrorCode::ReplayMismatch, Update.Lba);
    for (std::size_t I = 0; I < Record.Deltas.size(); ++I) {
      const RefDelta &Delta = Record.Deltas[I];
      const std::int64_t Moved =
          static_cast<std::int64_t>(Vol.refCount(Delta.Location)) -
          static_cast<std::int64_t>(RefsBefore[I]);
      if (Moved != Delta.Delta)
        return Status::error(ErrorCode::ReplayMismatch, Delta.Location);
    }
    return {};
  }
  case RecordType::Trim:
    if (!Vol.trim(Record.Lba, Record.Count))
      return Status::error(ErrorCode::ReplayMismatch, Record.Lba);
    return {};
  case RecordType::SnapshotCreate:
    if (Vol.createSnapshot() != Record.SnapshotId)
      return Status::error(ErrorCode::ReplayMismatch, Record.SnapshotId);
    return {};
  case RecordType::SnapshotDelete:
    if (!Vol.deleteSnapshot(Record.SnapshotId))
      return Status::error(ErrorCode::ReplayMismatch, Record.SnapshotId);
    return {};
  case RecordType::Gc:
    if (Vol.collectGarbage() != Record.Collected)
      return Status::error(ErrorCode::ReplayMismatch, Record.Collected);
    return {};
  }
  return Status::error(ErrorCode::JournalCorrupt);
}

} // namespace

RecoveryReport journal::recoverVolume(const std::string &JournalPath,
                                      const std::string &CheckpointPath,
                                      ReductionPipeline &Pipeline, Volume &Vol,
                                      obs::MetricsRegistry *Metrics) {
  RecoveryReport Report;
  obs::TraceRecorder *Trace = Pipeline.config().Trace;

  // Phase 1: checkpoint.
  {
    const obs::StageSpan Stage(Trace, Pipeline.ledger(), "ckpt:load");
    ByteVector File;
    Status ReadSt;
    if (readFileBytes(CheckpointPath, File, ReadSt)) {
      if (!ReadSt.ok()) {
        Report.St = ReadSt;
        return Report;
      }
      Report.ModelledMicros += chargeScan(Pipeline, File.size());
      const fault::Expected<CheckpointView> View =
          scanCheckpoint(ByteSpan(File.data(), File.size()));
      if (!View.ok()) {
        Report.St = View.status();
        return Report;
      }
      if (const Status St = decodeVolumeImage(View->Image, Pipeline, Vol);
          !St.ok()) {
        Report.St = St;
        return Report;
      }
      Report.CheckpointLoaded = true;
      Report.CheckpointSeq = View->CoveredSeq;
      Report.LastSeq = View->CoveredSeq;
    }
  }

  // Phase 2+3: journal scan and replay.
  const obs::StageSpan Stage(Trace, Pipeline.ledger(), "journal:replay");
  ByteVector File;
  Status ReadSt;
  if (!readFileBytes(JournalPath, File, ReadSt))
    return Report; // no journal — the checkpoint (or empty volume) is it
  if (!ReadSt.ok()) {
    Report.St = ReadSt;
    return Report;
  }
  Report.ModelledMicros += chargeScan(Pipeline, File.size());
  fault::Expected<JournalScan> Scan =
      scanJournal(ByteSpan(File.data(), File.size()));
  if (!Scan.ok()) {
    Report.St = Scan.status();
    return Report;
  }
  Report.DiscardedTailBytes = Scan->TornBytes;
  if (Scan->Header.ChunkSize != Pipeline.config().ChunkSize ||
      Scan->Header.BlockCount != Vol.blockCount()) {
    Report.St = Status::error(ErrorCode::StateMismatch);
    return Report;
  }
  // The log must continue where the checkpoint stops: a truncated log
  // whose base skips past the covered sequence lost records.
  if (Scan->Header.BaseSeq > Report.CheckpointSeq + 1) {
    Report.St =
        Status::error(ErrorCode::JournalCorrupt, Scan->Header.BaseSeq);
    return Report;
  }

  for (JournalRecord &Record : Scan->Records) {
    if (Record.Seq <= Report.CheckpointSeq) {
      // Mid-checkpoint crash residue: already covered by the image.
      ++Report.SkippedRecords;
      continue;
    }
    if (const Status St = replayRecord(Record, Pipeline, Vol); !St.ok()) {
      Report.St = St;
      return Report;
    }
    ++Report.ReplayedRecords;
    Report.LastSeq = Record.Seq;
  }

  if (Metrics) {
    Metrics->counter("padre_journal_replayed_records_total",
                     "Records replayed by recovery")
        .add(Report.ReplayedRecords);
    Metrics->counter("padre_journal_torn_bytes_total",
                     "Torn-tail bytes discarded by recovery")
        .add(Report.DiscardedTailBytes);
  }
  return Report;
}
