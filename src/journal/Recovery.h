//===----------------------------------------------------------------------===//
///
/// \file
/// Crash recovery: rebuilds a volume (mapping, chunk store, dedup
/// index, reference table) from the last checkpoint plus the
/// committed suffix of the metadata journal.
///
///   1. load the checkpoint (if present) through the VolumeImage
///      decoder — all-or-nothing, CRC-gated,
///   2. scan the journal, discarding the torn tail (a partial final
///      flush is the expected residue of a crash, never trusted),
///   3. replay every committed record newer than the checkpoint's
///      covered sequence, in order, validating each against its
///      recorded intent (refcount deltas, snapshot ids, GC counts).
///
/// The guarantee: every *acknowledged* operation (sequence <= the
/// frontend's ackedSeq() at crash time) is rebuilt bit-identically;
/// operations that never committed are cleanly absent; an operation
/// that committed in the same flush the crash interrupted *after* the
/// flush landed (post-commit crash) may be present — durable but
/// unacknowledged, the one outcome write-ahead logging permits.
///
/// Modelled cost: sequential SSD reads of both files plus a CPU
/// validation pass (CostModel Cpu.VerifyPerByteNs per byte), so
/// recovery time scales with checkpoint size + log length — the E7
/// benchmark's subject.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_JOURNAL_RECOVERY_H
#define PADRE_JOURNAL_RECOVERY_H

#include "core/Volume.h"
#include "journal/JournalFormat.h"

#include <string>

namespace padre {
namespace journal {

/// What recovery did (and how long it took in modelled time).
struct RecoveryReport {
  fault::Status St;
  bool CheckpointLoaded = false;
  /// Last sequence the checkpoint covers (0 without a checkpoint).
  std::uint64_t CheckpointSeq = 0;
  std::uint64_t ReplayedRecords = 0;
  /// Committed records older than the checkpoint (mid-checkpoint
  /// crash residue), skipped.
  std::uint64_t SkippedRecords = 0;
  /// Torn-tail bytes discarded from the journal.
  std::uint64_t DiscardedTailBytes = 0;
  /// Highest sequence restored (checkpoint or replay).
  std::uint64_t LastSeq = 0;
  /// Modelled time the recovery charged (µs).
  double ModelledMicros = 0.0;

  bool ok() const { return St.ok(); }
};

/// Recovers into a *freshly constructed* \p Pipeline / \p Vol pair
/// with matching geometry. Missing/unopenable files are treated as
/// absent (no checkpoint -> empty base; no journal -> nothing to
/// replay). Errors: ImageCorrupt / StateMismatch from the checkpoint,
/// JournalCorrupt from the log, ReplayMismatch when a record's
/// effects disagree with its recorded intent. On error the pair may
/// hold a partial replay prefix — discard it and keep the typed
/// error.
RecoveryReport recoverVolume(const std::string &JournalPath,
                             const std::string &CheckpointPath,
                             ReductionPipeline &Pipeline, Volume &Vol,
                             obs::MetricsRegistry *Metrics = nullptr);

} // namespace journal
} // namespace padre

#endif // PADRE_JOURNAL_RECOVERY_H
