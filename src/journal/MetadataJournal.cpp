//===----------------------------------------------------------------------===//
///
/// \file
/// Metadata journal writer implementation.
///
//===----------------------------------------------------------------------===//

#include "journal/MetadataJournal.h"

#include <algorithm>

using namespace padre;
using namespace padre::journal;
using padre::fault::ErrorCode;
using padre::fault::Status;

MetadataJournal::~MetadataJournal() { close(); }

void MetadataJournal::close() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

fault::Status MetadataJournal::create(const std::string &Path,
                                      const JournalHeader &Header) {
  close();
  this->Path = Path;
  this->Header = Header;
  NextSeq = Header.BaseSeq;
  CommittedSeq = Header.BaseSeq - 1;
  Pending.clear();
  PendingChunkPayload = 0;
  PendingRecords = 0;

  File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return Status::error(ErrorCode::IoError);
  ByteVector Bytes;
  encodeJournalHeader(Header, Bytes);
  if (std::fwrite(Bytes.data(), 1, Bytes.size(), File) != Bytes.size() ||
      std::fflush(File) != 0)
    return Status::error(ErrorCode::IoError);
  return {};
}

std::uint64_t MetadataJournal::append(JournalRecord Record) {
  Record.Seq = NextSeq++;
  PendingChunkPayload += encodeRecord(Record, Pending);
  ++PendingRecords;
  return Record.Seq;
}

fault::Expected<MetadataJournal::CommitInfo> MetadataJournal::commit() {
  CommitInfo Info;
  if (Pending.empty())
    return Info;
  if (!File)
    return Status::error(ErrorCode::IoError);
  if (std::fwrite(Pending.data(), 1, Pending.size(), File) !=
          Pending.size() ||
      std::fflush(File) != 0)
    return Status::error(ErrorCode::IoError);
  Info.FramedBytes = Pending.size();
  Info.MetaBytes = Pending.size() - PendingChunkPayload;
  Info.Records = PendingRecords;
  CommittedSeq = NextSeq - 1;
  Pending.clear();
  PendingChunkPayload = 0;
  PendingRecords = 0;
  return Info;
}

fault::Status MetadataJournal::tornCommit(std::size_t KeepBytes) {
  if (!File)
    return Status::error(ErrorCode::IoError);
  KeepBytes = std::min(KeepBytes, Pending.size());
  if (KeepBytes > 0 &&
      (std::fwrite(Pending.data(), 1, KeepBytes, File) != KeepBytes ||
       std::fflush(File) != 0))
    return Status::error(ErrorCode::IoError);
  // The records never became durable: they are gone, exactly as after
  // a power cut. CommittedSeq stays where the last full commit left it.
  Pending.clear();
  PendingChunkPayload = 0;
  PendingRecords = 0;
  return {};
}

fault::Status MetadataJournal::truncate(std::uint64_t BaseSeq) {
  JournalHeader NewHeader = Header;
  NewHeader.BaseSeq = BaseSeq;
  return create(Path, NewHeader);
}
