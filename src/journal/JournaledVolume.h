//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-consistent frontend over an LBA volume: every mutating
/// operation is recorded in the metadata write-ahead log before it is
/// acknowledged, in strict write-ahead order —
///
///   1. data destage      the pipeline stores the chunks (batch N's
///                        destage on the SSD timeline),
///   2. journal commit    the record (LBA remaps, new-chunk
///                        fingerprints + encoded blocks, refcount
///                        deltas) is framed, CRC'd and flushed;
///                        modelled as a sequential SSD append pinned
///                        *after* the destage completes
///                        (BatchScheduler::noteCommit),
///   3. acknowledge       only now does the caller observe success.
///
/// A crash before (3) loses nothing that was promised: recovery
/// (journal/Recovery.h) replays exactly the committed prefix, and an
/// operation is acknowledged iff its sequence number is <= ackedSeq().
/// A crash between (2) and (3) may legitimately surface the write
/// after recovery — durable but never acknowledged — the one outcome
/// WAL semantics cannot forbid.
///
/// Group commit amortizes (2): with GroupCommitOps > 1 records pool in
/// memory and one flush covers the group (sync() forces it). Periodic
/// checkpoints snapshot the full volume through the VolumeImage format
/// and truncate the log, bounding recovery time by the log length
/// since the last checkpoint rather than volume size.
///
/// Crash injection: the fault plan's `crash` site
/// (crash@<point>:crash:...) halts the frontend at MidDestage,
/// PreCommit, MidCommit (optionally with a torn tail), PostCommit or
/// MidCheckpoint. Once halted every operation returns
/// ErrorCode::Crashed; the test harness then recovers into a fresh
/// pipeline/volume pair and checks acknowledged state bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_JOURNAL_JOURNALEDVOLUME_H
#define PADRE_JOURNAL_JOURNALEDVOLUME_H

#include "core/Volume.h"
#include "journal/MetadataJournal.h"

namespace padre {
namespace journal {

struct JournaledVolumeConfig {
  std::string JournalPath;
  std::string CheckpointPath;
  /// Operations per group commit; 1 = commit (and ack) every op.
  std::size_t GroupCommitOps = 1;
  /// Checkpoint + log truncation every N committed ops; 0 = never.
  std::size_t CheckpointEveryOps = 0;
  /// Crash injector (non-owning, may be null = never crashes).
  fault::FaultInjector *Faults = nullptr;
  /// Metrics sink (non-owning, may be null).
  obs::MetricsRegistry *Metrics = nullptr;
};

/// The journaling frontend. Mutating calls MUST go through this class
/// rather than the wrapped volume, or the log diverges from the state
/// it promises to rebuild. Reads are pass-through (vol()).
class JournaledVolume {
public:
  /// \p Vol and \p Pipeline must outlive the frontend. Creates (or
  /// truncates) the journal file immediately; ctorStatus() reports
  /// failure to do so.
  JournaledVolume(Volume &Vol, ReductionPipeline &Pipeline,
                  const JournaledVolumeConfig &Config);

  /// File-creation outcome of the constructor.
  fault::Status ctorStatus() const { return CtorStatus; }

  /// Journaled writeBlocks: destage, record, (group-)commit, ack.
  /// Returns the operation's journal sequence; it is acknowledged once
  /// ackedSeq() >= that sequence (immediately so with GroupCommitOps
  /// of 1).
  fault::Expected<std::uint64_t> writeBlocks(std::uint64_t Lba,
                                             ByteSpan Data);

  /// Journaled TRIM of \p Count blocks at \p Lba.
  fault::Expected<std::uint64_t> trim(std::uint64_t Lba,
                                      std::uint64_t Count);

  /// Journaled snapshot creation; \p IdOut (optional) receives the id.
  fault::Expected<std::uint64_t>
  createSnapshot(Volume::SnapshotId *IdOut = nullptr);

  /// Journaled snapshot deletion.
  fault::Expected<std::uint64_t> deleteSnapshot(Volume::SnapshotId Id);

  /// Journaled garbage collection; \p CollectedOut (optional) receives
  /// the number of chunks purged.
  fault::Expected<std::uint64_t>
  collectGarbage(std::size_t *CollectedOut = nullptr);

  /// Forces the pending group commit (fsync semantics). Ok when
  /// nothing is pending.
  fault::Status sync();

  /// Commits pending records, snapshots the volume into the checkpoint
  /// file (atomically, via temp file + rename) and truncates the log.
  fault::Status checkpoint();

  /// Highest sequence whose operation has been acknowledged to a
  /// caller (0 = none).
  std::uint64_t ackedSeq() const { return AckedSeq; }

  /// Highest sequence durably committed to the journal file. May
  /// exceed ackedSeq() by at most the op interrupted post-commit.
  std::uint64_t committedSeq() const { return Journal.committedSeq(); }

  /// True once a crash point fired; every subsequent op returns
  /// ErrorCode::Crashed.
  bool halted() const { return Halted; }

  std::uint64_t checkpointsTaken() const { return Checkpoints; }

  /// The wrapped volume, for reads and statistics.
  Volume &vol() { return Vol; }
  const Volume &vol() const { return Vol; }

private:
  /// Samples the crash injector at \p Point; when a fault fires, halts
  /// the frontend and returns it.
  std::optional<fault::InjectedFault> crashAt(fault::CrashPoint Point);

  /// Appends \p Record and runs the group-commit policy. On success
  /// returns the record's sequence (acknowledged iff committed).
  fault::Expected<std::uint64_t> logAndMaybeCommit(JournalRecord Record);

  /// Flushes pending records: MidCommit crash window, file write,
  /// modelled charge, PostCommit crash window, ack.
  fault::Status commitPending();

  Volume &Vol;
  ReductionPipeline &Pipeline;
  JournaledVolumeConfig Config;
  MetadataJournal Journal;
  fault::Status CtorStatus;
  bool Halted = false;
  std::uint64_t AckedSeq = 0;
  std::size_t OpsSinceCheckpoint = 0;
  std::uint64_t Checkpoints = 0;

  obs::Counter *RecordsTotal = nullptr;
  obs::Counter *CommitsTotal = nullptr;
  obs::Counter *BytesTotal = nullptr;
  obs::Counter *CheckpointsTotal = nullptr;
};

} // namespace journal
} // namespace padre

#endif // PADRE_JOURNAL_JOURNALEDVOLUME_H
