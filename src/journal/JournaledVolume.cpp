//===----------------------------------------------------------------------===//
///
/// \file
/// Journaling frontend implementation: record construction, group
/// commit, checkpointing and the crash-point windows.
///
//===----------------------------------------------------------------------===//

#include "journal/JournaledVolume.h"

#include "persist/VolumeImage.h"

#include <cstdio>
#include <map>
#include <unordered_set>

using namespace padre;
using namespace padre::journal;
using padre::fault::CrashPoint;
using padre::fault::ErrorCode;
using padre::fault::FaultKind;
using padre::fault::Status;

JournaledVolume::JournaledVolume(Volume &Vol, ReductionPipeline &Pipeline,
                                 const JournaledVolumeConfig &Config)
    : Vol(Vol), Pipeline(Pipeline), Config(Config) {
  if (this->Config.GroupCommitOps == 0)
    this->Config.GroupCommitOps = 1;
  if (obs::MetricsRegistry *M = Config.Metrics) {
    RecordsTotal =
        &M->counter("padre_journal_records_total", "Journal records appended");
    CommitsTotal =
        &M->counter("padre_journal_commits_total", "Journal group commits");
    BytesTotal = &M->counter("padre_journal_bytes_total",
                             "Journal bytes written (framed)");
    CheckpointsTotal =
        &M->counter("padre_journal_checkpoints_total", "Checkpoints taken");
  }
  JournalHeader Header;
  Header.ChunkSize = static_cast<std::uint32_t>(Pipeline.config().ChunkSize);
  Header.BlockCount = Vol.blockCount();
  Header.BaseSeq = 1;
  CtorStatus = Journal.create(Config.JournalPath, Header);
}

std::optional<fault::InjectedFault>
JournaledVolume::crashAt(CrashPoint Point) {
  if (!Config.Faults || Halted)
    return std::nullopt;
  std::optional<fault::InjectedFault> Fault = Config.Faults->sampleCrash(Point);
  if (Fault)
    Halted = true;
  return Fault;
}

fault::Expected<std::uint64_t>
JournaledVolume::writeBlocks(std::uint64_t Lba, ByteSpan Data) {
  if (Halted)
    return Status::error(ErrorCode::Crashed);
  const std::size_t BlockSize = Vol.blockSize();
  if (BlockSize == 0 || Data.size() % BlockSize != 0)
    return Status::error(ErrorCode::StateMismatch, Data.size());
  const std::uint64_t Blocks = Data.size() / BlockSize;
  if (Lba + Blocks > Vol.blockCount() || Lba + Blocks < Lba)
    return Status::error(ErrorCode::StateMismatch, Lba);

  // Pre-write mapping snapshot: the overwritten locations feed the
  // record's refcount deltas.
  std::vector<std::uint64_t> OldLocs;
  OldLocs.reserve(Blocks);
  for (std::uint64_t I = 0; I < Blocks; ++I)
    OldLocs.push_back(Vol.mapping()[Lba + I]);

  // (1) Data destage: the pipeline stores the chunks.
  std::vector<ChunkWriteInfo> Infos;
  if (!Vol.writeBlocks(Lba, Data, &Infos))
    return Status::error(ErrorCode::StateMismatch, Lba);
  if (crashAt(CrashPoint::MidDestage))
    return Status::error(ErrorCode::Crashed);

  // (2a) Build the redo record.
  JournalRecord Record;
  Record.Type = RecordType::WriteBatch;
  std::unordered_set<std::uint64_t> Fresh;
  for (const ChunkWriteInfo &Info : Infos) {
    if (Info.Outcome != LookupOutcome::Unique ||
        !Fresh.insert(Info.Location).second)
      continue;
    const std::optional<ByteSpan> Block =
        Pipeline.store().encodedBlock(Info.Location);
    if (!Block) {
      // The destage in (1) already mutated the volume, but no record
      // will be appended for it — from here on the log diverges from
      // volume state, and any further journaled op would bake that
      // divergence into records whose replay validation must fail.
      // Fence the frontend exactly like a crash: only recovery (which
      // replays the committed prefix onto fresh state) is safe.
      Halted = true;
      return Status::error(ErrorCode::ChunkMissing, Info.Location);
    }
    NewChunk Chunk;
    Chunk.Location = Info.Location;
    Chunk.Fp = Info.Fp;
    Chunk.Encoded.assign(Block->begin(), Block->end());
    Record.Chunks.push_back(std::move(Chunk));
  }
  Record.Updates.reserve(Blocks);
  std::map<std::uint64_t, std::int64_t> DeltaMap;
  for (std::uint64_t I = 0; I < Blocks; ++I) {
    MapUpdate Update;
    Update.Lba = Lba + I;
    Update.Location = Infos[I].Location;
    Update.Fp = Infos[I].Fp;
    Record.Updates.push_back(Update);
    ++DeltaMap[Infos[I].Location];
    if (OldLocs[I] != Volume::Unmapped)
      --DeltaMap[OldLocs[I]];
  }
  for (const auto &[Location, Delta] : DeltaMap)
    if (Delta != 0)
      Record.Deltas.push_back({Location, Delta});

  return logAndMaybeCommit(std::move(Record));
}

fault::Expected<std::uint64_t> JournaledVolume::trim(std::uint64_t Lba,
                                                     std::uint64_t Count) {
  if (Halted)
    return Status::error(ErrorCode::Crashed);
  if (!Vol.trim(Lba, Count))
    return Status::error(ErrorCode::StateMismatch, Lba);
  JournalRecord Record;
  Record.Type = RecordType::Trim;
  Record.Lba = Lba;
  Record.Count = Count;
  return logAndMaybeCommit(std::move(Record));
}

fault::Expected<std::uint64_t>
JournaledVolume::createSnapshot(Volume::SnapshotId *IdOut) {
  if (Halted)
    return Status::error(ErrorCode::Crashed);
  const Volume::SnapshotId Id = Vol.createSnapshot();
  if (IdOut)
    *IdOut = Id;
  JournalRecord Record;
  Record.Type = RecordType::SnapshotCreate;
  Record.SnapshotId = Id;
  return logAndMaybeCommit(std::move(Record));
}

fault::Expected<std::uint64_t>
JournaledVolume::deleteSnapshot(Volume::SnapshotId Id) {
  if (Halted)
    return Status::error(ErrorCode::Crashed);
  if (!Vol.deleteSnapshot(Id))
    return Status::error(ErrorCode::StateMismatch, Id);
  JournalRecord Record;
  Record.Type = RecordType::SnapshotDelete;
  Record.SnapshotId = Id;
  return logAndMaybeCommit(std::move(Record));
}

fault::Expected<std::uint64_t>
JournaledVolume::collectGarbage(std::size_t *CollectedOut) {
  if (Halted)
    return Status::error(ErrorCode::Crashed);
  const std::size_t Collected = Vol.collectGarbage();
  if (CollectedOut)
    *CollectedOut = Collected;
  // Chunks are gone from the store (and, with the FTL on, their flash
  // pages invalidated) but no Gc record exists yet — recovery must
  // rebuild a consistent image from the committed prefix alone.
  if (crashAt(CrashPoint::MidGc))
    return Status::error(ErrorCode::Crashed);
  JournalRecord Record;
  Record.Type = RecordType::Gc;
  Record.Collected = Collected;
  return logAndMaybeCommit(std::move(Record));
}

fault::Expected<std::uint64_t>
JournaledVolume::logAndMaybeCommit(JournalRecord Record) {
  const std::uint64_t Seq = Journal.append(std::move(Record));
  if (RecordsTotal)
    RecordsTotal->add(1);
  if (crashAt(CrashPoint::PreCommit))
    return Status::error(ErrorCode::Crashed);
  if (Journal.pendingRecords() >= Config.GroupCommitOps)
    if (const Status St = commitPending(); !St.ok())
      return St;
  ++OpsSinceCheckpoint;
  if (Config.CheckpointEveryOps != 0 &&
      OpsSinceCheckpoint >= Config.CheckpointEveryOps)
    if (const Status St = checkpoint(); !St.ok())
      return St;
  return Seq;
}

fault::Status JournaledVolume::commitPending() {
  if (Journal.pendingRecords() == 0)
    return {};
  if (const std::optional<fault::InjectedFault> Fault =
          crashAt(CrashPoint::MidCommit)) {
    // A crash inside the flush leaves a deterministic partial tail
    // (torn-write kind) or nothing at all; either way the records
    // never became durable.
    std::size_t KeepBytes = 0;
    if (Fault->Kind == FaultKind::TornWrite && Journal.pendingBytes() > 0)
      KeepBytes = Fault->RandomBits % Journal.pendingBytes();
    Journal.tornCommit(KeepBytes);
    return Status::error(ErrorCode::Crashed);
  }
  fault::Expected<MetadataJournal::CommitInfo> Info = Journal.commit();
  if (!Info.ok())
    return Info.status();
  // The chunk payloads were already charged by the destage stage; the
  // modelled commit pays only for the metadata bytes (DESIGN.md §12).
  const Status St = Pipeline.journalWrite(Info->MetaBytes, "journal:commit");
  if (CommitsTotal)
    CommitsTotal->add(1);
  if (BytesTotal)
    BytesTotal->add(Info->FramedBytes);
  if (!St.ok())
    return St;
  if (crashAt(CrashPoint::PostCommit))
    return Status::error(ErrorCode::Crashed);
  AckedSeq = Journal.committedSeq();
  return {};
}

fault::Status JournaledVolume::sync() {
  if (Halted)
    return Status::error(ErrorCode::Crashed);
  return commitPending();
}

fault::Status JournaledVolume::checkpoint() {
  if (Halted)
    return Status::error(ErrorCode::Crashed);
  // The checkpoint covers exactly the committed prefix.
  if (const Status St = commitPending(); !St.ok())
    return St;
  const std::uint64_t Covered = Journal.committedSeq();

  ByteVector Image;
  if (const Status St = encodeVolumeImage(Vol, Pipeline, Image); !St.ok())
    return St;
  ByteVector FileBytes;
  encodeCheckpoint(Covered, ByteSpan(Image.data(), Image.size()), FileBytes);

  // Temp file + rename: a crash mid-write leaves the previous
  // checkpoint intact; the torn temp file is simply ignored.
  const std::string TmpPath = Config.CheckpointPath + ".tmp";
  std::FILE *File = std::fopen(TmpPath.c_str(), "wb");
  if (!File)
    return Status::error(ErrorCode::IoError);
  const bool Written =
      std::fwrite(FileBytes.data(), 1, FileBytes.size(), File) ==
          FileBytes.size() &&
      std::fflush(File) == 0;
  std::fclose(File);
  if (!Written || std::rename(TmpPath.c_str(), Config.CheckpointPath.c_str()))
    return Status::error(ErrorCode::IoError);

  const Status WriteSt =
      Pipeline.journalWrite(FileBytes.size(), "ckpt:write");
  if (!WriteSt.ok())
    return WriteSt;

  // Crash window: checkpoint durable, log not yet truncated. Recovery
  // skips the already-covered records.
  if (crashAt(CrashPoint::MidCheckpoint))
    return Status::error(ErrorCode::Crashed);

  if (const Status St = Journal.truncate(Covered + 1); !St.ok())
    return St;
  ++Checkpoints;
  if (CheckpointsTotal)
    CheckpointsTotal->add(1);
  OpsSinceCheckpoint = 0;
  return {};
}
