//===----------------------------------------------------------------------===//
///
/// \file
/// vdbench-style stream generator implementation.
///
//===----------------------------------------------------------------------===//

#include "workload/VdbenchStream.h"

#include "util/Random.h"

#include <algorithm>
#include <cassert>

using namespace padre;

// Cells are the compressibility granule: a block is a sequence of
// 64-byte cells, each either random or block-local filler.
static constexpr std::size_t CellSize = 64;
// Empirical compressed fraction of an all-filler block under the LZ
// token format (match tokens every <=131 bytes): used to solve the
// random-cell fraction from the target ratio.
static constexpr double FillerResidue = 0.03;

VdbenchStream::VdbenchStream(const WorkloadConfig &Config) : Config(Config) {
  assert(Config.BlockSize >= CellSize && Config.BlockSize % CellSize == 0 &&
         "Block size must be a multiple of the 64-byte cell");
  assert(Config.DedupRatio >= 1.0 && "Dedup ratio below 1 is meaningless");
  assert(Config.CompressRatio >= 1.0 &&
         "Compression ratio below 1 is meaningless");
  assert(Config.ContentAlphabet >= 2 && Config.ContentAlphabet <= 256 &&
         "Content alphabet out of range");

  // Solve the random-cell fraction f from
  //   1/C = f + FillerResidue * (1 - f).
  const double InverseRatio = 1.0 / Config.CompressRatio;
  RandomCellFraction = std::clamp(
      (InverseRatio - FillerResidue) / (1.0 - FillerResidue), 0.0, 1.0);

  const std::uint64_t Blocks =
      std::max<std::uint64_t>(1, Config.TotalBytes / Config.BlockSize);
  SourceUnique.resize(Blocks);

  // Plan the duplicate structure: each block is a duplicate with
  // probability (1 - 1/D), replaying a uniformly chosen unique block
  // from the recent window.
  const double DuplicateProbability = 1.0 - 1.0 / Config.DedupRatio;
  Random Rng(Config.Seed);
  Duplicate.assign(Blocks, 0);
  std::vector<std::uint64_t> RecentUniques;
  for (std::uint64_t I = 0; I < Blocks; ++I) {
    const bool MakeDuplicate =
        !RecentUniques.empty() && Rng.nextBool(DuplicateProbability);
    if (!MakeDuplicate) {
      SourceUnique[I] = UniqueCount++;
      RecentUniques.push_back(SourceUnique[I]);
      if (Config.DedupWindowBlocks != 0 &&
          RecentUniques.size() > Config.DedupWindowBlocks)
        RecentUniques.erase(RecentUniques.begin());
      continue;
    }
    Duplicate[I] = 1;
    SourceUnique[I] =
        RecentUniques[Rng.nextBelow(RecentUniques.size())];
  }
}

double VdbenchStream::achievedDedupRatio() const {
  if (UniqueCount == 0)
    return 1.0;
  return static_cast<double>(blockCount()) /
         static_cast<double>(UniqueCount);
}

bool VdbenchStream::isDuplicate(std::uint64_t Index) const {
  assert(Index < blockCount() && "Block index out of range");
  return Duplicate[Index] != 0;
}

void VdbenchStream::fillUnique(std::uint64_t UniqueId,
                               MutableByteSpan Out) const {
  assert(Out.size() == Config.BlockSize && "Output span size mismatch");
  // Independent deterministic streams per unique block.
  std::uint64_t Mix = Config.Seed ^ (UniqueId * 0x9E3779B97F4A7C15ULL);
  Random Rng(Random::splitMix64(Mix));

  // Block-local filler pattern: an 8-byte word repeated through the
  // cell. Distinct uniques get distinct fillers so cross-block
  // "compressibility" cannot masquerade as deduplication.
  std::uint8_t Filler[CellSize];
  {
    const std::uint64_t Word = Rng.nextU64();
    for (std::size_t I = 0; I < CellSize; ++I)
      Filler[I] = static_cast<std::uint8_t>(Word >> (8 * (I % 8)));
  }

  const std::size_t Cells = Config.BlockSize / CellSize;
  for (std::size_t Cell = 0; Cell < Cells; ++Cell) {
    std::uint8_t *CellOut = Out.data() + Cell * CellSize;
    if (!Rng.nextBool(RandomCellFraction)) {
      std::copy(Filler, Filler + CellSize, CellOut);
      continue;
    }
    if (Config.ContentAlphabet >= 256) {
      Rng.fillBytes(CellOut, CellSize);
      continue;
    }
    for (std::size_t I = 0; I < CellSize; ++I)
      CellOut[I] =
          static_cast<std::uint8_t>(Rng.nextBelow(Config.ContentAlphabet));
  }
}

void VdbenchStream::fillBlock(std::uint64_t Index,
                              MutableByteSpan Out) const {
  assert(Index < blockCount() && "Block index out of range");
  fillUnique(SourceUnique[Index], Out);
}

ByteVector VdbenchStream::generateAll() const {
  ByteVector Stream(totalBytes());
  for (std::uint64_t I = 0; I < blockCount(); ++I)
    fillBlock(I, MutableByteSpan(Stream.data() + I * Config.BlockSize,
                                 Config.BlockSize));
  return Stream;
}
