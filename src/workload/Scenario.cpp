//===----------------------------------------------------------------------===//
///
/// \file
/// Shaped trace scenario generators.
///
//===----------------------------------------------------------------------===//

#include "workload/Scenario.h"

#include "util/Random.h"

#include <algorithm>
#include <cassert>

using namespace padre;

const char *padre::scenarioShapeName(ScenarioShape Shape) {
  switch (Shape) {
  case ScenarioShape::Sequential:
    return "sequential";
  case ScenarioShape::UniformRandom:
    return "uniform";
  case ScenarioShape::SkewedHot:
    return "skewed-hot";
  case ScenarioShape::BurstyHot:
    return "bursty-hot";
  case ScenarioShape::DayNight:
    return "day-night";
  }
  assert(false && "Unknown scenario shape");
  return "?";
}

bool padre::parseScenarioShape(const std::string &Name, ScenarioShape &Out) {
  for (unsigned S = 0; S < ScenarioShapeCount; ++S) {
    if (Name == scenarioShapeName(static_cast<ScenarioShape>(S))) {
      Out = static_cast<ScenarioShape>(S);
      return true;
    }
  }
  return false;
}

namespace {

/// Advances the arrival clock by one jittered inter-arrival of mean
/// \p MeanUs (uniform in [0.5, 1.5) x mean).
std::uint64_t nextArrival(double &ClockUs, double MeanUs, Random &Rng) {
  ClockUs += MeanUs * (0.5 + Rng.nextDouble());
  return static_cast<std::uint64_t>(ClockUs);
}

} // namespace

TraceLog padre::synthesizeScenario(const ScenarioConfig &Config) {
  assert(Config.VolumeBlocks > 0 && Config.MaxRunBlocks > 0 &&
         "Empty scenario geometry");
  assert(Config.WriteFraction + Config.ReadFraction <= 1.0 &&
         "Operation mix exceeds 1");
  TraceLog Log;
  Log.Records.reserve(Config.Operations);
  Random Rng(Config.Seed ^ 0x5CE9A410ull);

  const std::uint64_t HotBlocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(Config.VolumeBlocks) *
                                    Config.HotFraction));
  // Unique-content mode starts tags far above any pool tag.
  std::uint64_t NextUniqueTag = 1ull << 40;
  const auto DrawTag = [&]() {
    return Config.ContentTags == 0 ? NextUniqueTag++
                                   : Rng.nextBelow(Config.ContentTags);
  };

  double ClockUs = 0.0;
  std::uint64_t SeqLba = 0; // Sequential: the rolling write cursor

  for (std::uint64_t I = 0; I < Config.Operations; ++I) {
    TraceRecord Record;

    // --- Arrival time, per shape ---------------------------------
    switch (Config.Shape) {
    case ScenarioShape::BurstyHot: {
      // Bursts of BurstOps ops at Mean/BurstFactor, then one gap that
      // restores the configured mean rate overall.
      const std::uint64_t Pos =
          Config.BurstOps ? I % Config.BurstOps : 0;
      const double InBurstUs =
          Config.MeanInterArrivalUs / std::max(1.0, Config.BurstFactor);
      if (Pos == 0 && I != 0) {
        const double GapUs =
            Config.MeanInterArrivalUs * static_cast<double>(Config.BurstOps) -
            InBurstUs * static_cast<double>(Config.BurstOps - 1);
        Record.ArrivalUs = nextArrival(ClockUs, std::max(GapUs, InBurstUs),
                                       Rng);
      } else {
        Record.ArrivalUs = nextArrival(ClockUs, InBurstUs, Rng);
      }
      break;
    }
    case ScenarioShape::DayNight: {
      const std::uint64_t Period = std::max<std::uint64_t>(2, Config.PeriodOps);
      const bool Night = (I % Period) >= Period / 2;
      const double MeanUs =
          Config.MeanInterArrivalUs *
          (Night ? std::max(1.0, Config.NightFactor) : 1.0);
      Record.ArrivalUs = nextArrival(ClockUs, MeanUs, Rng);
      break;
    }
    default:
      Record.ArrivalUs = nextArrival(ClockUs, Config.MeanInterArrivalUs, Rng);
      break;
    }

    // --- Operation kind and address, per shape -------------------
    if (Config.Shape == ScenarioShape::Sequential) {
      // Pure overwrite passes: runs in LBA order, wrapping at the end
      // of the volume. Every overwrite kills the previous pass's data
      // in exactly allocation order.
      Record.Op = TraceOp::Write;
      Record.Lba = SeqLba;
      const std::uint64_t Run = std::min<std::uint64_t>(
          Config.MaxRunBlocks, Config.VolumeBlocks - SeqLba);
      Record.Blocks = static_cast<std::uint32_t>(Run);
      SeqLba += Run;
      if (SeqLba >= Config.VolumeBlocks)
        SeqLba = 0;
      Record.ContentTag = DrawTag();
      Log.Records.push_back(Record);
      continue;
    }

    const double OpDraw = Rng.nextDouble();
    if (OpDraw < Config.WriteFraction)
      Record.Op = TraceOp::Write;
    else if (OpDraw < Config.WriteFraction + Config.ReadFraction)
      Record.Op = TraceOp::Read;
    else
      Record.Op = TraceOp::Trim;

    std::uint64_t Lba = 0;
    switch (Config.Shape) {
    case ScenarioShape::UniformRandom:
      Lba = Rng.nextBelow(Config.VolumeBlocks);
      break;
    case ScenarioShape::DayNight: {
      // The hot region rotates each period: the working set drifts.
      const std::uint64_t Period = std::max<std::uint64_t>(2, Config.PeriodOps);
      const std::uint64_t Cycle = I / Period;
      const std::uint64_t HotBase =
          (Cycle * HotBlocks) % Config.VolumeBlocks;
      if (Rng.nextBool(Config.HotProbability))
        Lba = (HotBase + Rng.nextBelow(HotBlocks)) % Config.VolumeBlocks;
      else
        Lba = Rng.nextBelow(Config.VolumeBlocks);
      break;
    }
    default: // SkewedHot / BurstyHot
      Lba = Rng.nextBool(Config.HotProbability)
                ? Rng.nextBelow(HotBlocks)
                : Rng.nextBelow(Config.VolumeBlocks);
      break;
    }
    Record.Lba = Lba;
    const std::uint64_t MaxRun = std::min<std::uint64_t>(
        Config.MaxRunBlocks, Config.VolumeBlocks - Record.Lba);
    Record.Blocks = static_cast<std::uint32_t>(1 + Rng.nextBelow(MaxRun));
    if (Record.Op == TraceOp::Write)
      Record.ContentTag = DrawTag();
    Log.Records.push_back(Record);
  }
  return Log;
}
