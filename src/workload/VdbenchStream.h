//===----------------------------------------------------------------------===//
///
/// \file
/// A vdbench-style synthetic dataset generator (§4: "The vdbench is
/// used to generate the dataset… The deduplication and compression
/// ratio are set to 2.0, which is a common ratio for primary storage
/// systems").
///
/// Like vdbench's `dedupratio`/`compratio` knobs, the stream has two
/// independently controllable properties:
///   * dedup ratio  — logical bytes / unique bytes: each block is
///     either a fresh unique block or a byte-identical duplicate of a
///     recent unique block (a bounded window models the temporal
///     locality the bin buffer exploits);
///   * compression ratio — original / compressed: each unique block is
///     built from 64-byte cells that are either incompressible random
///     bytes or a block-local repeating filler pattern; the random-cell
///     fraction is solved from the target ratio.
///
/// Fully deterministic from the seed: block contents are regenerated on
/// demand from (seed, unique id), so duplicates are exact replays.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_WORKLOAD_VDBENCHSTREAM_H
#define PADRE_WORKLOAD_VDBENCHSTREAM_H

#include "util/Bytes.h"

#include <cstdint>
#include <vector>

namespace padre {

/// Generator knobs (vdbench-equivalent parameters in DESIGN.md §1).
struct WorkloadConfig {
  std::size_t BlockSize = 4096;
  std::uint64_t TotalBytes = 64ull << 20; ///< scaled-down default
  double DedupRatio = 2.0;                ///< logical/unique, ≥ 1
  double CompressRatio = 2.0;             ///< original/compressed, ≥ 1
  /// Duplicates reference one of the last N unique blocks (0 = any
  /// earlier unique block).
  std::size_t DedupWindowBlocks = 4096;
  std::uint64_t Seed = 42;
  /// Distinct byte values used in the incompressible cells. 256 (the
  /// default) makes them true random bytes; smaller alphabets model
  /// text-like content whose *bytes* carry fewer bits — invisible to
  /// LZ matching but food for the entropy stage (bench_entropy).
  unsigned ContentAlphabet = 256;
};

/// Deterministic synthetic block stream.
class VdbenchStream {
public:
  explicit VdbenchStream(const WorkloadConfig &Config);

  const WorkloadConfig &config() const { return Config; }

  /// Number of blocks in the stream.
  std::uint64_t blockCount() const { return SourceUnique.size(); }

  /// Total logical bytes (blockCount * BlockSize).
  std::uint64_t totalBytes() const {
    return blockCount() * Config.BlockSize;
  }

  /// Number of distinct unique blocks in the stream.
  std::uint64_t uniqueBlockCount() const { return UniqueCount; }

  /// The dedup ratio actually realized by the generated plan.
  double achievedDedupRatio() const;

  /// True if block \p Index replays an earlier unique block.
  bool isDuplicate(std::uint64_t Index) const;

  /// Fills \p Out (exactly BlockSize bytes) with block \p Index's
  /// content. Deterministic; duplicates are byte-identical replays.
  void fillBlock(std::uint64_t Index, MutableByteSpan Out) const;

  /// Convenience: materializes the whole stream.
  ByteVector generateAll() const;

  /// The random-cell fraction solved from the target compression
  /// ratio (exposed for tests).
  double randomCellFraction() const { return RandomCellFraction; }

private:
  void fillUnique(std::uint64_t UniqueId, MutableByteSpan Out) const;

  WorkloadConfig Config;
  /// Per block: the unique id whose content it carries.
  std::vector<std::uint64_t> SourceUnique;
  /// Per block: 1 if it replays an earlier unique block.
  std::vector<std::uint8_t> Duplicate;
  std::uint64_t UniqueCount = 0;
  double RandomCellFraction = 1.0;
};

} // namespace padre

#endif // PADRE_WORKLOAD_VDBENCHSTREAM_H
