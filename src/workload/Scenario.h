//===----------------------------------------------------------------------===//
///
/// \file
/// Shaped trace scenarios — the MSR/FIU-style traffic patterns the
/// FTL and replay experiments exercise (EXPERIMENTS.md E9). Each
/// shape is a deterministic generator producing a timed `TraceLog`
/// (workload/Trace.h) with open-loop arrival stamps:
///
///   * `Sequential`   — whole-volume overwrite passes in LBA order:
///                      old data dies in allocation order, the
///                      FTL-friendly best case (WA → 1).
///   * `UniformRandom`— uniform LBA picks, no locality.
///   * `SkewedHot`    — the classic 80/20 hotspot: `HotProbability`
///                      of ops land in the first `HotFraction` of the
///                      LBA space (HPDedup's primary-stream skew).
///   * `BurstyHot`    — SkewedHot arrivals compressed into bursts of
///                      `BurstOps` ops (inter-arrival ÷ BurstFactor)
///                      separated by idle gaps.
///   * `DayNight`     — SkewedHot with a duty cycle: each period of
///                      `PeriodOps` ops is half "day" (base rate) and
///                      half "night" (inter-arrival × NightFactor),
///                      and the hot region rotates per period — the
///                      working set drifts like a diurnal workload.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_WORKLOAD_SCENARIO_H
#define PADRE_WORKLOAD_SCENARIO_H

#include "workload/Trace.h"

#include <cstdint>
#include <string>

namespace padre {

/// The trace shapes of the scenario suite.
enum class ScenarioShape : std::uint8_t {
  Sequential,
  UniformRandom,
  SkewedHot,
  BurstyHot,
  DayNight,
};

inline constexpr unsigned ScenarioShapeCount = 5;

/// Stable lower-case name ("sequential", "uniform", "skewed-hot",
/// "bursty-hot", "day-night").
const char *scenarioShapeName(ScenarioShape Shape);

/// Parses a shape name (as printed by `scenarioShapeName`). Returns
/// false on an unknown name.
bool parseScenarioShape(const std::string &Name, ScenarioShape &Out);

/// Scenario knobs. Geometry and mix mirror `TraceSynthesisConfig`;
/// the arrival fields shape the timing.
struct ScenarioConfig {
  ScenarioShape Shape = ScenarioShape::SkewedHot;
  std::uint64_t Operations = 4000;
  std::uint64_t VolumeBlocks = 4096;
  std::uint32_t MaxRunBlocks = 8;
  /// Operation mix; the remainder after writes+reads is trims.
  /// Sequential ignores the mix: it is a pure overwrite stream.
  double WriteFraction = 0.7;
  double ReadFraction = 0.2;
  /// Hotspot locality (SkewedHot / BurstyHot / DayNight).
  double HotFraction = 0.1;
  double HotProbability = 0.9;
  /// Content tags are drawn from [0, ContentTags): a small pool makes
  /// the trace dedup-friendly. 0 = every write gets a unique tag
  /// (dedup-hostile).
  std::uint64_t ContentTags = 64;
  /// Base mean inter-arrival time in microseconds (jittered ±50%).
  double MeanInterArrivalUs = 50.0;
  /// BurstyHot: in-burst inter-arrivals are Mean / BurstFactor; the
  /// gap after each `BurstOps`-op burst restores the overall mean.
  double BurstFactor = 8.0;
  std::uint64_t BurstOps = 64;
  /// DayNight: night inter-arrivals are Mean x NightFactor; a period
  /// is `PeriodOps` ops (half day, half night).
  double NightFactor = 6.0;
  std::uint64_t PeriodOps = 512;
  std::uint64_t Seed = 1;
};

/// Generates the shaped, timed trace for \p Config. Deterministic in
/// the config (same seed, same trace). Arrival stamps are strictly
/// non-decreasing.
TraceLog synthesizeScenario(const ScenarioConfig &Config);

} // namespace padre

#endif // PADRE_WORKLOAD_SCENARIO_H
