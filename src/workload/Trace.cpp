//===----------------------------------------------------------------------===//
///
/// \file
/// Trace format and synthesis implementation.
///
//===----------------------------------------------------------------------===//

#include "workload/Trace.h"

#include "util/Random.h"

#include <cassert>
#include <charconv>
#include <cstdio>
#include <sstream>

using namespace padre;

TraceLog TraceLog::synthesize(const TraceSynthesisConfig &Config) {
  assert(Config.VolumeBlocks > 0 && Config.MaxRunBlocks > 0 &&
         "Empty trace geometry");
  assert(Config.WriteFraction + Config.ReadFraction <= 1.0 &&
         "Operation mix exceeds 1");
  TraceLog Log;
  Log.Records.reserve(Config.Operations);
  Random Rng(Config.Seed);

  const std::uint64_t HotBlocks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(Config.VolumeBlocks) *
             Config.HotFraction));

  for (std::uint64_t I = 0; I < Config.Operations; ++I) {
    TraceRecord Record;
    const double OpDraw = Rng.nextDouble();
    if (OpDraw < Config.WriteFraction)
      Record.Op = TraceOp::Write;
    else if (OpDraw < Config.WriteFraction + Config.ReadFraction)
      Record.Op = TraceOp::Read;
    else
      Record.Op = TraceOp::Trim;

    // Hotspot locality: most operations hit the hot region.
    const std::uint64_t Region = Rng.nextBool(Config.HotProbability)
                                     ? HotBlocks
                                     : Config.VolumeBlocks;
    Record.Lba = Rng.nextBelow(Region);
    const std::uint64_t MaxRun =
        std::min<std::uint64_t>(Config.MaxRunBlocks,
                                Config.VolumeBlocks - Record.Lba);
    Record.Blocks = static_cast<std::uint32_t>(1 + Rng.nextBelow(MaxRun));
    if (Record.Op == TraceOp::Write)
      Record.ContentTag = Rng.nextBelow(Config.ContentTags);
    Log.Records.push_back(Record);
  }
  return Log;
}

std::optional<TraceLog> TraceLog::parse(const std::string &Text) {
  auto Parsed = parseChecked(Text);
  if (!Parsed.ok())
    return std::nullopt;
  return std::move(*Parsed);
}

fault::Expected<TraceLog> TraceLog::parseChecked(const std::string &Text) {
  TraceLog Log;
  std::istringstream Stream(Text);
  std::string Line;
  std::uint64_t LineNo = 0;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    const auto Malformed = [LineNo]() {
      return fault::Status::error(fault::ErrorCode::TraceMalformed, LineNo);
    };
    // Strip comments and skip blank lines.
    const std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream Fields(Line);
    std::string Kind;
    if (!(Fields >> Kind))
      continue; // blank
    TraceRecord Record;
    if (Kind == "W") {
      Record.Op = TraceOp::Write;
      if (!(Fields >> Record.Lba >> Record.Blocks >> Record.ContentTag))
        return Malformed();
    } else if (Kind == "R" || Kind == "T") {
      Record.Op = Kind == "R" ? TraceOp::Read : TraceOp::Trim;
      if (!(Fields >> Record.Lba >> Record.Blocks))
        return Malformed();
    } else {
      return Malformed();
    }
    std::string Extra;
    if (Fields >> Extra) {
      // The only legal trailing token is an `@<us>` arrival stamp —
      // all digits, no sign, no overflow.
      if (Extra.size() < 2 || Extra[0] != '@')
        return Malformed();
      const char *First = Extra.data() + 1;
      const char *Last = Extra.data() + Extra.size();
      const auto [Ptr, Ec] =
          std::from_chars(First, Last, Record.ArrivalUs);
      if (Ec != std::errc() || Ptr != Last)
        return Malformed();
      if (Fields >> Extra)
        return Malformed(); // anything after the arrival is junk
    }
    if (Record.Blocks == 0)
      return Malformed();
    Log.Records.push_back(Record);
  }
  return Log;
}

fault::Status TraceLog::validate(std::uint64_t VolumeBlocks) const {
  for (std::size_t I = 0; I < Records.size(); ++I) {
    const TraceRecord &Record = Records[I];
    const auto Invalid = [I]() {
      return fault::Status::error(fault::ErrorCode::TraceInvalid, I);
    };
    if (Record.Blocks == 0)
      return Invalid(); // zero-length op
    const std::uint64_t End = Record.Lba + Record.Blocks;
    if (End < Record.Lba)
      return Invalid(); // wraps the 64-bit LBA space
    if (End > VolumeBlocks)
      return Invalid(); // overlaps past the end of the volume
  }
  return {};
}

std::string TraceLog::serialize() const {
  std::string Out;
  char Line[96];
  for (const TraceRecord &Record : Records) {
    switch (Record.Op) {
    case TraceOp::Write:
      std::snprintf(Line, sizeof(Line), "W %llu %u %llu\n",
                    static_cast<unsigned long long>(Record.Lba),
                    Record.Blocks,
                    static_cast<unsigned long long>(Record.ContentTag));
      break;
    case TraceOp::Read:
      std::snprintf(Line, sizeof(Line), "R %llu %u\n",
                    static_cast<unsigned long long>(Record.Lba),
                    Record.Blocks);
      break;
    case TraceOp::Trim:
      std::snprintf(Line, sizeof(Line), "T %llu %u\n",
                    static_cast<unsigned long long>(Record.Lba),
                    Record.Blocks);
      break;
    }
    Out += Line;
    if (Record.ArrivalUs != 0) {
      // Timed records carry the arrival as a trailing token.
      std::snprintf(Line, sizeof(Line), "@%llu\n",
                    static_cast<unsigned long long>(Record.ArrivalUs));
      Out.pop_back(); // rejoin the line
      Out += ' ';
      Out += Line;
    }
  }
  return Out;
}

void padre::fillTraceBlock(std::uint64_t Tag, MutableByteSpan Out) {
  std::uint64_t State = Tag ^ 0xC0FFEE0DDF00DULL;
  Random Rng(Random::splitMix64(State));
  std::uint8_t Filler[64];
  Rng.fillBytes(Filler, sizeof(Filler));
  for (std::size_t Offset = 0; Offset < Out.size(); Offset += 64) {
    const std::size_t Take = std::min<std::size_t>(64, Out.size() - Offset);
    // Alternate filler and noise cells: ~2:1 compressible.
    if ((Offset / 64) % 2 == 0)
      std::copy(Filler, Filler + Take, Out.data() + Offset);
    else
      Rng.fillBytes(Out.data() + Offset, Take);
  }
}
