//===----------------------------------------------------------------------===//
///
/// \file
/// Block I/O traces: a minimal trace format (parse/serialize), a
/// synthetic generator with hotspot locality, and deterministic
/// per-tag block content. Traces drive the LBA volume through
/// `replayTrace` (core/TraceRunner.h) — the workflow storage papers
/// use to evaluate against production-like access patterns when real
/// traces are unavailable (DESIGN.md §1).
///
/// Text format, one record per line ('#' starts a comment):
///   W <lba> <blocks> <tag>   write <blocks> blocks of content <tag>
///   R <lba> <blocks>         read
///   T <lba> <blocks>         trim/discard
/// Any record may end with an optional `@<us>` token — the open-loop
/// arrival time in microseconds (MSR/FIU-style timed traces; see
/// workload/Scenario.h for the shaped generators). Untimed records
/// arrive at 0.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_WORKLOAD_TRACE_H
#define PADRE_WORKLOAD_TRACE_H

#include "fault/Status.h"
#include "util/Bytes.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace padre {

/// A trace operation kind.
enum class TraceOp : std::uint8_t { Write, Read, Trim };

/// One trace record. Writes carry a content tag: equal tags produce
/// byte-identical blocks (the dedup-able content model).
struct TraceRecord {
  TraceOp Op = TraceOp::Write;
  std::uint64_t Lba = 0;
  std::uint32_t Blocks = 1;
  std::uint64_t ContentTag = 0; ///< writes only
  /// Open-loop arrival time in microseconds (0 = untimed). Drives the
  /// queueing-latency model of `replayTraceTimed`.
  std::uint64_t ArrivalUs = 0;
};

/// Synthetic trace knobs.
struct TraceSynthesisConfig {
  std::uint64_t Operations = 1000;
  std::uint64_t VolumeBlocks = 4096;
  std::uint32_t MaxRunBlocks = 8;
  /// Operation mix; the remainder after writes+reads is trims.
  double WriteFraction = 0.6;
  double ReadFraction = 0.3;
  /// Hotspot locality: `HotProbability` of ops land in the first
  /// `HotFraction` of the LBA space (the classic 80/20 skew).
  double HotFraction = 0.2;
  double HotProbability = 0.8;
  /// Content tags are drawn from [0, ContentTags): a small pool makes
  /// the trace dedup-friendly.
  std::uint64_t ContentTags = 64;
  std::uint64_t Seed = 1;
};

/// An ordered list of trace records.
class TraceLog {
public:
  std::vector<TraceRecord> Records;

  /// Generates a synthetic trace per \p Config.
  static TraceLog synthesize(const TraceSynthesisConfig &Config);

  /// Parses the text format. Returns nullopt on any malformed line.
  static std::optional<TraceLog> parse(const std::string &Text);

  /// Parses the text format with typed errors: any malformed line is
  /// `ErrorCode::TraceMalformed` with the 1-based line number as the
  /// detail. Never throws, never crashes — corrupted trace files are
  /// expected input (see the corruption-sweep tests).
  static fault::Expected<TraceLog> parseChecked(const std::string &Text);

  /// Semantic validation against a volume of \p VolumeBlocks blocks:
  /// zero-length records, LBA ranges that wrap the 64-bit space, and
  /// ranges overlapping past the end of the volume are
  /// `ErrorCode::TraceInvalid` with the 0-based record index as the
  /// detail. (Replay tolerates such records by skipping them; strict
  /// front-ends — `padrectl replay` — reject upfront.)
  fault::Status validate(std::uint64_t VolumeBlocks) const;

  /// Renders the text format (parse round-trips it, arrivals
  /// included).
  std::string serialize() const;
};

/// Fills \p Out with block content for \p Tag: deterministic,
/// byte-identical across calls, roughly 2:1 compressible.
void fillTraceBlock(std::uint64_t Tag, MutableByteSpan Out);

} // namespace padre

#endif // PADRE_WORKLOAD_TRACE_H
