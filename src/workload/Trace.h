//===----------------------------------------------------------------------===//
///
/// \file
/// Block I/O traces: a minimal trace format (parse/serialize), a
/// synthetic generator with hotspot locality, and deterministic
/// per-tag block content. Traces drive the LBA volume through
/// `replayTrace` (core/TraceRunner.h) — the workflow storage papers
/// use to evaluate against production-like access patterns when real
/// traces are unavailable (DESIGN.md §1).
///
/// Text format, one record per line ('#' starts a comment):
///   W <lba> <blocks> <tag>   write <blocks> blocks of content <tag>
///   R <lba> <blocks>         read
///   T <lba> <blocks>         trim/discard
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_WORKLOAD_TRACE_H
#define PADRE_WORKLOAD_TRACE_H

#include "util/Bytes.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace padre {

/// A trace operation kind.
enum class TraceOp : std::uint8_t { Write, Read, Trim };

/// One trace record. Writes carry a content tag: equal tags produce
/// byte-identical blocks (the dedup-able content model).
struct TraceRecord {
  TraceOp Op = TraceOp::Write;
  std::uint64_t Lba = 0;
  std::uint32_t Blocks = 1;
  std::uint64_t ContentTag = 0; ///< writes only
};

/// Synthetic trace knobs.
struct TraceSynthesisConfig {
  std::uint64_t Operations = 1000;
  std::uint64_t VolumeBlocks = 4096;
  std::uint32_t MaxRunBlocks = 8;
  /// Operation mix; the remainder after writes+reads is trims.
  double WriteFraction = 0.6;
  double ReadFraction = 0.3;
  /// Hotspot locality: `HotProbability` of ops land in the first
  /// `HotFraction` of the LBA space (the classic 80/20 skew).
  double HotFraction = 0.2;
  double HotProbability = 0.8;
  /// Content tags are drawn from [0, ContentTags): a small pool makes
  /// the trace dedup-friendly.
  std::uint64_t ContentTags = 64;
  std::uint64_t Seed = 1;
};

/// An ordered list of trace records.
class TraceLog {
public:
  std::vector<TraceRecord> Records;

  /// Generates a synthetic trace per \p Config.
  static TraceLog synthesize(const TraceSynthesisConfig &Config);

  /// Parses the text format. Returns nullopt on any malformed line.
  static std::optional<TraceLog> parse(const std::string &Text);

  /// Renders the text format (parse round-trips it).
  std::string serialize() const;
};

/// Fills \p Out with block content for \p Tag: deterministic,
/// byte-identical across calls, roughly 2:1 compressible.
void fillTraceBlock(std::uint64_t Tag, MutableByteSpan Out);

} // namespace padre

#endif // PADRE_WORKLOAD_TRACE_H
