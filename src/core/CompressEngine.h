//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel compression engine (§3.2). Two backends:
///
///   * Cpu — "the compute is parallelized by the CPU by assigning a
///     computing thread that runs the previously studied compression
///     algorithm to each chunk": one QuickLZ-class codec call per chunk
///     across the pool.
///   * GpuLane — the paper's design: chunks are batched to the device,
///     each chunk is compressed by multiple lanes with overlapping
///     history windows, and "the GPU's compression results are not
///     refined in GPU due to performance issues. Therefore, the CPU
///     must refine the results" — the CPU post-processing stage runs on
///     the pool after each kernel.
///
/// Both backends fall back to store-raw when compression does not pay.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_COMPRESSENGINE_H
#define PADRE_CORE_COMPRESSENGINE_H

#include "chunk/Chunker.h"
#include "compress/GpuLaneCompressor.h"
#include "compress/LzCodec.h"
#include "gpu/GpuDevice.h"
#include "obs/Obs.h"
#include "sim/CostModel.h"
#include "sim/ResourceLedger.h"
#include "util/ThreadPool.h"

#include <atomic>
#include <span>
#include <vector>

namespace padre {

/// Which hardware runs the LZ scan.
enum class CompressBackend { Cpu, GpuLane };

/// One compressed chunk ready for destage.
struct CompressedChunk {
  ByteVector Block; ///< encoded block (compress/Block.h)
  CompressStats Stats;
  bool StoredRaw = false;
  /// Modelled service latency of this chunk's compression stage in
  /// microseconds. The GPU backend batches chunks per kernel, so every
  /// chunk waits for its whole sub-batch round trip — deeper batching
  /// buys throughput at the price of latency.
  double LatencyUs = 0.0;
};

/// Engine configuration.
struct CompressEngineConfig {
  CompressBackend Backend = CompressBackend::Cpu;
  /// CPU matcher; SingleProbe is the QuickLZ-class default.
  LzCodec::MatcherKind CpuMatcher = LzCodec::MatcherKind::SingleProbe;
  LzOptions CpuOptions;
  GpuLaneConfig Lanes;
  /// Optional Huffman entropy stage over the LZ token stream
  /// (extension): extra CPU cycles for extra ratio. Applied on the CPU
  /// in both backends (for GpuLane it is part of post-processing).
  bool EntropyStage = false;
  /// Sub-blocks per chunk for the v2 framed format (decode v2's
  /// compress-time half, see compress/SubBlockFrame.h). 1 emits the
  /// classic unframed payloads; >1 splits each chunk into that many
  /// independently-decodable sub-blocks (history reset at boundaries)
  /// so the warp-cooperative decoder can expand them in parallel — at
  /// a small measured ratio cost. CPU backend only: the GPU-lane write
  /// path keeps its own format, and the entropy stage is skipped for
  /// framed chunks (a Huffman wrap would hide the sub-block
  /// boundaries the frame exists to expose).
  unsigned SubBlocks = 1;
};

/// The compression stage. One batch at a time; parallelism inside.
class CompressEngine {
public:
  /// \p Device may be null when the backend is Cpu.
  /// \p Obs sinks are optional; defaults disable instrumentation.
  CompressEngine(const CostModel &Model, ResourceLedger &Ledger,
                 ThreadPool &Pool, GpuDevice *Device,
                 const CompressEngineConfig &Config,
                 const obs::ObsSinks &Obs = obs::ObsSinks());

  /// Compresses every chunk in the batch into \p Out (resized).
  /// Infallible by construction: a GPU device fault re-compresses the
  /// affected sub-batch on the CPU path (degraded mode), so callers
  /// never see a partial batch.
  void compressBatch(std::span<const ChunkView> Chunks,
                     std::vector<CompressedChunk> &Out);

  /// Slice entry points for the backend layer (src/backend): compress
  /// Chunks[Begin, End) into Out[Begin, End) on this engine's backend.
  /// \p Out must already be sized to Chunks.size() — the splitter owns
  /// the full batch vector and hands each backend its slice. Same
  /// fault contract as compressBatch (GPU slices fall back per
  /// sub-batch to the CPU path).
  void compressSlice(std::span<const ChunkView> Chunks, std::size_t Begin,
                     std::size_t End, std::vector<CompressedChunk> &Out);

  /// Cumulative store-raw fallbacks.
  std::uint64_t rawFallbacks() const { return RawFallbacks.load(); }

  /// GPU sub-batches re-compressed on the CPU after a device fault.
  std::uint64_t gpuFallbackCount() const { return GpuFallbackCount; }

  const CompressEngineConfig &config() const { return Config; }

private:
  /// CPU backend over [Begin, End) — also the GPU backend's per-sub-
  /// batch fallback.
  void compressRangeCpu(std::span<const ChunkView> Chunks,
                        std::size_t Begin, std::size_t End,
                        std::vector<CompressedChunk> &Out);
  void compressRangeGpu(std::span<const ChunkView> Chunks,
                        std::size_t Begin, std::size_t End,
                        std::vector<CompressedChunk> &Out);

  CostModel Model;
  ResourceLedger &Ledger;
  ThreadPool &Pool;
  GpuDevice *Device;
  CompressEngineConfig Config;
  LzCodec CpuCodec;
  GpuLaneCompressor LaneCompressor;
  std::atomic<std::uint64_t> RawFallbacks{0};
  std::uint64_t GpuFallbackCount = 0;
  // Observability (null = disabled), cached at construction.
  obs::Counter *RawFallbackCounter = nullptr;
  obs::Counter *GpuFallbacks = nullptr;
};

} // namespace padre

#endif // PADRE_CORE_COMPRESSENGINE_H
