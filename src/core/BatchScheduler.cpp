//===----------------------------------------------------------------------===//
///
/// \file
/// Batch scheduler implementation: stage capture and timeline replay.
///
//===----------------------------------------------------------------------===//

#include "core/BatchScheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace padre;

namespace {

/// Durations below the ledger's nanosecond resolution are "this stage
/// charged nothing here" — skip the timeline call entirely so a stage
/// that never touched a lane leaves its clock alone.
constexpr double EpsilonUs = 1e-3;

} // namespace

BatchScheduler::BatchScheduler(ResourceLedger &Ledger, unsigned CpuThreads,
                               std::size_t Depth, GpuDevice *Device,
                               SsdModel &Ssd, obs::TraceRecorder *Trace)
    : Ledger(Ledger), CpuThreads(CpuThreads),
      Depth(std::max<std::size_t>(1, Depth)), Device(Device), Ssd(Ssd),
      Trace(Trace) {
  assert(CpuThreads > 0 && "CPU pool needs at least one thread");
}

double BatchScheduler::schedule(Resource Lane, double ReadyUs, double DurUs,
                                const char *SpanName, bool Backfill) {
  return scheduleLane(static_cast<unsigned>(Lane), ReadyUs, DurUs, SpanName,
                      Backfill);
}

double BatchScheduler::scheduleLane(unsigned LaneId, double ReadyUs,
                                    double DurUs, const char *SpanName,
                                    bool Backfill) {
  if (DurUs < EpsilonUs)
    return ReadyUs;
  const Resource Mirror = LaneId < ResourceCount
                              ? static_cast<Resource>(LaneId)
                              : Ledger.laneMirror(LaneId);
  const LaneInterval I =
      Ledger.scheduleLaneMicros(LaneId, ReadyUs, DurUs, Backfill);
  Intervals[static_cast<unsigned>(Mirror)].push_back(I);
  if (Trace)
    Trace->record(SpanName, obs::CategorySched, Mirror, I.StartUs,
                  I.EndUs - I.StartUs);
  return I.EndUs;
}

void BatchScheduler::beginBatch() {
  assert(Admitted == Retired && "Previous batch still open");
  ++Admitted;
  // Admission: with Depth batches already in flight, batch N may not
  // start before batch N-Depth has fully destaged. Depth 1 therefore
  // reproduces the serial pipeline exactly.
  if (Window.size() >= Depth) {
    BatchReadyUs = Window.front();
    Window.pop_front();
  } else {
    BatchReadyUs = 0.0;
  }
  DedupDoneUs = CompressDoneUs = DestageDoneUs = BatchReadyUs;
}

void BatchScheduler::beginStage(Stage) {
  for (unsigned R = 0; R < ResourceCount; ++R)
    BusyBeginUs[R] = Ledger.busyMicros(static_cast<Resource>(R));
  GpuOps.clear();
  SsdOps.clear();
  if (Device)
    Device->setOpLog(&GpuOps);
  Ssd.setOpLog(&SsdOps);
}

double BatchScheduler::replayGpuOps(double ReadyUs, bool UseStaging,
                                    double &PcieUsedUs, double &GpuUsedUs) {
  GpuStagingModel *Staging =
      (UseStaging && Device) ? &Device->staging() : nullptr;
  return replayOps(GpuOps, ReadyUs, Staging,
                   static_cast<unsigned>(Resource::Gpu),
                   static_cast<unsigned>(Resource::Pcie), PcieUsedUs,
                   GpuUsedUs);
}

double BatchScheduler::replayOps(std::span<const GpuOp> Ops, double ReadyUs,
                                 GpuStagingModel *Staging, unsigned GpuLane,
                                 unsigned PcieLane, double &PcieUsedUs,
                                 double &GpuUsedUs) {
  double LastH2dEndUs = ReadyUs;
  double LastKernelEndUs = ReadyUs;
  double LastEndUs = ReadyUs;
  for (const GpuOp &Op : Ops) {
    double EndUs = ReadyUs;
    switch (Op.Op) {
    case GpuOp::Kind::H2d: {
      double StartReadyUs = ReadyUs;
      if (Staging) {
        // Uploads for sub-batch N+2 wait for the kernel of sub-batch N
        // to free its staging slot; the PCIe lane clock already keeps
        // uploads themselves FIFO.
        if (Staging->inFlight() >= GpuStagingModel::SlotCount)
          Staging->releaseOldest(LastKernelEndUs);
        StartReadyUs = std::fmax(ReadyUs, Staging->acquireSlot(ReadyUs));
      }
      EndUs = scheduleLane(PcieLane, StartReadyUs, Op.Micros, "pipe:h2d");
      LastH2dEndUs = EndUs;
      PcieUsedUs += Op.Micros;
      break;
    }
    case GpuOp::Kind::Kernel: {
      EndUs = scheduleLane(GpuLane, LastH2dEndUs, Op.Micros,
                           "pipe:kernel");
      LastKernelEndUs = EndUs;
      if (Staging)
        Staging->releaseOldest(EndUs);
      GpuUsedUs += Op.Micros;
      break;
    }
    case GpuOp::Kind::D2h: {
      EndUs = scheduleLane(PcieLane, LastKernelEndUs, Op.Micros,
                           "pipe:d2h");
      PcieUsedUs += Op.Micros;
      break;
    }
    }
    LastEndUs = std::fmax(LastEndUs, EndUs);
  }
  return LastEndUs;
}

void BatchScheduler::endStageCompressSliced(std::span<CompressSlice> Slices) {
  if (Device)
    Device->setOpLog(nullptr);
  Ssd.setOpLog(nullptr);

  double DeltaUs[ResourceCount];
  for (unsigned R = 0; R < ResourceCount; ++R)
    DeltaUs[R] = std::fmax(
        0.0, Ledger.busyMicros(static_cast<Resource>(R)) - BusyBeginUs[R]);

  const double ReadyUs = DedupDoneUs;
  double DoneUs = ReadyUs;
  double GpuOpsUs = 0.0, PcieOpsUs = 0.0, CpuSlicesUs = 0.0;
  for (CompressSlice &Slice : Slices) {
    const double GpuDoneUs =
        replayOps(Slice.Ops, ReadyUs, Slice.Staging, Slice.GpuLane,
                  Slice.PcieLane, PcieOpsUs, GpuOpsUs);
    // A device slice's CPU time is the refine pass over the kernels'
    // results (after the chain); a CPU slice's is the compression
    // itself (ready at dedup-done like every other domain).
    const double CpuReadyUs = Slice.Ops.empty() ? ReadyUs : GpuDoneUs;
    const double CpuDoneUs =
        schedule(Resource::CpuPool, CpuReadyUs, Slice.CpuUs / CpuThreads,
                 "pipe:compress", /*Backfill=*/true);
    CpuSlicesUs += Slice.CpuUs;
    Slice.DoneUs = std::fmax(ReadyUs, std::fmax(GpuDoneUs, CpuDoneUs));
    Slice.ElapsedUs = Slice.DoneUs - ReadyUs;
    DoneUs = std::fmax(DoneUs, Slice.DoneUs);
  }
  CompressDoneUs = DoneUs;

  // Lossless residuals: anything the slices did not attribute (there
  // should be nothing) still lands on the timeline.
  const double CpuResidualUs =
      DeltaUs[static_cast<unsigned>(Resource::CpuPool)] - CpuSlicesUs;
  if (CpuResidualUs > EpsilonUs)
    schedule(Resource::CpuPool, ReadyUs, CpuResidualUs / CpuThreads,
             "pipe:compress", /*Backfill=*/true);
  const double GpuResidualUs =
      DeltaUs[static_cast<unsigned>(Resource::Gpu)] - GpuOpsUs;
  if (GpuResidualUs > EpsilonUs)
    schedule(Resource::Gpu, BatchReadyUs, GpuResidualUs, "pipe:gpu-misc");
  const double PcieResidualUs =
      DeltaUs[static_cast<unsigned>(Resource::Pcie)] - PcieOpsUs;
  if (PcieResidualUs > EpsilonUs)
    schedule(Resource::Pcie, BatchReadyUs, PcieResidualUs, "pipe:dma-misc");
  double SsdOpsUs = 0.0;
  for (const double Op : SsdOps) {
    schedule(Resource::Ssd, ReadyUs, Op, "pipe:log-write");
    SsdOpsUs += Op;
  }
  const double SsdResidualUs =
      DeltaUs[static_cast<unsigned>(Resource::Ssd)] - SsdOpsUs;
  if (SsdResidualUs > EpsilonUs)
    schedule(Resource::Ssd, BatchReadyUs, SsdResidualUs, "pipe:io-misc");
  const double LockResidualUs =
      DeltaUs[static_cast<unsigned>(Resource::IndexLock)];
  if (LockResidualUs > EpsilonUs)
    schedule(Resource::IndexLock, ReadyUs, LockResidualUs,
             "pipe:index-lock");
}

void BatchScheduler::endStage(Stage S) {
  if (Device)
    Device->setOpLog(nullptr);
  Ssd.setOpLog(nullptr);

  double DeltaUs[ResourceCount];
  for (unsigned R = 0; R < ResourceCount; ++R)
    DeltaUs[R] = std::fmax(
        0.0, Ledger.busyMicros(static_cast<Resource>(R)) - BusyBeginUs[R]);

  // The op logs decompose the GPU/PCIe/SSD deltas; whatever they do
  // not cover (there should be nothing, but the replay must never
  // lose charged time) is scheduled as one lump at the stage's ready
  // time so scheduled totals always equal busy totals.
  double GpuOpsUs = 0.0, PcieOpsUs = 0.0, SsdOpsUs = 0.0;
  for (const double Op : SsdOps)
    SsdOpsUs += Op;

  switch (S) {
  case Stage::Dedup: {
    const double ReadyUs = BatchReadyUs;
    double DoneUs = ReadyUs;
    // The whole CPU front half — request/chunking overhead, hashing,
    // index probes, verify-on-dedup — runs pool-wide.
    DoneUs = std::fmax(DoneUs, schedule(Resource::CpuPool, ReadyUs,
                                        DeltaUs[static_cast<unsigned>(
                                            Resource::CpuPool)] /
                                            CpuThreads,
                                        "pipe:dedup", /*Backfill=*/true));
    DoneUs = std::fmax(DoneUs, schedule(Resource::IndexLock, ReadyUs,
                                        DeltaUs[static_cast<unsigned>(
                                            Resource::IndexLock)],
                                        "pipe:index-lock"));
    // Dedup GPU offload (gpu-dedup/gpu-both): sub-batch chains of
    // H2D -> indexing kernel -> D2H, no compression staging involved.
    DoneUs = std::fmax(
        DoneUs, replayGpuOps(ReadyUs, /*UseStaging=*/false, PcieOpsUs,
                             GpuOpsUs));
    // Mid-batch bin drains append to the sequential log: queued on the
    // SSD lane in issue order (before any later destage — lane FIFO
    // preserves the drain-before-destage order), but they do not gate
    // the compress stage.
    for (const double Op : SsdOps)
      schedule(Resource::Ssd, ReadyUs, Op, "pipe:log-write");
    DedupDoneUs = DoneUs;
    break;
  }
  case Stage::Compress: {
    const double ReadyUs = DedupDoneUs;
    // GPU path: the async queue with double-buffered staging.
    const double GpuDoneUs =
        replayGpuOps(ReadyUs, /*UseStaging=*/true, PcieOpsUs, GpuOpsUs);
    // CPU work: either the whole compression (cpu modes) starting at
    // dedup-done, or the refine/post-process pass, which consumes the
    // kernels' device results and so follows the GPU chain.
    const double CpuReadyUs = GpuOps.empty() ? ReadyUs : GpuDoneUs;
    const double CpuDoneUs = schedule(
        Resource::CpuPool, CpuReadyUs,
        DeltaUs[static_cast<unsigned>(Resource::CpuPool)] / CpuThreads,
        "pipe:compress", /*Backfill=*/true);
    CompressDoneUs = std::fmax(ReadyUs, std::fmax(GpuDoneUs, CpuDoneUs));
    break;
  }
  case Stage::Destage: {
    const double ReadyUs = CompressDoneUs;
    double DoneUs = ReadyUs;
    for (const double Op : SsdOps)
      DoneUs = std::fmax(DoneUs,
                         schedule(Resource::Ssd, ReadyUs, Op, "pipe:destage"));
    // Residual CPU (store bookkeeping charges nothing today, but stay
    // lossless if that changes).
    DoneUs = std::fmax(DoneUs, schedule(Resource::CpuPool, ReadyUs,
                                        DeltaUs[static_cast<unsigned>(
                                            Resource::CpuPool)] /
                                            CpuThreads,
                                        "pipe:destage-cpu",
                                        /*Backfill=*/true));
    DestageDoneUs = DoneUs;
    break;
  }
  case Stage::Drain: {
    // End-of-run bin-buffer flush: ordered after everything already on
    // the lanes (ready=0 defers to the lane clocks, which is exactly
    // "after every queued command").
    schedule(Resource::CpuPool, 0.0,
             DeltaUs[static_cast<unsigned>(Resource::CpuPool)] / CpuThreads,
             "pipe:drain");
    replayGpuOps(0.0, /*UseStaging=*/false, PcieOpsUs, GpuOpsUs);
    for (const double Op : SsdOps)
      schedule(Resource::Ssd, 0.0, Op, "pipe:log-write");
    break;
  }
  }

  // Lossless-replay residuals (clamped at zero: obs spans and op logs
  // can cover slightly more than the delta only through fp rounding).
  const double GpuResidualUs =
      DeltaUs[static_cast<unsigned>(Resource::Gpu)] - GpuOpsUs;
  if (GpuResidualUs > EpsilonUs)
    schedule(Resource::Gpu, BatchReadyUs, GpuResidualUs, "pipe:gpu-misc");
  const double PcieResidualUs =
      DeltaUs[static_cast<unsigned>(Resource::Pcie)] - PcieOpsUs;
  if (PcieResidualUs > EpsilonUs)
    schedule(Resource::Pcie, BatchReadyUs, PcieResidualUs, "pipe:dma-misc");
  const double SsdResidualUs =
      DeltaUs[static_cast<unsigned>(Resource::Ssd)] - SsdOpsUs;
  if (SsdResidualUs > EpsilonUs)
    schedule(Resource::Ssd, BatchReadyUs, SsdResidualUs, "pipe:io-misc");
}

void BatchScheduler::endBatch() {
  assert(Admitted == Retired + 1 && "endBatch without beginBatch");
  ++Retired;
  Window.push_back(DestageDoneUs);
}

double BatchScheduler::noteCommit(double DurUs, const char *SpanName) {
  // The commit may not start before the batch it covers has fully
  // destaged; the SSD lane's FIFO clock then orders it after every
  // queued destage command anyway.
  const double ReadyUs = Window.empty() ? DestageDoneUs : Window.back();
  return schedule(Resource::Ssd, ReadyUs, DurUs, SpanName);
}

ScheduleOverlap BatchScheduler::overlap() const {
  ScheduleOverlap Result;
  // Backfill places CPU intervals out of issue order; the sweeps below
  // need every lane sorted by start time.
  std::vector<LaneInterval> Sorted[ResourceCount];
  for (unsigned L = 0; L < ResourceCount; ++L) {
    Sorted[L] = Intervals[L];
    std::sort(Sorted[L].begin(), Sorted[L].end(),
              [](const LaneInterval &A, const LaneInterval &B) {
                return A.StartUs < B.StartUs;
              });
  }
  for (unsigned L = 0; L < ResourceCount; ++L) {
    double Busy = 0.0;
    for (const LaneInterval &I : Sorted[L])
      Busy += I.EndUs - I.StartUs;
    Result.BusySec[L] = Busy * 1e-6;

    // Merge every *other* lane's intervals, then measure how much of
    // this lane's occupancy they cover.
    std::vector<LaneInterval> Others;
    for (unsigned M = 0; M < ResourceCount; ++M) {
      if (M == L)
        continue;
      Others.insert(Others.end(), Sorted[M].begin(), Sorted[M].end());
    }
    std::sort(Others.begin(), Others.end(),
              [](const LaneInterval &A, const LaneInterval &B) {
                return A.StartUs < B.StartUs;
              });
    std::vector<LaneInterval> Merged;
    for (const LaneInterval &I : Others) {
      if (!Merged.empty() && I.StartUs <= Merged.back().EndUs)
        Merged.back().EndUs = std::fmax(Merged.back().EndUs, I.EndUs);
      else
        Merged.push_back(I);
    }
    double Hidden = 0.0;
    std::size_t Cursor = 0;
    for (const LaneInterval &I : Sorted[L]) {
      while (Cursor < Merged.size() && Merged[Cursor].EndUs <= I.StartUs)
        ++Cursor;
      for (std::size_t J = Cursor;
           J < Merged.size() && Merged[J].StartUs < I.EndUs; ++J)
        Hidden += std::fmax(0.0, std::fmin(I.EndUs, Merged[J].EndUs) -
                                     std::fmax(I.StartUs, Merged[J].StartUs));
    }
    Result.HiddenSec[L] = Hidden * 1e-6;
  }
  return Result;
}

void BatchScheduler::reset() {
  Window.clear();
  Admitted = Retired = 0;
  BatchReadyUs = DedupDoneUs = CompressDoneUs = DestageDoneUs = 0.0;
  GpuOps.clear();
  SsdOps.clear();
  for (auto &Lane : Intervals)
    Lane.clear();
  if (Device)
    Device->staging().reset();
}
