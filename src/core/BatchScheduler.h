//===----------------------------------------------------------------------===//
///
/// \file
/// The inter-batch software-pipelining scheduler — the modelled-time
/// realisation of the paper's Fig. 1 overlap. The functional pipeline
/// still executes batches strictly in order on the host (results are
/// bit-exact at every depth, recipe order and bin-drain order
/// included); what this scheduler changes is *when* the charged time
/// lands on the dependency-aware timeline of sim/ResourceLedger:
///
///   batch N    : SSD destage            (SSD command queue)
///   batch N+1  : GPU compression        (H2D -> kernel -> D2H, with
///                                        double-buffered staging)
///   batch N+2  : CPU chunk/hash/dedup   (CPU pool lane)
///
/// all advance concurrently once `PipelineConfig::PipelineDepth`
/// batches are in flight. Depth 1 degenerates to today's serial
/// behaviour: batch N+1 is only admitted when batch N's destage has
/// completed, so the timeline is the full dependency chain.
///
/// Mechanics: the pipeline brackets each functional stage with
/// beginStage/endStage. The bracket snapshots the ledger's busy
/// clocks and arms the GPU/SSD submission logs; at endStage the busy
/// deltas plus the op logs are *replayed* onto the per-lane timeline
/// from the stage's input-ready time — CPU work as one pool-wide task
/// (duration / thread count), GPU traffic as the async queue it was
/// submitted as (H2D chained into the kernel it feeds, D2H after the
/// kernel, uploads gated by the two staging slots), SSD commands as
/// queue occupancies. Because the replay schedules exactly what was
/// charged, per-lane scheduled totals equal per-lane busy totals at
/// every depth, and deepening the window can only relax ready
/// constraints — wall time is monotone non-increasing in depth.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_BATCHSCHEDULER_H
#define PADRE_CORE_BATCHSCHEDULER_H

#include "gpu/GpuDevice.h"
#include "obs/Obs.h"
#include "sim/ResourceLedger.h"
#include "ssd/SsdModel.h"

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace padre {

/// Per-lane occupancy/overlap totals of the scheduled timeline, for
/// the report's overlap summary (all in modelled seconds; CPU already
/// normalized by the pool width).
struct ScheduleOverlap {
  double BusySec[ResourceCount] = {};
  /// Portion of the lane's busy time during which at least one other
  /// lane was also busy — time the lane was "hidden" behind the rest
  /// of the pipeline.
  double HiddenSec[ResourceCount] = {};
};

/// Threads per-batch stage records through dedup/compress/destage.
/// One instance per pipeline; not thread-safe (driven by the pipeline
/// thread, which is the only thread that issues device traffic).
class BatchScheduler {
public:
  /// The write path's stages, in dependency order. Dedup covers the
  /// whole CPU front half (request/chunking costs, hashing, index
  /// probes, verify-on-dedup) plus any dedup GPU offload and mid-batch
  /// bin-drain log writes; Drain is the finish()-time bin-buffer
  /// flush.
  enum class Stage { Dedup, Compress, Destage, Drain };

  /// \p Depth is clamped to >= 1. \p Device may be null (CPU-only
  /// platform/mode). All referees must outlive the scheduler.
  BatchScheduler(ResourceLedger &Ledger, unsigned CpuThreads,
                 std::size_t Depth, GpuDevice *Device, SsdModel &Ssd,
                 obs::TraceRecorder *Trace);

  /// Admits the next batch into the window: its first stage may not
  /// start before the batch Depth positions back has fully destaged.
  void beginBatch();

  /// Brackets one functional stage of the current batch. endStage
  /// replays everything the stage charged onto the timeline.
  void beginStage(Stage S);
  void endStage(Stage S);

  /// One backend's share of a split compress stage: the op chain it
  /// submitted to *its* device (empty for a CPU slice), the CPU pool
  /// time it charged, and the timeline lanes to replay the chain on —
  /// Resource::Gpu/Pcie for device 0, aux lane ids
  /// (ResourceLedger::addTimelineLane) for extra devices. The replay
  /// fills DoneUs/ElapsedUs so the splitter's tuner can observe the
  /// slice's modelled rate.
  struct CompressSlice {
    unsigned GpuLane = static_cast<unsigned>(Resource::Gpu);
    unsigned PcieLane = static_cast<unsigned>(Resource::Pcie);
    GpuStagingModel *Staging = nullptr; ///< per-device slots; null = CPU
    std::vector<GpuOp> Ops;
    double CpuUs = 0.0; ///< pool busy charged while this slice ran
    // Filled by endStageCompressSliced:
    double DoneUs = 0.0;    ///< slice completion time on the timeline
    double ElapsedUs = 0.0; ///< DoneUs minus the stage's ready time
  };

  /// endStage(Compress) for a stage the splitter partitioned across
  /// backends: every slice becomes ready at dedup-done simultaneously
  /// (HPDR's domain decomposition — the domains are independent) and
  /// replays onto its own device lanes; the stage completes when the
  /// last slice does. Single-slice calls reproduce endStage(Compress)
  /// exactly: a pure-CPU slice is one backfilled pool task, a
  /// device-0 slice is the same staged H2D->kernel->D2H chain with
  /// the refine pass after it. Residual charges the slices do not
  /// attribute are still replayed losslessly, so per-resource
  /// scheduled totals equal busy totals at every split point.
  void endStageCompressSliced(std::span<CompressSlice> Slices);

  /// Retires the current batch from the window once its destage
  /// completion time is known.
  void endBatch();

  /// Places a journal group-commit write of \p DurUs on the SSD lane,
  /// ready no earlier than the most recently retired batch's destage
  /// completion — the timeline realisation of the write-ahead
  /// ordering: data destage, then journal commit, then ack
  /// (src/journal). Returns the commit's completion time (µs).
  double noteCommit(double DurUs, const char *SpanName);

  /// Timeline wall time so far (µs) — every admitted batch fully
  /// destaged and drained.
  double wallMicros() const { return Ledger.timelineWallMicros(); }

  std::size_t depth() const { return Depth; }

  /// Batches admitted but not yet retired (0 after every write()
  /// returns — the window has drained).
  std::size_t inFlight() const { return Admitted - Retired; }

  /// Batches retired since construction or reset().
  std::size_t batchesScheduled() const { return Retired; }

  /// Per-lane scheduled busy/overlap totals (see ScheduleOverlap).
  ScheduleOverlap overlap() const;

  /// Forgets the timeline (window, intervals, staging slots) in
  /// lockstep with ResourceLedger::reset — the pipeline's
  /// resetMeasurement calls this.
  void reset();

private:
  /// Replays the GPU op log captured by the current stage: H2D on the
  /// PCIe lane (gated by a staging slot when \p UseStaging), the
  /// kernel it feeds on the GPU lane, D2H back on PCIe. Returns the
  /// completion time of the last replayed op (\p ReadyUs when the log
  /// is empty) and accumulates the per-lane time it scheduled.
  double replayGpuOps(double ReadyUs, bool UseStaging, double &PcieUsedUs,
                      double &GpuUsedUs);

  /// The lane-general core of replayGpuOps: replays \p Ops onto
  /// \p GpuLane / \p PcieLane (resource or aux device lanes), uploads
  /// gated by \p Staging when non-null.
  double replayOps(std::span<const GpuOp> Ops, double ReadyUs,
                   GpuStagingModel *Staging, unsigned GpuLane,
                   unsigned PcieLane, double &PcieUsedUs,
                   double &GpuUsedUs);

  /// Schedules \p DurUs on \p Lane at \p ReadyUs, records the interval
  /// for the overlap summary (and a sched-category span when tracing).
  /// Returns the completion time. \p Backfill is set for CPU-pool
  /// tasks only: the pool may run a ready batch inside an idle gap
  /// while an earlier-issued stage still waits on the GPU; device
  /// queues keep strict FIFO order.
  double schedule(Resource Lane, double ReadyUs, double DurUs,
                  const char *SpanName, bool Backfill = false);

  /// schedule() by lane id; aux device lanes record their intervals
  /// (and spans) under the resource they mirror, so the overlap
  /// summary and scheduled-equals-busy invariant stay per-resource.
  double scheduleLane(unsigned LaneId, double ReadyUs, double DurUs,
                      const char *SpanName, bool Backfill = false);

  ResourceLedger &Ledger;
  const unsigned CpuThreads;
  const std::size_t Depth;
  GpuDevice *Device;
  SsdModel &Ssd;
  obs::TraceRecorder *Trace;

  // Stage capture (valid between beginStage and endStage).
  double BusyBeginUs[ResourceCount] = {};
  std::vector<GpuOp> GpuOps;
  std::vector<double> SsdOps;

  // Current batch's stage-completion timestamps.
  double BatchReadyUs = 0.0;
  double DedupDoneUs = 0.0;
  double CompressDoneUs = 0.0;
  double DestageDoneUs = 0.0;

  /// Destage completion times of the last <= Depth retired batches;
  /// the front is the admission gate for the next batch once the
  /// window is full.
  std::deque<double> Window;
  std::size_t Admitted = 0;
  std::size_t Retired = 0;

  /// Scheduled intervals per lane (monotone by construction — the lane
  /// clock only moves forward), feeding the overlap summary.
  std::vector<LaneInterval> Intervals[ResourceCount];
};

} // namespace padre

#endif // PADRE_CORE_BATCHSCHEDULER_H
