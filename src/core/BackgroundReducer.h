//===----------------------------------------------------------------------===//
///
/// \file
/// The background (offline) data-reduction pass — the §1 alternative
/// the paper argues against: "store all of the data on the storage
/// system and then perform data reduction in the background when the
/// system is idle. However, this generates more write I/O than systems
/// without the data reduction operations … not applicable to SSD-based
/// storage systems due to write endurance problems."
///
/// This implements that strawman for real so the endurance comparison
/// (A4) measures actual flows instead of arithmetic: a volume is
/// populated with `writeBlocksRaw` (no inline reduction), then
/// `backgroundReduce` sweeps it during "idle time" — reading every
/// mapped block back, pushing it through the full reduction pipeline,
/// remapping, and collecting the raw originals.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_BACKGROUNDREDUCER_H
#define PADRE_CORE_BACKGROUNDREDUCER_H

#include "core/Volume.h"

namespace padre {

/// Outcome of one background sweep.
struct BackgroundReduceStats {
  std::uint64_t BlocksProcessed = 0;
  std::uint64_t BytesBefore = 0; ///< stored bytes before the sweep
  std::uint64_t BytesAfter = 0;  ///< stored bytes after GC
  std::uint64_t ChunksCollected = 0;
  /// Read failures during the sweep (corrupt blocks are skipped and
  /// left mapped to their raw originals).
  std::uint64_t ReadFailures = 0;
};

/// Sweeps \p Vol: rewrites every mapped block through the reduction
/// path in runs of \p RunBlocks, then garbage-collects the raw
/// originals. Charges all the extra SSD reads and writes — the §1
/// endurance cost this scheme pays. When \p InfoOut is non-null, the
/// pipeline's per-block outcomes of every rewrite are appended (the
/// multi-tenant service uses them to expire a deferred tenant's
/// transient index entries after its post-process pass, SERVICE.md).
BackgroundReduceStats backgroundReduce(Volume &Vol,
                                       std::uint64_t RunBlocks = 64,
                                       std::vector<ChunkWriteInfo>
                                           *InfoOut = nullptr);

} // namespace padre

#endif // PADRE_CORE_BACKGROUNDREDUCER_H
