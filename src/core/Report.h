//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline modes and the measurement report types shared by the
/// engines, benchmarks and examples.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_REPORT_H
#define PADRE_CORE_REPORT_H

#include "sim/ResourceLedger.h"

#include <cstdint>
#include <string>

namespace padre {

/// The four integration options of §4(3) / Fig. 2.
enum class PipelineMode : unsigned {
  CpuOnly = 0,     ///< both operations on the CPU
  GpuDedup = 1,    ///< GPU co-processes indexing; compression on CPU
  GpuCompress = 2, ///< compression on GPU (CPU refines); dedup on CPU
  GpuBoth = 3,     ///< both operations use the GPU (mixed kernels)
};

inline constexpr unsigned PipelineModeCount = 4;

/// Returns "cpu-only", "gpu-dedup", "gpu-compress" or "gpu-both".
const char *pipelineModeName(PipelineMode Mode);

/// True if \p Mode offloads dedup indexing to the GPU.
inline bool modeOffloadsDedup(PipelineMode Mode) {
  return Mode == PipelineMode::GpuDedup || Mode == PipelineMode::GpuBoth;
}

/// True if \p Mode runs compression kernels on the GPU.
inline bool modeOffloadsCompression(PipelineMode Mode) {
  return Mode == PipelineMode::GpuCompress || Mode == PipelineMode::GpuBoth;
}

/// Everything a pipeline run measures. Throughput figures use the
/// modelled makespan over the *compute* resources (CPU/GPU/PCIe) — the
/// paper reports data-reduction throughput and quotes the SSD
/// separately as a baseline.
struct PipelineReport {
  // Workload.
  std::uint64_t LogicalBytes = 0;
  std::uint64_t LogicalChunks = 0;

  // Dedup outcome.
  std::uint64_t UniqueChunks = 0;
  std::uint64_t DupChunks = 0;
  std::uint64_t DupFromBuffer = 0;
  std::uint64_t DupFromTree = 0;
  std::uint64_t DupFromGpu = 0;
  /// Verify-on-dedup only: digest matches whose bytes differed
  /// (collision or latent corruption) — stored fresh instead.
  std::uint64_t VerifyMismatches = 0;
  double DedupRatio = 1.0; ///< logical bytes / unique bytes

  // Compression outcome (unique chunks only).
  std::uint64_t StoredBytes = 0; ///< encoded bytes destaged
  std::uint64_t RawFallbacks = 0;
  double CompressRatio = 1.0;  ///< unique bytes / stored bytes
  double ReductionRatio = 1.0; ///< logical bytes / stored bytes

  // Modelled performance.
  double MakespanSec = 0.0; ///< compute-resource bottleneck time
  double ThroughputIops = 0.0;
  double ThroughputMBps = 0.0;
  Resource Bottleneck = Resource::CpuPool;
  double CpuBusySec = 0.0;
  double GpuBusySec = 0.0;
  double PcieBusySec = 0.0;
  double SsdBusySec = 0.0;
  std::uint64_t KernelLaunches = 0;
  double OffloadFraction = 0.0; ///< final dedup offload fraction

  // Modelled per-chunk service latency in microseconds. Throughput and
  // latency are distinct under batching: deeper GPU batches raise
  // throughput *and* latency.
  double LatencyP50Us = 0.0;
  double LatencyP95Us = 0.0;
  double LatencyP99Us = 0.0;

  // SSD endurance.
  std::uint64_t SsdHostBytes = 0;
  std::uint64_t SsdNandBytes = 0;

  /// Multi-line human-readable rendering.
  std::string toString() const;
};

} // namespace padre

#endif // PADRE_CORE_REPORT_H
