//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline modes and the measurement report types shared by the
/// engines, benchmarks and examples.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_REPORT_H
#define PADRE_CORE_REPORT_H

#include "sim/ResourceLedger.h"

#include <cstdint>
#include <string>

namespace padre {

/// The four integration options of §4(3) / Fig. 2.
enum class PipelineMode : unsigned {
  CpuOnly = 0,     ///< both operations on the CPU
  GpuDedup = 1,    ///< GPU co-processes indexing; compression on CPU
  GpuCompress = 2, ///< compression on GPU (CPU refines); dedup on CPU
  GpuBoth = 3,     ///< both operations use the GPU (mixed kernels)
};

inline constexpr unsigned PipelineModeCount = 4;

/// Returns "cpu-only", "gpu-dedup", "gpu-compress" or "gpu-both".
const char *pipelineModeName(PipelineMode Mode);

/// True if \p Mode offloads dedup indexing to the GPU.
inline bool modeOffloadsDedup(PipelineMode Mode) {
  return Mode == PipelineMode::GpuDedup || Mode == PipelineMode::GpuBoth;
}

/// True if \p Mode runs compression kernels on the GPU.
inline bool modeOffloadsCompression(PipelineMode Mode) {
  return Mode == PipelineMode::GpuCompress || Mode == PipelineMode::GpuBoth;
}

/// Everything a pipeline run measures. Throughput figures use the
/// modelled makespan over the *compute* resources (CPU/GPU/PCIe) — the
/// paper reports data-reduction throughput and quotes the SSD
/// separately as a baseline.
struct PipelineReport {
  // Workload.
  /// Bytes the host wrote through the pipeline (bytes). Denominator of
  /// every reduction ratio and of ThroughputMBps.
  std::uint64_t LogicalBytes = 0;
  /// Chunks those bytes split into (count). Denominator of
  /// ThroughputIops; the "IOPS" of E1/E4 (Tables 2–3, Fig. 2).
  std::uint64_t LogicalChunks = 0;

  // Dedup outcome.
  /// Chunks stored for the first time (count).
  std::uint64_t UniqueChunks = 0;
  /// Chunks eliminated as duplicates (count); the workload's dedup
  /// ratio 2.0 in E4 (§4) makes this ≈ half of LogicalChunks.
  std::uint64_t DupChunks = 0;
  /// Duplicates resolved in the in-memory bin buffer (count) — the
  /// paper's partial-indexing fast path (§2).
  std::uint64_t DupFromBuffer = 0;
  /// Duplicates resolved in the on-"disk" index tree (count).
  std::uint64_t DupFromTree = 0;
  /// Duplicates resolved by GPU-offloaded index lookups (count);
  /// nonzero only in gpu-dedup/gpu-both modes (E2, Fig. 2).
  std::uint64_t DupFromGpu = 0;
  /// Verify-on-dedup only: digest matches whose bytes differed
  /// (collision or latent corruption) — stored fresh instead (count).
  std::uint64_t VerifyMismatches = 0;
  /// Logical bytes / unique bytes (ratio ≥ 1); workload knob of E4/E5.
  double DedupRatio = 1.0;

  // Compression outcome (unique chunks only).
  /// Encoded bytes destaged to the SSD (bytes). Numerator of the
  /// physical-capacity story in E5.
  std::uint64_t StoredBytes = 0;
  /// Chunks whose encoding did not shrink them and were stored raw
  /// (count) — the incompressible-data guard.
  std::uint64_t RawFallbacks = 0;
  /// Unique bytes / stored bytes (ratio ≥ 1); workload knob of E3/E4.
  double CompressRatio = 1.0;
  /// Logical bytes / stored bytes (ratio ≥ 1) — end-to-end reduction.
  double ReductionRatio = 1.0;

  // Modelled performance (modelled seconds, NOT wall time — see
  // OBSERVABILITY.md "modelled time vs wall time").
  /// Busiest compute resource's normalized busy time (modelled s);
  /// the run length every throughput figure divides by.
  double MakespanSec = 0.0;
  /// LogicalChunks / MakespanSec (chunks per modelled s). The y-axis
  /// of Fig. 2 and of Tables 2–4 (E1–E4).
  double ThroughputIops = 0.0;
  /// LogicalBytes / MakespanSec (MB per modelled s), same artefacts.
  double ThroughputMBps = 0.0;
  /// Resource whose normalized busy time equals MakespanSec — the
  /// paper's bottleneck analysis in §4(3).
  Resource Bottleneck = Resource::CpuPool;
  /// CPU-pool busy time (modelled s), summed over worker threads.
  /// Equals the trace's per-lane "stage" span total on the cpu lane.
  double CpuBusySec = 0.0;
  /// GPU busy time (modelled s); Fig. 2's "gpu busy" column in E4.
  double GpuBusySec = 0.0;
  /// PCIe transfer busy time (modelled s), both directions.
  double PcieBusySec = 0.0;
  /// SSD command busy time (modelled s): destage writes + read-back.
  double SsdBusySec = 0.0;
  /// GPU kernel launches (count) across all kernel families (E2–E4).
  std::uint64_t KernelLaunches = 0;
  /// Final fraction of dedup lookups offloaded to the GPU [0, 1];
  /// the adaptive split of §3 (E2).
  double OffloadFraction = 0.0;

  // Modelled per-chunk service latency in microseconds. Throughput and
  // latency are distinct under batching: deeper GPU batches raise
  // throughput *and* latency (E1, Table 2).
  double LatencyP50Us = 0.0; ///< median chunk latency (modelled µs)
  double LatencyP95Us = 0.0; ///< 95th percentile (modelled µs)
  double LatencyP99Us = 0.0; ///< 99th percentile (modelled µs)

  // SSD endurance (E5).
  /// Bytes the host asked the SSD to write (bytes).
  std::uint64_t SsdHostBytes = 0;
  /// Bytes actually programmed to NAND after write amplification
  /// (bytes); SsdNandBytes / SsdHostBytes is E5's endurance gain.
  std::uint64_t SsdNandBytes = 0;

  // Pipelined write-path schedule (core/BatchScheduler.h, E6). The
  // busy times above are depth-invariant — pipelining changes *when*
  // modelled time lands, never what is charged — so only this block
  // varies with PipelineConfig::PipelineDepth.
  /// The configured in-flight window.
  unsigned PipelineDepth = 1;
  /// Wall time of the dependency-constrained write-path schedule
  /// (modelled s): the full serial stage chain at depth 1, approaching
  /// the bottleneck lane's busy time as the window deepens.
  double WallSec = 0.0;
  /// LogicalBytes / WallSec (MB per modelled s) — the throughput a
  /// host watching the write stream would observe.
  double WallThroughputMBps = 0.0;
  /// LogicalChunks / WallSec (chunks per modelled s).
  double WallThroughputIops = 0.0;
  /// Scheduled occupancy per lane (modelled s; CPU normalized by pool
  /// width). Sums to the lane's busy time — asserted by `ctest -L
  /// sched` — so none of the charged time is lost in the replay.
  double SchedBusySec[ResourceCount] = {};
  /// Portion of each lane's occupancy during which another lane was
  /// also busy — time hidden behind the rest of the pipeline. The
  /// padrectl report footer prints this as "% hidden".
  double SchedHiddenSec[ResourceCount] = {};

  /// Multi-line human-readable rendering.
  std::string toString() const;
};

} // namespace padre

#endif // PADRE_CORE_REPORT_H
