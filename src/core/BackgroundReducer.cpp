//===----------------------------------------------------------------------===//
///
/// \file
/// Background reducer implementation.
///
//===----------------------------------------------------------------------===//

#include "core/BackgroundReducer.h"

#include <cassert>

using namespace padre;

BackgroundReduceStats
padre::backgroundReduce(Volume &Vol, std::uint64_t RunBlocks,
                        std::vector<ChunkWriteInfo> *InfoOut) {
  assert(RunBlocks > 0 && "Run length must be nonzero");
  BackgroundReduceStats Stats;
  ReductionPipeline &Pipe = Vol.pipelineForMaintenance();
  // One umbrella span for the whole pass. Category "sweep", not
  // "stage": the rewrites run through the pipeline and emit their own
  // stage spans inside this one — a stage-category umbrella would
  // double-count the lanes in the reconciliation check.
  const obs::StageSpan Sweep(Pipe.config().Trace, Pipe.ledger(),
                             "background-sweep", obs::CategorySweep);
  // Use the pipeline's own stored-bytes accounting via volume stats.
  Stats.BytesBefore = Vol.stats().PhysicalBytes;
  // The sweep's rewrites are storage-internal I/O, not host writes.
  Pipe.setInternalWrites(true);

  const std::uint64_t BlockCount = Vol.blockCount();
  std::uint64_t Lba = 0;
  while (Lba < BlockCount) {
    // Find the next mapped run of at most RunBlocks.
    while (Lba < BlockCount && Vol.mapping()[Lba] == Volume::Unmapped)
      ++Lba;
    if (Lba >= BlockCount)
      break;
    std::uint64_t RunEnd = Lba;
    while (RunEnd < BlockCount && RunEnd - Lba < RunBlocks &&
           Vol.mapping()[RunEnd] != Volume::Unmapped)
      ++RunEnd;

    // Read the raw blocks back and rewrite them through the inline
    // reduction path; the overwrite dereferences the raw originals.
    const auto Data = Vol.readBlocks(Lba, RunEnd - Lba);
    if (!Data) {
      Stats.ReadFailures += RunEnd - Lba;
      Lba = RunEnd;
      continue;
    }
    [[maybe_unused]] const bool Ok =
        Vol.writeBlocks(Lba, ByteSpan(Data->data(), Data->size()),
                        InfoOut);
    assert(Ok && "In-range rewrite must succeed");
    Stats.BlocksProcessed += RunEnd - Lba;
    Lba = RunEnd;
  }

  Pipe.setInternalWrites(false);
  Stats.ChunksCollected = Vol.collectGarbage();
  Vol.flush();
  Stats.BytesAfter = Vol.stats().PhysicalBytes;
  if (obs::MetricsRegistry *Metrics = Pipe.config().Metrics)
    Metrics
        ->counter("padre_background_blocks_total",
                  "Blocks rewritten by background reduction sweeps")
        .add(Stats.BlocksProcessed);
  return Stats;
}
