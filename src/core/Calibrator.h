//===----------------------------------------------------------------------===//
///
/// \file
/// The dummy-I/O integration calibrator (§4(3)): "because hardware
/// specifications may be different on different platforms, we cannot
/// guarantee that this integration is always right. Therefore, before
/// assigning processors to each data reduction operation, the
/// performance of these integration methods is compared using dummy
/// I/O to determine the best fit for throughput."
///
/// Each feasible integration mode is probed with a short synthetic
/// stream on a fresh pipeline; the mode with the highest modelled
/// compute throughput wins.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_CALIBRATOR_H
#define PADRE_CORE_CALIBRATOR_H

#include "core/ReductionPipeline.h"

#include <array>
#include <string>

namespace padre {

/// Outcome of a calibration probe.
struct CalibrationResult {
  PipelineMode BestMode = PipelineMode::CpuOnly;
  /// Modelled IOPS per mode; 0 for modes infeasible on the platform.
  std::array<double, PipelineModeCount> ThroughputIops{};

  /// One line per mode plus the verdict.
  std::string summary() const;
};

/// Calibration probe parameters.
struct CalibratorConfig {
  /// Dummy-stream size; small on purpose — this runs at mount time.
  std::uint64_t DummyBytes = 8ull << 20;
  double DedupRatio = 2.0;
  double CompressRatio = 2.0;
  std::uint64_t Seed = 7;
  /// Pipeline knobs shared by every probed mode.
  PipelineConfig Base;
};

/// Probes every feasible integration mode on \p Platform and picks the
/// fastest.
CalibrationResult calibrate(const Platform &Platform,
                            const CalibratorConfig &Config =
                                CalibratorConfig());

} // namespace padre

#endif // PADRE_CORE_CALIBRATOR_H
