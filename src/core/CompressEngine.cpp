//===----------------------------------------------------------------------===//
///
/// \file
/// Compression engine implementation.
///
//===----------------------------------------------------------------------===//

#include "core/CompressEngine.h"

#include "compress/Block.h"
#include "compress/ChunkCodec.h"

#include <cassert>

using namespace padre;

CompressEngine::CompressEngine(const CostModel &Model,
                               ResourceLedger &Ledger, ThreadPool &Pool,
                               GpuDevice *Device,
                               const CompressEngineConfig &Config,
                               const obs::ObsSinks &Obs)
    : Model(Model), Ledger(Ledger), Pool(Pool), Device(Device),
      Config(Config), CpuCodec(Config.CpuMatcher, Config.CpuOptions),
      LaneCompressor(Config.Lanes) {
  assert(isValidCostModel(Model) && "Invalid cost model");
  if (Config.Backend == CompressBackend::GpuLane)
    assert(Device && Device->present() &&
           "GPU compression requested without a GPU");
  if (Obs.Metrics) {
    RawFallbackCounter = &Obs.Metrics->counter(
        "padre_compress_raw_fallback_total",
        "Chunks stored raw because compression did not pay");
    if (Config.Backend == CompressBackend::GpuLane)
      GpuFallbacks = &Obs.Metrics->counter(
          "padre_gpu_fallback_total{family=\"compression\"}",
          "GPU sub-batches re-compressed on the CPU after a device "
          "fault");
  }
}

void CompressEngine::compressBatch(std::span<const ChunkView> Chunks,
                                   std::vector<CompressedChunk> &Out) {
  Out.assign(Chunks.size(), CompressedChunk());
  if (Chunks.empty())
    return;
  if (Config.Backend == CompressBackend::Cpu)
    compressRangeCpu(Chunks, 0, Chunks.size(), Out);
  else
    compressRangeGpu(Chunks, 0, Chunks.size(), Out);
}

void CompressEngine::compressSlice(std::span<const ChunkView> Chunks,
                                   std::size_t Begin, std::size_t End,
                                   std::vector<CompressedChunk> &Out) {
  assert(Out.size() == Chunks.size() && "Out must be pre-sized");
  assert(Begin <= End && End <= Chunks.size() && "Bad slice bounds");
  if (Begin == End)
    return;
  if (Config.Backend == CompressBackend::Cpu)
    compressRangeCpu(Chunks, Begin, End, Out);
  else
    compressRangeGpu(Chunks, Begin, End, Out);
}

void CompressEngine::compressRangeCpu(std::span<const ChunkView> Chunks,
                                      std::size_t Begin, std::size_t End,
                                      std::vector<CompressedChunk> &Out) {
  // One codec call per chunk, chunk-parallel across the pool (§3.2(1)).
  Pool.parallelForSlices(
      Begin, End,
      [&](std::size_t SliceBegin, std::size_t SliceEnd, unsigned) {
        double Micros = 0.0;
        std::uint64_t Raw = 0;
        for (std::size_t I = SliceBegin; I < SliceEnd; ++I) {
          const ByteSpan Data = Chunks[I].Data;
          const bool Framed = Config.SubBlocks > 1 && !Data.empty();
          CompressResult Result;
          if (Framed) {
            FramedCompressResult FramedResult =
                CpuCodec.compressFramed(Data, Config.SubBlocks);
            Result.Payload = std::move(FramedResult.Payload);
            Result.Stats = FramedResult.Stats;
          } else {
            Result = CpuCodec.compress(Data);
          }
          const double CompressUs = Model.cpuCompressUs(
              Result.Stats.LiteralBytes, Result.Stats.MatchBytes);
          Micros += CompressUs;
          CompressedChunk &Chunk = Out[I];
          Chunk.LatencyUs = CompressUs;
          Chunk.Stats = Result.Stats;
          if (Result.Payload.size() >= Data.size()) {
            Chunk.StoredRaw = true;
            ++Raw;
            Chunk.Block = encodeBlock(
                BlockMethod::Raw, static_cast<std::uint32_t>(Data.size()),
                Data);
            continue;
          }
          if (Framed) {
            Chunk.Block = encodeBlock(
                BlockMethod::LzFramed,
                static_cast<std::uint32_t>(Data.size()),
                ByteSpan(Result.Payload.data(), Result.Payload.size()));
            continue;
          }
          // Optional entropy stage over the token stream.
          if (Config.EntropyStage) {
            const double HuffUs = Model.Cpu.HuffmanPerByteNs * 1e-3 *
                                  static_cast<double>(Result.Payload.size());
            Micros += HuffUs;
            Chunk.LatencyUs += HuffUs;
            if (auto Entropy = entropyEncodeTokens(ByteSpan(
                    Result.Payload.data(), Result.Payload.size()))) {
              Chunk.Block = encodeBlock(
                  BlockMethod::LzHuff,
                  static_cast<std::uint32_t>(Data.size()),
                  ByteSpan(Entropy->data(), Entropy->size()));
              continue;
            }
          }
          Chunk.Block = encodeBlock(
              Config.CpuMatcher == LzCodec::MatcherKind::HashChain
                  ? BlockMethod::Lz77
                  : BlockMethod::QuickLz,
              static_cast<std::uint32_t>(Data.size()),
              ByteSpan(Result.Payload.data(), Result.Payload.size()));
        }
        Ledger.chargeMicros(Resource::CpuPool, Micros);
        RawFallbacks.fetch_add(Raw, std::memory_order_relaxed);
        if (RawFallbackCounter)
          RawFallbackCounter->add(Raw);
      });
}

void CompressEngine::compressRangeGpu(std::span<const ChunkView> Chunks,
                                      std::size_t RangeBegin,
                                      std::size_t RangeEnd,
                                      std::vector<CompressedChunk> &Out) {
  assert(Device && "GPU backend without device");
  const std::size_t SubBatch = Model.Gpu.CompressBatchChunks;
  std::vector<LaneOutputs> DeviceResults(Chunks.size());

  for (std::size_t Begin = RangeBegin; Begin < RangeEnd; Begin += SubBatch) {
    const std::size_t End = std::min(RangeEnd, Begin + SubBatch);

    // Host -> device: the chunk payloads.
    std::size_t InBytes = 0;
    for (std::size_t I = Begin; I < End; ++I)
      InBytes += Chunks[I].Data.size();
    fault::Status DeviceOk = Device->transferToDevice(InBytes);

    // Run the lane kernels functionally first; their per-lane outcomes
    // determine the kernel's modelled execution time under the SIMT
    // lockstep rule: every chunk costs lanes x its slowest lane
    // (§3.1(2) — branching lanes do not finish early).
    std::size_t OutBytes = 0;
    double ExecMicros = 0.0;
    if (DeviceOk.ok()) {
      for (std::size_t I = Begin; I < End; ++I) {
        DeviceResults[I] = LaneCompressor.runLanes(Chunks[I].Data);
        double SlowestLane = 0.0;
        for (const CompressResult &Lane : DeviceResults[I].LaneResults)
          SlowestLane = std::max(
              SlowestLane, Model.gpuLaneUs(Lane.Stats.LiteralBytes,
                                           Lane.Stats.MatchBytes));
        ExecMicros += SlowestLane *
                      static_cast<double>(
                          DeviceResults[I].LaneResults.size());
      }

      // The lane-parallel kernel over the whole sub-batch ("we design a
      // compression algorithm that computes the chunk compression
      // results at a time", §3.2(2)).
      DeviceOk =
          Device->launchKernel(KernelFamily::Compression, ExecMicros, nullptr);

      // Device -> host: the unrefined per-lane token streams.
      if (DeviceOk.ok()) {
        for (std::size_t I = Begin; I < End; ++I)
          OutBytes += DeviceResults[I].totalPayloadBytes();
        DeviceOk = Device->transferFromDevice(OutBytes);
      }
    }

    if (!DeviceOk.ok()) {
      // Degraded mode: re-compress this sub-batch on the CPU path.
      // Whatever the device produced is discarded — the output is
      // bit-exact either way, only the modelled cost differs.
      ++GpuFallbackCount;
      if (GpuFallbacks)
        GpuFallbacks->add(1);
      compressRangeCpu(Chunks, Begin, End, Out);
      continue;
    }

    // Every chunk in the sub-batch waits for the whole kernel round
    // trip before its CPU refinement can start.
    const double Penalty =
        Device->mixedMode() ? Model.Gpu.MixedKernelPenalty : 1.0;
    const double RoundTripUs = Model.pcieTransferUs(InBytes) +
                               (Model.Gpu.LaunchUs + ExecMicros) * Penalty +
                               Model.pcieTransferUs(OutBytes);

    // CPU post-processing across the pool (§3.2(2)-(3): "the GPU
    // performs compression and the CPU is used for refinement").
    Pool.parallelForSlices(
        Begin, End,
        [&](std::size_t SliceBegin, std::size_t SliceEnd, unsigned) {
          double Micros = 0.0;
          std::uint64_t Raw = 0;
          for (std::size_t I = SliceBegin; I < SliceEnd; ++I) {
            RefinedChunk Refined = GpuLaneCompressor::refine(
                DeviceResults[I], Chunks[I].Data);
            const double PostUs = Model.cpuPostprocessUs(
                Refined.Block.size() - BlockHeaderSize, Refined.StoredRaw);
            Micros += PostUs;
            Out[I].LatencyUs = RoundTripUs + PostUs;
            if (Refined.StoredRaw)
              ++Raw;
            // Optional entropy stage: part of post-processing here.
            if (Config.EntropyStage && !Refined.StoredRaw) {
              const ByteSpan Tokens(Refined.Block.data() + BlockHeaderSize,
                                    Refined.Block.size() - BlockHeaderSize);
              const double HuffUs =
                  Model.Cpu.HuffmanPerByteNs * 1e-3 *
                  static_cast<double>(Tokens.size());
              Micros += HuffUs;
              Out[I].LatencyUs += HuffUs;
              if (auto Entropy = entropyEncodeTokens(Tokens))
                Refined.Block = encodeBlock(
                    BlockMethod::LzHuff,
                    static_cast<std::uint32_t>(Chunks[I].Data.size()),
                    ByteSpan(Entropy->data(), Entropy->size()));
            }
            Out[I].Block = std::move(Refined.Block);
            Out[I].Stats = Refined.Stats;
            Out[I].StoredRaw = Refined.StoredRaw;
          }
          Ledger.chargeMicros(Resource::CpuPool, Micros);
          RawFallbacks.fetch_add(Raw, std::memory_order_relaxed);
          if (RawFallbackCounter)
            RawFallbackCounter->add(Raw);
        });
  }
}
