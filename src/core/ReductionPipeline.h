//===----------------------------------------------------------------------===//
///
/// \file
/// The integrated inline data-reduction pipeline — the paper's primary
/// contribution (§3.3, Fig. 1). Incoming writes are chunked, ordered
/// dedup-before-compression (per Constantinescu et al. [5]), and run
/// through one of the four integration options of §4(3):
///
///   CpuOnly      both operations on the multi-core CPU
///   GpuDedup     GPU co-processes hashing+indexing
///   GpuCompress  GPU compresses, CPU refines (the paper's winner)
///   GpuBoth      both offloads share the GPU (mixed kernels)
///
/// Unique chunks are compressed and destaged to the SSD as coalesced
/// sequential writes; bin-buffer drains are logged sequentially and
/// mirrored into the GPU bin table. Everything executes functionally
/// (the stream is reconstructable and verifiable) while modelled time
/// accumulates in the resource ledger.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_REDUCTIONPIPELINE_H
#define PADRE_CORE_REDUCTIONPIPELINE_H

#include "backend/BackendConfig.h"
#include "chunk/FastCdcChunker.h"
#include "chunk/FixedChunker.h"
#include "chunk/RabinChunker.h"
#include "core/BatchScheduler.h"
#include "core/ChunkCache.h"
#include "core/ChunkStore.h"
#include "core/CompressEngine.h"
#include "core/DedupEngine.h"
#include "core/Report.h"
#include "fault/FaultInjector.h"
#include "fault/Status.h"
#include "obs/Obs.h"
#include "util/Arena.h"
#include "util/Stats.h"
#include "sim/Platform.h"
#include "ssd/SsdModel.h"

#include <memory>
#include <optional>

namespace padre {

namespace backend {
class AutoSplitter;
} // namespace backend

/// Pipeline configuration. Index.BinBits defaults to 10 here (1024
/// bins) rather than the paper's 16: experiment streams are scaled down
/// ~100x from a 4 TB deployment, and the bin count must scale with them
/// for bins to fill realistically (see DESIGN.md §1).
/// Chunking strategy for the write path. Fixed matches the paper
/// (primary-storage block granularity); the CDC strategies are
/// extensions for file/stream-backed ingest where duplicate data
/// shifts (Volume requires Fixed — LBA semantics need block-aligned
/// chunks).
enum class ChunkingMode { Fixed, Rabin, FastCdc };

struct PipelineConfig {
  PipelineMode Mode = PipelineMode::CpuOnly;
  std::size_t ChunkSize = 4096;
  ChunkingMode Chunking = ChunkingMode::Fixed;
  /// Chunks per pipeline batch (the unit of stage hand-off).
  std::size_t BatchChunks = 256;
  /// Bounded in-flight window of the inter-batch software pipeline
  /// (core/BatchScheduler.h): while batch N destages, batch N+1
  /// compresses and batch N+2 runs the CPU front half — all in
  /// modelled time on the dependency-aware timeline. Depth 1 is the
  /// serial pipeline (each batch waits for its predecessor's destage).
  /// Functional results and per-lane busy charges are identical at
  /// every depth; only the timeline (PipelineReport::WallSec) changes.
  std::size_t PipelineDepth = 4;
  /// Disable to benchmark a single operation (E2 dedup-only, E3
  /// compression-only).
  bool DedupEnabled = true;
  bool CompressEnabled = true;
  /// Verify-on-dedup (extension): on every digest match, read the
  /// stored chunk back and byte-compare before sharing it — the
  /// production guard against hash collisions and latent corruption.
  /// A mismatching duplicate is stored as a fresh unique chunk. Costs
  /// one SSD read + a memcmp per duplicate.
  bool VerifyDuplicates = false;
  /// Decompressed-chunk LRU capacity on the read path (extension).
  /// Default 0 = disabled: the paper's pipeline is write-only, so the
  /// cache is opt-in; `padrectl restore` opts in with 32 MiB. The
  /// restore engine (src/restore) uses it as the DRAM front tier and
  /// its hit/miss/eviction counters surface in MetricsRegistry
  /// (padre_cache_*, see OBSERVABILITY.md).
  std::size_t ReadCacheBytes = 0;
  DedupEngineConfig Dedup;
  CompressEngineConfig Compress;
  /// Observability sinks (non-owning; must outlive the pipeline). When
  /// null the hot path makes no instrumentation calls at all — no
  /// allocation, no ledger reads — so an untraced run is bit-identical
  /// to one built before the observability layer existed. See
  /// OBSERVABILITY.md for the span schema and metric catalogue.
  obs::TraceRecorder *Trace = nullptr;
  obs::MetricsRegistry *Metrics = nullptr;
  /// Fault injector (non-owning; must outlive the pipeline). Attached
  /// to the SSD model, the GPU device and the destage stage. Null (or
  /// an empty plan) leaves every code path and modelled cost
  /// bit-identical to a fault-free build; see DESIGN.md fault model.
  fault::FaultInjector *Faults = nullptr;
  /// Page-level FTL geometry (ssd/Ftl.h). Unset (the default) keeps
  /// the seed constant-WAF NAND accounting bit-exactly; set, the SSD
  /// model tracks every destaged chunk's pages and write amplification
  /// becomes a measured output (DESIGN.md decision 14).
  std::optional<ssd::FtlConfig> Ftl;
  /// Multi-backend reduction framework (src/backend, DESIGN.md
  /// decision 17). Disabled (the default) keeps the single-engine
  /// compress stage bit-exactly; enabled, the compress stage routes
  /// through the AutoSplitter's backend partition — forced CpuOnly /
  /// GpuOnly splits reproduce the classic stage bit-identically
  /// (results, recipes, charges, timeline), Auto tunes the split per
  /// batch, and GpuDevices >= 2 adds modelled GPUs with their own
  /// staging/queue lanes. Requires CompressEnabled; device-capable
  /// split modes require a GPU-present platform.
  backend::BackendConfig Backend;

  PipelineConfig() {
    Dedup.Index.BinBits = 10;
    Dedup.Index.BufferCapacityPerBin = 16;
  }
};

/// Per-chunk outcome of a pipeline write, for callers that maintain
/// their own mappings (e.g. the LBA volume layer in core/Volume.h).
struct ChunkWriteInfo {
  std::uint64_t Location = 0;
  Fingerprint Fp;
  LookupOutcome Outcome = LookupOutcome::Unique;
  std::uint32_t Size = 0;
};

/// Per-chunk result of scrub-and-repair (see scrubChunk).
enum class ScrubOutcome { Healthy, Repaired, Lost };

/// The inline reduction pipeline for one storage volume.
class ReductionPipeline {
public:
  ReductionPipeline(const Platform &Platform, const PipelineConfig &Config);
  ~ReductionPipeline();

  /// Ingests a write stream (any multiple of calls). The stream is
  /// chunked, deduplicated, compressed and destaged per the mode.
  /// When \p InfoOut is non-null, one ChunkWriteInfo per chunk is
  /// appended in stream order. GPU faults are recovered transparently
  /// (CPU fallback); the returned status reports the first SSD write
  /// that outlived its retry budget — every batch is still processed,
  /// so the functional store stays complete.
  fault::Status write(ByteSpan Stream,
                      std::vector<ChunkWriteInfo> *InfoOut = nullptr);

  /// Ingests several streams as one write: chunking is concatenated,
  /// so pipeline batches span stream boundaries. Callers dispatching
  /// many small runs (the volume service's fair-share rounds) fill the
  /// scheduler's overlap window instead of under-filling one batch per
  /// run. Chunk order — and so locations, outcomes and recipes —
  /// matches writing the streams back-to-back; only the batch grouping
  /// changes.
  fault::Status writeV(std::span<const ByteSpan> Streams,
                       std::vector<ChunkWriteInfo> *InfoOut = nullptr);

  /// Ingests a write stream bypassing both reduction operations: every
  /// chunk is stored raw at a fresh location (the §1 "store first,
  /// reduce in the background when idle" baseline; see
  /// core/BackgroundReducer.h). Fingerprints in \p InfoOut are still
  /// computed (the background pass needs them for its index), charged
  /// as CPU hashing.
  fault::Status writeRaw(ByteSpan Stream,
                         std::vector<ChunkWriteInfo> *InfoOut = nullptr);

  /// End-of-run: drains the bin buffers (SSD log writes + GPU update).
  fault::Status finish();

  /// Charges a metadata-journal write of \p Bytes to the SSD lane
  /// (src/journal): a sequential append through the fault-injected
  /// write path, bracketed as a stage span named \p SpanName (a string
  /// literal) and placed on the timeline *after* the most recent
  /// batch's destage completes — the write-ahead ordering of destage
  /// -> commit -> ack. Returns the write's status.
  fault::Status journalWrite(std::uint64_t Bytes, const char *SpanName);

  /// Recipe of everything written so far (for read-back).
  const StreamRecipe &recipe() const { return Recipe; }

  /// Reads the full stream back through the store, charging SSD reads
  /// and CPU decompression. Returns nullopt on corruption.
  std::optional<ByteVector> readBack();

  /// Convenience: readBack() equals \p Original byte-for-byte.
  bool verifyAgainst(ByteSpan Original);

  /// Reads one chunk by location, charging an SSD random read and CPU
  /// decompression on a cache miss (or a DRAM copy on a hit when the
  /// read cache is enabled). \p BypassCache forces the flash path —
  /// scrubbing must not certify cached copies. Returns nullopt if
  /// absent or corrupt.
  std::optional<ByteVector> readChunk(std::uint64_t Location,
                                      bool BypassCache = false);

  /// Like readChunk but preserves the failure class: SsdReadError
  /// (flash command gave up), ChunkMissing (no block at the location)
  /// or ChunkCorrupt (block failed its CRC/format check).
  fault::Expected<ByteVector> readChunkEx(std::uint64_t Location,
                                          bool BypassCache = false);

  /// Verifies the chunk stored at \p Location against \p Fp (charging
  /// the flash read + hash) and, when it is corrupt or unreadable,
  /// attempts a repair from a fingerprint-verified cached copy: the
  /// copy is re-encoded as a raw block and rewritten in place. Lost
  /// means no trusted repair source existed (or the repair write
  /// itself failed) — the caller keeps the typed loss.
  ScrubOutcome scrubChunk(std::uint64_t Location, const Fingerprint &Fp);

  /// Read-cache statistics (null when disabled). The non-const form is
  /// for the restore engine (src/restore), which uses the cache as its
  /// front tier.
  const ChunkCache *readCache() const { return Cache.get(); }
  ChunkCache *readCache() { return Cache.get(); }

  /// Garbage-collection hooks for the volume layer: drops a dead
  /// chunk's index entries (CPU index + GPU bin table), and erases its
  /// stored block.
  bool dropIndexEntry(const Fingerprint &Fp);
  std::uint64_t eraseChunk(std::uint64_t Location);

  /// Restore path (persist/VolumeImage.h): places an already-encoded
  /// block at \p Location, re-registers \p Fp in the dedup index, and
  /// advances the location allocator past \p Location. Returns false
  /// if the location is already occupied.
  bool restoreChunk(std::uint64_t Location, ByteVector Block,
                    const Fingerprint &Fp);

  /// Fault injection for tests/scrub drills (see ChunkStore).
  bool corruptChunkForTesting(std::uint64_t Location,
                              std::size_t ByteOffset) {
    return Store.corruptForTesting(Location, ByteOffset);
  }

  /// Marks subsequent writes as storage-internal (e.g. the background
  /// reducer's rewrites): they charge service time but do not count as
  /// host I/O in the endurance accounting.
  void setInternalWrites(bool Internal) { InternalWrites = Internal; }

  /// Zeroes the ledger and the report counters while keeping all
  /// functional state (index, store) — call after a warmup prefix so
  /// the report reflects steady state.
  void resetMeasurement();

  /// The measurements since construction or resetMeasurement().
  PipelineReport report() const;

  ResourceLedger &ledger() { return Ledger; }
  const BatchScheduler &scheduler() const { return *Sched; }
  ThreadPool &pool() { return Pool; }
  /// The backend splitter (null unless Config.Backend.Enabled).
  const backend::AutoSplitter *splitter() const { return Splitter.get(); }
  /// Modelled GPU devices in play — the capacity term of the report's
  /// makespan (1 without the multi-GPU backend).
  unsigned gpuDeviceCount() const;
  const SsdModel &ssd() const { return Ssd; }
  SsdModel &ssd() { return Ssd; }
  const ChunkStore &store() const { return Store; }
  const DedupEngine *dedupEngine() const { return Dedup.get(); }
  GpuDevice *gpuDevice() { return Device.get(); }
  const PipelineConfig &config() const { return Config; }
  const Platform &platform() const { return Plat; }

private:
  fault::Status processBatch(std::span<const ChunkView> Chunks,
                             std::vector<ChunkWriteInfo> *InfoOut, bool Raw);

  Platform Plat;
  PipelineConfig Config;
  ResourceLedger Ledger;
  ThreadPool Pool;
  std::unique_ptr<GpuDevice> Device;
  SsdModel Ssd;
  ChunkStore Store;
  std::unique_ptr<DedupEngine> Dedup;
  std::unique_ptr<CompressEngine> Compress;
  std::unique_ptr<ChunkCache> Cache;
  std::unique_ptr<BatchScheduler> Sched;
  std::unique_ptr<backend::AutoSplitter> Splitter;
  std::unique_ptr<Chunker> StreamChunker;
  StreamRecipe Recipe;
  /// Per-batch scratch (locations, unique-chunk partition, latency
  /// accumulators): reset at the top of every processBatch, so the
  /// steady-state write path allocates nothing on the heap. The dedup
  /// engine owns a separate arena for its own stage.
  Arena BatchArena;

  std::uint64_t NextLocation = 0;
  bool InternalWrites = false;
  // Report counters (reset by resetMeasurement).
  std::uint64_t LogicalBytes = 0;
  std::uint64_t LogicalChunks = 0;
  std::uint64_t UniqueChunks = 0;
  std::uint64_t UniqueBytes = 0;
  std::uint64_t DupChunks = 0;
  std::uint64_t DupFromBuffer = 0;
  std::uint64_t DupFromTree = 0;
  std::uint64_t DupFromGpu = 0;
  std::uint64_t VerifyMismatches = 0;
  std::uint64_t StoredBytes = 0;
  std::uint64_t RawFallbackBase = 0;
  /// Per-chunk modelled service latency (microseconds): request path +
  /// dedup stage + (for uniques) compression stage + destage share.
  Histogram LatencyHist{20000.0, 2000};
  // Observability instruments (null when Config.Metrics is null),
  // cached at construction so the hot path never locks the registry.
  obs::LogHistogram *ChunkLatencyHist = nullptr;
  obs::LogHistogram *BatchChunksHist = nullptr;
  obs::Counter *ChunksTotal = nullptr;
  obs::Counter *LogicalBytesTotal = nullptr;
  obs::Counter *UniqueTotal = nullptr;
  obs::Counter *DupBufferTotal = nullptr;
  obs::Counter *DupTreeTotal = nullptr;
  obs::Counter *DupGpuTotal = nullptr;
  obs::Counter *StoredBytesTotal = nullptr;
  obs::Counter *VerifyMismatchTotal = nullptr;
  obs::Counter *DecodeFailTotal = nullptr;
  obs::Counter *ScrubRepairedTotal = nullptr;
  obs::Counter *ScrubLostTotal = nullptr;
};

} // namespace padre

#endif // PADRE_CORE_REDUCTIONPIPELINE_H
