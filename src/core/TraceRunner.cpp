//===----------------------------------------------------------------------===//
///
/// \file
/// Trace replay implementation.
///
//===----------------------------------------------------------------------===//

#include "core/TraceRunner.h"

#include <cassert>
#include <cstring>

using namespace padre;

TraceRunStats padre::replayTrace(Volume &Vol, const TraceLog &Log,
                                 const TraceReadFn &ReadBlocks) {
  TraceRunStats Stats;
  const std::size_t BlockSize = Vol.blockSize();

  // Shadow state: the content tag each block should hold.
  constexpr std::uint64_t Unwritten = ~0ull;
  std::vector<std::uint64_t> Shadow(Vol.blockCount(), Unwritten);

  ByteVector WriteBuffer;
  ByteVector Expected(BlockSize);
  for (const TraceRecord &Record : Log.Records) {
    if (Record.Lba + Record.Blocks > Vol.blockCount() ||
        Record.Lba + Record.Blocks < Record.Lba) {
      ++Stats.OutOfRange;
      continue;
    }
    switch (Record.Op) {
    case TraceOp::Write: {
      WriteBuffer.resize(static_cast<std::size_t>(Record.Blocks) *
                         BlockSize);
      for (std::uint32_t I = 0; I < Record.Blocks; ++I) {
        fillTraceBlock(Record.ContentTag,
                       MutableByteSpan(WriteBuffer.data() + I * BlockSize,
                                       BlockSize));
        Shadow[Record.Lba + I] = Record.ContentTag;
      }
      [[maybe_unused]] const bool Ok = Vol.writeBlocks(
          Record.Lba, ByteSpan(WriteBuffer.data(), WriteBuffer.size()));
      assert(Ok && "In-range write must succeed");
      ++Stats.Writes;
      Stats.BlocksWritten += Record.Blocks;
      break;
    }
    case TraceOp::Read: {
      const auto Data = ReadBlocks
                            ? ReadBlocks(Record.Lba, Record.Blocks)
                            : Vol.readBlocks(Record.Lba, Record.Blocks);
      ++Stats.Reads;
      Stats.BlocksRead += Record.Blocks;
      if (!Data) {
        ++Stats.ReadFailures;
        break;
      }
      for (std::uint32_t I = 0; I < Record.Blocks; ++I) {
        const std::uint64_t Tag = Shadow[Record.Lba + I];
        if (Tag == Unwritten) {
          // Unmapped blocks must read as zeros.
          bool AllZero = true;
          for (std::size_t B = 0; B < BlockSize && AllZero; ++B)
            AllZero = (*Data)[I * BlockSize + B] == 0;
          if (!AllZero)
            ++Stats.VerifyFailures;
          continue;
        }
        fillTraceBlock(Tag, MutableByteSpan(Expected.data(), BlockSize));
        if (std::memcmp(Data->data() + I * BlockSize, Expected.data(),
                        BlockSize) != 0)
          ++Stats.VerifyFailures;
      }
      break;
    }
    case TraceOp::Trim: {
      [[maybe_unused]] const bool Ok =
          Vol.trim(Record.Lba, Record.Blocks);
      assert(Ok && "In-range trim must succeed");
      for (std::uint32_t I = 0; I < Record.Blocks; ++I)
        Shadow[Record.Lba + I] = Unwritten;
      ++Stats.Trims;
      break;
    }
    }
  }
  return Stats;
}
