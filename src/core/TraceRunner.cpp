//===----------------------------------------------------------------------===//
///
/// \file
/// Trace replay implementation.
///
//===----------------------------------------------------------------------===//

#include "core/TraceRunner.h"

#include "core/ReductionPipeline.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace padre;

TraceRunStats padre::replayTrace(Volume &Vol, const TraceLog &Log,
                                 const TraceReadFn &ReadBlocks) {
  TraceRunStats Stats;
  const std::size_t BlockSize = Vol.blockSize();

  // Shadow state: the content tag each block should hold.
  constexpr std::uint64_t Unwritten = ~0ull;
  std::vector<std::uint64_t> Shadow(Vol.blockCount(), Unwritten);

  ByteVector WriteBuffer;
  ByteVector Expected(BlockSize);
  for (const TraceRecord &Record : Log.Records) {
    if (Record.Lba + Record.Blocks > Vol.blockCount() ||
        Record.Lba + Record.Blocks < Record.Lba) {
      ++Stats.OutOfRange;
      continue;
    }
    switch (Record.Op) {
    case TraceOp::Write: {
      WriteBuffer.resize(static_cast<std::size_t>(Record.Blocks) *
                         BlockSize);
      for (std::uint32_t I = 0; I < Record.Blocks; ++I) {
        fillTraceBlock(Record.ContentTag,
                       MutableByteSpan(WriteBuffer.data() + I * BlockSize,
                                       BlockSize));
        Shadow[Record.Lba + I] = Record.ContentTag;
      }
      [[maybe_unused]] const bool Ok = Vol.writeBlocks(
          Record.Lba, ByteSpan(WriteBuffer.data(), WriteBuffer.size()));
      assert(Ok && "In-range write must succeed");
      ++Stats.Writes;
      Stats.BlocksWritten += Record.Blocks;
      break;
    }
    case TraceOp::Read: {
      const auto Data = ReadBlocks
                            ? ReadBlocks(Record.Lba, Record.Blocks)
                            : Vol.readBlocks(Record.Lba, Record.Blocks);
      ++Stats.Reads;
      Stats.BlocksRead += Record.Blocks;
      if (!Data) {
        ++Stats.ReadFailures;
        break;
      }
      for (std::uint32_t I = 0; I < Record.Blocks; ++I) {
        const std::uint64_t Tag = Shadow[Record.Lba + I];
        if (Tag == Unwritten) {
          // Unmapped blocks must read as zeros.
          bool AllZero = true;
          for (std::size_t B = 0; B < BlockSize && AllZero; ++B)
            AllZero = (*Data)[I * BlockSize + B] == 0;
          if (!AllZero)
            ++Stats.VerifyFailures;
          continue;
        }
        fillTraceBlock(Tag, MutableByteSpan(Expected.data(), BlockSize));
        if (std::memcmp(Data->data() + I * BlockSize, Expected.data(),
                        BlockSize) != 0)
          ++Stats.VerifyFailures;
      }
      break;
    }
    case TraceOp::Trim: {
      [[maybe_unused]] const bool Ok =
          Vol.trim(Record.Lba, Record.Blocks);
      assert(Ok && "In-range trim must succeed");
      for (std::uint32_t I = 0; I < Record.Blocks; ++I)
        Shadow[Record.Lba + I] = Unwritten;
      ++Stats.Trims;
      break;
    }
    }
  }
  return Stats;
}

namespace {

/// Total modelled busy time an op would serialize behind: the shared
/// CPU pool contributes its busy time divided by the pool width (the
/// lanes run in parallel), the device lanes contribute theirs whole.
double modelledBusyUs(const ResourceLedger &Ledger, double CpuThreads) {
  return Ledger.busyMicros(Resource::CpuPool) / CpuThreads +
         Ledger.busyMicros(Resource::Gpu) +
         Ledger.busyMicros(Resource::Pcie) +
         Ledger.busyMicros(Resource::Ssd) +
         Ledger.busyMicros(Resource::IndexLock);
}

/// Exact percentile of a sorted sample (nearest-rank on N-1).
double percentileOf(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  const std::size_t Idx = static_cast<std::size_t>(
      P * static_cast<double>(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

} // namespace

TimedReplayReport padre::replayTraceTimed(Volume &Vol, const TraceLog &Log,
                                          const ReplayConfig &Config,
                                          const TraceReadFn &ReadBlocks) {
  TimedReplayReport Report;
  const std::size_t BlockSize = Vol.blockSize();
  ResourceLedger &Ledger = Vol.pipelineForMaintenance().ledger();
  const double CpuThreads = static_cast<double>(
      Vol.pipelineForMaintenance().platform().Model.Cpu.Threads);

  constexpr std::uint64_t Unwritten = ~0ull;
  std::vector<std::uint64_t> Shadow(Vol.blockCount(), Unwritten);

  std::vector<double> Latencies;
  Latencies.reserve(Log.Records.size());
  double Clock = 0.0; // completion clock of the open-loop queue
  ByteVector WriteBuffer;
  ByteVector Expected(BlockSize);
  std::uint64_t OpIndex = 0;
  for (const TraceRecord &Record : Log.Records) {
    ++OpIndex;
    if (Record.Lba + Record.Blocks > Vol.blockCount() ||
        Record.Lba + Record.Blocks < Record.Lba) {
      ++Report.Stats.OutOfRange;
      continue;
    }
    const double BusyBefore = modelledBusyUs(Ledger, CpuThreads);
    switch (Record.Op) {
    case TraceOp::Write: {
      WriteBuffer.resize(static_cast<std::size_t>(Record.Blocks) *
                         BlockSize);
      for (std::uint32_t I = 0; I < Record.Blocks; ++I) {
        fillTraceBlock(Record.ContentTag,
                       MutableByteSpan(WriteBuffer.data() + I * BlockSize,
                                       BlockSize));
        Shadow[Record.Lba + I] = Record.ContentTag;
      }
      const ByteSpan Data(WriteBuffer.data(), WriteBuffer.size());
      [[maybe_unused]] const bool Ok =
          Config.RawWrites ? Vol.writeBlocksRaw(Record.Lba, Data)
                           : Vol.writeBlocks(Record.Lba, Data);
      assert(Ok && "In-range write must succeed");
      ++Report.Stats.Writes;
      Report.Stats.BlocksWritten += Record.Blocks;
      break;
    }
    case TraceOp::Read: {
      const auto Data = ReadBlocks
                            ? ReadBlocks(Record.Lba, Record.Blocks)
                            : Vol.readBlocks(Record.Lba, Record.Blocks);
      ++Report.Stats.Reads;
      Report.Stats.BlocksRead += Record.Blocks;
      if (!Data) {
        ++Report.Stats.ReadFailures;
        break;
      }
      for (std::uint32_t I = 0; I < Record.Blocks; ++I) {
        const std::uint64_t Tag = Shadow[Record.Lba + I];
        if (Tag == Unwritten) {
          bool AllZero = true;
          for (std::size_t B = 0; B < BlockSize && AllZero; ++B)
            AllZero = (*Data)[I * BlockSize + B] == 0;
          if (!AllZero)
            ++Report.Stats.VerifyFailures;
          continue;
        }
        fillTraceBlock(Tag, MutableByteSpan(Expected.data(), BlockSize));
        if (std::memcmp(Data->data() + I * BlockSize, Expected.data(),
                        BlockSize) != 0)
          ++Report.Stats.VerifyFailures;
      }
      break;
    }
    case TraceOp::Trim: {
      [[maybe_unused]] const bool Ok =
          Vol.trim(Record.Lba, Record.Blocks);
      assert(Ok && "In-range trim must succeed");
      for (std::uint32_t I = 0; I < Record.Blocks; ++I)
        Shadow[Record.Lba + I] = Unwritten;
      ++Report.Stats.Trims;
      break;
    }
    }
    if (Config.GcEveryOps != 0 && OpIndex % Config.GcEveryOps == 0) {
      Report.ChunksCollected += Vol.collectGarbage();
      ++Report.GcRuns;
    }
    // Open-loop queue: the op starts when it arrives or when the
    // device frees up, whichever is later; latency is queueing plus
    // this op's modelled service time.
    const double ServiceUs =
        modelledBusyUs(Ledger, CpuThreads) - BusyBefore;
    const double Arrival = static_cast<double>(Record.ArrivalUs);
    Clock = std::max(Clock, Arrival) + ServiceUs;
    Latencies.push_back(Clock - Arrival);
    Report.ServiceUs += ServiceUs;
  }
  // Drain buffered batches so their destage cost is on the clock.
  {
    const double BusyBefore = modelledBusyUs(Ledger, CpuThreads);
    Vol.flush();
    const double FlushUs = modelledBusyUs(Ledger, CpuThreads) - BusyBefore;
    Clock += FlushUs;
    Report.ServiceUs += FlushUs;
  }
  Report.WallUs = Clock;
  if (!Latencies.empty()) {
    std::sort(Latencies.begin(), Latencies.end());
    Report.P50Us = percentileOf(Latencies, 0.50);
    Report.P95Us = percentileOf(Latencies, 0.95);
    Report.P99Us = percentileOf(Latencies, 0.99);
    Report.MaxUs = Latencies.back();
    double Sum = 0.0;
    for (double L : Latencies)
      Sum += L;
    Report.MeanUs = Sum / static_cast<double>(Latencies.size());
  }
  return Report;
}
