//===----------------------------------------------------------------------===//
///
/// \file
/// LBA volume implementation.
///
//===----------------------------------------------------------------------===//

#include "core/Volume.h"

#include <algorithm>
#include <cassert>

using namespace padre;

Volume::Volume(ReductionPipeline &Pipeline, const VolumeConfig &Config,
               std::shared_ptr<ChunkRefTracker> Tracker)
    : Pipeline(Pipeline), Config(Config),
      BlockSize(Pipeline.config().ChunkSize),
      SharedTracker(Tracker != nullptr),
      Tracker(Tracker ? std::move(Tracker)
                      : std::make_shared<ChunkRefTracker>()),
      Mapping(Config.BlockCount, Unmapped) {
  assert(Config.BlockCount > 0 && "Empty volume");
  assert(Pipeline.config().Chunking == ChunkingMode::Fixed &&
         "LBA volumes require fixed-size chunking");
}

bool Volume::writeBlocks(std::uint64_t Lba, ByteSpan Data,
                         std::vector<ChunkWriteInfo> *InfoOut) {
  return writeBlocksImpl(Lba, Data, /*Raw=*/false, InfoOut);
}

bool Volume::writeBlocksRaw(std::uint64_t Lba, ByteSpan Data) {
  return writeBlocksImpl(Lba, Data, /*Raw=*/true, nullptr);
}

bool Volume::writeBlocksImpl(std::uint64_t Lba, ByteSpan Data, bool Raw,
                             std::vector<ChunkWriteInfo> *InfoOut) {
  assert(Data.size() % BlockSize == 0 &&
         "Writes must be whole blocks (primary-storage granularity)");
  const std::uint64_t Blocks = Data.size() / BlockSize;
  if (Lba + Blocks > Config.BlockCount || Lba + Blocks < Lba)
    return false;

  std::vector<ChunkWriteInfo> Infos;
  Infos.reserve(Blocks);
  if (Raw)
    Pipeline.writeRaw(Data, &Infos);
  else
    Pipeline.write(Data, &Infos);
  assert(Infos.size() == Blocks && "Pipeline chunking disagrees");

  applyChunkWrites(Lba, Infos);
  if (InfoOut)
    InfoOut->insert(InfoOut->end(), Infos.begin(), Infos.end());
  return true;
}

void Volume::applyChunkWrites(std::uint64_t Lba,
                              std::span<const ChunkWriteInfo> Infos) {
  assert(Lba + Infos.size() <= Config.BlockCount && "Range not admitted");
  for (std::size_t I = 0; I < Infos.size(); ++I) {
    // Reference the (new or shared) chunk before dropping the old one
    // so an overwrite-with-identical-content never hits zero refs.
    Tracker->reference(Infos[I]);
    std::uint64_t &Slot = Mapping[Lba + I];
    const std::uint64_t Old = Slot;
    Slot = Infos[I].Location;
    if (Old != Unmapped)
      Tracker->dereference(Old);
  }
}

bool Volume::applyMappingUpdate(std::uint64_t Lba, std::uint64_t Location,
                                const Fingerprint &Fp, bool FreshChunk) {
  if (Lba >= Config.BlockCount)
    return false;
  ChunkWriteInfo Info;
  Info.Location = Location;
  Info.Fp = Fp;
  // A dedup hit replayed onto a dead-but-resident chunk is a revival,
  // exactly as on the original write path; a fresh chunk is not.
  Info.Outcome = FreshChunk ? LookupOutcome::Unique : LookupOutcome::DupTree;
  Tracker->reference(Info);
  std::uint64_t &Slot = Mapping[Lba];
  const std::uint64_t Old = Slot;
  Slot = Location;
  if (Old != Unmapped)
    Tracker->dereference(Old);
  return true;
}

std::optional<ByteVector> Volume::readBlocks(std::uint64_t Lba,
                                             std::uint64_t Count) {
  if (Lba + Count > Config.BlockCount || Lba + Count < Lba)
    return std::nullopt;
  ByteVector Out;
  Out.reserve(Count * BlockSize);
  for (std::uint64_t I = 0; I < Count; ++I) {
    const std::uint64_t Location = Mapping[Lba + I];
    if (Location == Unmapped) {
      Out.insert(Out.end(), BlockSize, 0);
      continue;
    }
    const auto Chunk = Pipeline.readChunk(Location);
    if (!Chunk || Chunk->size() != BlockSize)
      return std::nullopt;
    Out.insert(Out.end(), Chunk->begin(), Chunk->end());
  }
  return Out;
}

bool Volume::trim(std::uint64_t Lba, std::uint64_t Count) {
  if (Lba + Count > Config.BlockCount || Lba + Count < Lba)
    return false;
  for (std::uint64_t I = 0; I < Count; ++I) {
    std::uint64_t &Slot = Mapping[Lba + I];
    if (Slot == Unmapped)
      continue;
    Tracker->dereference(Slot);
    Slot = Unmapped;
  }
  return true;
}

std::size_t Volume::collectGarbage() {
  return Tracker->collectGarbage(Pipeline);
}

Volume::SnapshotId Volume::createSnapshot() {
  // Reference every mapped chunk on the snapshot's behalf. The
  // fingerprint is already tracked; re-referencing by location only.
  for (std::uint64_t Location : Mapping) {
    if (Location == Unmapped)
      continue;
    const auto Fp = Tracker->fingerprintOf(Location);
    assert(Fp.has_value() && "Mapped chunk without a ref record");
    ChunkWriteInfo Info;
    Info.Location = Location;
    Info.Fp = *Fp;
    Info.Outcome = LookupOutcome::DupTree; // an existing chunk
    Tracker->reference(Info);
  }
  const SnapshotId Id = NextSnapshotId++;
  Snapshots.emplace_back(Id, Mapping);
  return Id;
}

bool Volume::deleteSnapshot(SnapshotId Id) {
  for (auto It = Snapshots.begin(); It != Snapshots.end(); ++It) {
    if (It->first != Id)
      continue;
    for (std::uint64_t Location : It->second)
      if (Location != Unmapped)
        Tracker->dereference(Location);
    Snapshots.erase(It);
    return true;
  }
  return false;
}

std::optional<ByteVector> Volume::readSnapshotBlocks(SnapshotId Id,
                                                     std::uint64_t Lba,
                                                     std::uint64_t Count) {
  const std::vector<std::uint64_t> *SnapMapping = nullptr;
  for (const auto &[SnapId, Map] : Snapshots)
    if (SnapId == Id)
      SnapMapping = &Map;
  if (!SnapMapping || Lba + Count > Config.BlockCount || Lba + Count < Lba)
    return std::nullopt;
  ByteVector Out;
  Out.reserve(Count * BlockSize);
  for (std::uint64_t I = 0; I < Count; ++I) {
    const std::uint64_t Location = (*SnapMapping)[Lba + I];
    if (Location == Unmapped) {
      Out.insert(Out.end(), BlockSize, 0);
      continue;
    }
    const auto Chunk = Pipeline.readChunk(Location);
    if (!Chunk || Chunk->size() != BlockSize)
      return std::nullopt;
    Out.insert(Out.end(), Chunk->begin(), Chunk->end());
  }
  return Out;
}

std::vector<Volume::SnapshotId> Volume::snapshotIds() const {
  std::vector<SnapshotId> Ids;
  Ids.reserve(Snapshots.size());
  for (const auto &[Id, Map] : Snapshots)
    Ids.push_back(Id);
  return Ids;
}

Volume::ScrubReport Volume::scrub() {
  ScrubReport Report;
  for (const ChunkRecord &Record : Tracker->records()) {
    ++Report.ChunksScanned;
    const auto Chunk =
        Pipeline.readChunk(Record.Location, /*BypassCache=*/true);
    bool Bad = !Chunk.has_value();
    if (!Bad) {
      // Re-fingerprint the decoded content: the block CRC catches
      // payload corruption; this catches a block swapped for another
      // valid one (misdirected write).
      const Fingerprint Actual =
          Fingerprint::ofData(ByteSpan(Chunk->data(), Chunk->size()));
      Bad = !(Actual == Record.Fp);
    }
    if (Bad) {
      ++Report.CorruptChunks;
      Report.BadLocations.push_back(Record.Location);
    }
  }
  std::sort(Report.BadLocations.begin(), Report.BadLocations.end());
  return Report;
}

Volume::ScrubRepairReport Volume::scrubAndRepair() {
  ScrubRepairReport Report;
  for (const ChunkRecord &Record : Tracker->records()) {
    ++Report.ChunksScanned;
    switch (Pipeline.scrubChunk(Record.Location, Record.Fp)) {
    case ScrubOutcome::Healthy:
      break;
    case ScrubOutcome::Repaired:
      ++Report.CorruptChunks;
      ++Report.RepairedChunks;
      break;
    case ScrubOutcome::Lost:
      ++Report.CorruptChunks;
      ++Report.LostChunks;
      Report.LostLocations.push_back(Record.Location);
      break;
    }
  }
  std::sort(Report.LostLocations.begin(), Report.LostLocations.end());
  return Report;
}

VolumeStats Volume::stats() const {
  VolumeStats Stats;
  for (std::uint64_t Location : Mapping)
    Stats.MappedBlocks += Location != Unmapped;
  Stats.LiveChunks = Tracker->liveChunks();
  Stats.DeadChunks = Tracker->deadChunks();
  Stats.LogicalBytes = Stats.MappedBlocks * BlockSize;
  Stats.PhysicalBytes = Pipeline.store().storedBytes();
  Stats.RevivedChunks = Tracker->revivedChunks();
  Stats.CollectedChunks = Tracker->collectedChunks();
  Stats.Snapshots = Snapshots.size();
  return Stats;
}

std::uint32_t Volume::refCount(std::uint64_t Location) const {
  return Tracker->refCount(Location);
}

bool Volume::restoreState(std::vector<std::uint64_t> NewMapping,
                          const std::vector<ChunkRecord> &Records,
                          SnapshotTable NewSnapshots, SnapshotId NextId) {
  if (SharedTracker)
    return false; // would clobber the other domain members' references
  if (NewMapping.size() != Config.BlockCount)
    return false;
  for (const auto &[Id, Map] : NewSnapshots)
    if (Map.size() != Config.BlockCount)
      return false;
  Mapping = std::move(NewMapping);
  Snapshots = std::move(NewSnapshots);
  // The counter is monotonic across deletes: the persisted value wins
  // whenever it is ahead of the live table (a deleted snapshot leaves
  // no trace there, yet its id must never be reissued — journal replay
  // validates replayed ids against the recorded ones).
  NextSnapshotId = std::max<SnapshotId>(NextId, 1);
  for (const auto &[Id, Map] : Snapshots)
    NextSnapshotId = std::max(NextSnapshotId, Id + 1);
  Tracker->restore(Records);
  return true;
}
