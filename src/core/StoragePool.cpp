//===----------------------------------------------------------------------===//
///
/// \file
/// Storage pool implementation.
///
//===----------------------------------------------------------------------===//

#include "core/StoragePool.h"

using namespace padre;

StoragePool::StoragePool(const Platform &Plat, const PipelineConfig &Config)
    : Pipeline(Plat, Config), Tracker(std::make_shared<ChunkRefTracker>()) {}

Volume &StoragePool::createVolume(std::uint64_t Blocks) {
  VolumeConfig Config;
  Config.BlockCount = Blocks;
  Volumes.push_back(std::make_unique<Volume>(Pipeline, Config, Tracker));
  return *Volumes.back();
}

std::size_t StoragePool::collectGarbage() {
  return Tracker->collectGarbage(Pipeline);
}

PoolStats StoragePool::stats() const {
  PoolStats Stats;
  Stats.Volumes = Volumes.size();
  for (const auto &Vol : Volumes) {
    const VolumeStats VolStats = Vol->stats();
    Stats.MappedBlocks += VolStats.MappedBlocks;
    Stats.LogicalBytes += VolStats.LogicalBytes;
  }
  Stats.PhysicalBytes = Pipeline.store().storedBytes();
  Stats.LiveChunks = Tracker->liveChunks();
  Stats.DeadChunks = Tracker->deadChunks();
  return Stats;
}
