//===----------------------------------------------------------------------===//
///
/// \file
/// Shared chunk reference tracking. A chunk's lifetime is governed by
/// how many logical references point at it — LBA mappings and
/// snapshots, possibly from *several volumes* sharing one dedup domain
/// (core/StoragePool.h). The tracker owns the refcounts, the dead list
/// and garbage collection; volumes translate their mapping changes
/// into reference()/dereference() calls.
///
/// Single-writer semantics, like the volume layer.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_REFTRACKER_H
#define PADRE_CORE_REFTRACKER_H

#include "core/ReductionPipeline.h"

#include <unordered_map>

namespace padre {

/// Reference table for the chunks of one dedup domain.
class ChunkRefTracker {
public:
  /// A persisted chunk reference (persistence support).
  struct Record {
    std::uint64_t Location = 0;
    std::uint32_t Refs = 0;
    Fingerprint Fp;
  };

  /// Takes one reference on \p Info's chunk. Tracks revivals: a dedup
  /// hit that lands on a chunk whose refcount had dropped to zero.
  void reference(const ChunkWriteInfo &Info);

  /// Releases one reference on \p Location; at zero the chunk joins
  /// the dead list (awaiting collectGarbage).
  void dereference(std::uint64_t Location);

  /// Purges dead chunks through \p Pipeline (index entries + stored
  /// blocks). Returns the number collected.
  std::size_t collectGarbage(ReductionPipeline &Pipeline);

  /// Current reference count of \p Location (0 if unknown/dead).
  std::uint32_t refCount(std::uint64_t Location) const;

  /// Fingerprint of \p Location, if tracked.
  std::optional<Fingerprint> fingerprintOf(std::uint64_t Location) const;

  std::uint64_t liveChunks() const;
  std::uint64_t deadChunks() const;
  std::uint64_t revivedChunks() const { return Revived; }
  std::uint64_t collectedChunks() const { return Collected; }

  /// All records, in unspecified order (persistence/scrub support).
  std::vector<Record> records() const;

  /// Replaces the table (restore path); zero-ref records land on the
  /// dead list.
  void restore(const std::vector<Record> &Records);

private:
  struct ChunkRef {
    std::uint32_t Refs = 0;
    Fingerprint Fp;
  };

  std::unordered_map<std::uint64_t, ChunkRef> Refs;
  std::vector<std::uint64_t> DeadList;
  std::uint64_t Revived = 0;
  std::uint64_t Collected = 0;
};

} // namespace padre

#endif // PADRE_CORE_REFTRACKER_H
