//===----------------------------------------------------------------------===//
///
/// \file
/// Reduction pipeline implementation.
///
//===----------------------------------------------------------------------===//

#include "core/ReductionPipeline.h"

#include "backend/AutoSplitter.h"
#include "compress/Block.h"

#include <cassert>

using namespace padre;

ReductionPipeline::~ReductionPipeline() = default;

ReductionPipeline::ReductionPipeline(const Platform &Platform,
                                     const PipelineConfig &Config)
    : Plat(Platform), Config(Config), Pool(Platform.Model.Cpu.Threads),
      Ssd(Platform.Model, Ledger) {
  assert(isValidCostModel(Platform.Model) && "Invalid cost model");

  switch (Config.Chunking) {
  case ChunkingMode::Fixed:
    StreamChunker = std::make_unique<FixedChunker>(Config.ChunkSize);
    break;
  case ChunkingMode::Rabin: {
    RabinConfig Cdc;
    Cdc.AvgSize = Config.ChunkSize;
    Cdc.MinSize = Config.ChunkSize / 2;
    Cdc.MaxSize = std::min<std::size_t>(Config.ChunkSize * 4, 65536);
    StreamChunker = std::make_unique<RabinChunker>(Cdc);
    break;
  }
  case ChunkingMode::FastCdc: {
    FastCdcConfig Cdc;
    Cdc.AvgSize = Config.ChunkSize;
    Cdc.MinSize = Config.ChunkSize / 2;
    Cdc.MaxSize = std::min<std::size_t>(Config.ChunkSize * 4, 65536);
    StreamChunker = std::make_unique<FastCdcChunker>(Cdc);
    break;
  }
  }

  // The backend framework's device-capable split modes need the
  // primary GPU even when the classic Mode is CpuOnly.
  const bool BackendWantsGpu =
      Config.Backend.Enabled && Config.CompressEnabled &&
      Config.Backend.Split != backend::SplitMode::CpuOnly;
  const bool WantsGpu = modeOffloadsDedup(Config.Mode) ||
                        modeOffloadsCompression(Config.Mode) ||
                        BackendWantsGpu;
  assert((!WantsGpu || Platform.Model.Gpu.Present) &&
         "GPU mode selected on a GPU-less platform");
  if (Platform.Model.Gpu.Present && WantsGpu) {
    Device = std::make_unique<GpuDevice>(Platform.Model, Ledger);
    Device->setMixedMode(Config.Mode == PipelineMode::GpuBoth);
  }

  if (Config.Ftl)
    Ssd.enableFtl(*Config.Ftl);

  const obs::ObsSinks Obs{Config.Trace, Config.Metrics};
  Ssd.setObs(Obs);
  if (Device)
    Device->setObs(Obs);
  if (Config.Faults) {
    Ssd.setFaultInjector(Config.Faults);
    if (Device)
      Device->setFaultInjector(Config.Faults);
    Config.Faults->setObs(Config.Metrics);
  }

  DedupEngineConfig DedupConfig = Config.Dedup;
  DedupConfig.GpuOffload = modeOffloadsDedup(Config.Mode);
  if (Config.DedupEnabled)
    Dedup = std::make_unique<DedupEngine>(Platform.Model, Ledger, Pool,
                                          Ssd, Device.get(), DedupConfig,
                                          Obs);

  CompressEngineConfig CompressConfig = Config.Compress;
  CompressConfig.Backend = modeOffloadsCompression(Config.Mode)
                               ? CompressBackend::GpuLane
                               : CompressBackend::Cpu;
  if (Config.CompressEnabled)
    Compress = std::make_unique<CompressEngine>(
        Platform.Model, Ledger, Pool, Device.get(), CompressConfig, Obs);

  if (Config.ReadCacheBytes != 0) {
    Cache = std::make_unique<ChunkCache>(Config.ReadCacheBytes);
    Cache->setObs(Config.Metrics);
  }

  Sched = std::make_unique<BatchScheduler>(
      Ledger, Platform.Model.Cpu.Threads,
      std::max<std::size_t>(1, Config.PipelineDepth), Device.get(), Ssd,
      Config.Trace);

  if (Config.Backend.Enabled && Config.CompressEnabled) {
    backend::AutoSplitter::Setup Setup{Platform.Model, Ledger,
                                       Pool,           *Sched,
                                       Device.get(),   Config.Compress,
                                       Obs,            Config.Faults,
                                       Config.Backend};
    Splitter = std::make_unique<backend::AutoSplitter>(Setup);
  }

  if (Config.Metrics) {
    obs::MetricsRegistry &M = *Config.Metrics;
    ChunkLatencyHist = &M.histogram(
        "padre_chunk_latency_us",
        "Per-chunk modelled service latency (microseconds)",
        1.0, 2.0, 24);
    BatchChunksHist = &M.histogram(
        "padre_batch_chunks", "Chunks per pipeline batch (occupancy)",
        1.0, 2.0, 16);
    ChunksTotal = &M.counter("padre_chunks_total",
                             "Logical chunks ingested by the pipeline");
    LogicalBytesTotal =
        &M.counter("padre_logical_bytes_total", "Logical bytes ingested");
    UniqueTotal = &M.counter("padre_unique_chunks_total",
                             "Chunks found unique (stored)");
    DupBufferTotal = &M.counter("padre_dup_chunks_total{tier=\"buffer\"}",
                                "Duplicate chunks by resolving tier");
    DupTreeTotal = &M.counter("padre_dup_chunks_total{tier=\"tree\"}",
                              "Duplicate chunks by resolving tier");
    DupGpuTotal = &M.counter("padre_dup_chunks_total{tier=\"gpu\"}",
                             "Duplicate chunks by resolving tier");
    StoredBytesTotal = &M.counter("padre_stored_bytes_total",
                                  "Bytes destaged after reduction");
    VerifyMismatchTotal =
        &M.counter("padre_verify_mismatch_total",
                   "Digest matches demoted to unique by verify-on-dedup");
    DecodeFailTotal =
        &M.counter("padre_read_decode_fail_total",
                   "Chunk reads that failed to decode (corruption)");
    ScrubRepairedTotal =
        &M.counter("padre_scrub_repair_total{outcome=\"repaired\"}",
                   "Scrubbed chunks repaired from a verified copy");
    ScrubLostTotal =
        &M.counter("padre_scrub_repair_total{outcome=\"lost\"}",
                   "Scrubbed chunks with no trusted repair source");
  }
}

fault::Status ReductionPipeline::write(ByteSpan Stream,
                                       std::vector<ChunkWriteInfo> *InfoOut) {
  std::vector<ChunkView> Chunks;
  StreamChunker->split(Stream, LogicalBytes, Chunks);
  fault::Status First;
  for (std::size_t Begin = 0; Begin < Chunks.size();
       Begin += Config.BatchChunks) {
    const std::size_t End =
        std::min(Chunks.size(), Begin + Config.BatchChunks);
    const fault::Status St =
        processBatch(std::span<const ChunkView>(Chunks.data() + Begin,
                                                End - Begin),
                     InfoOut, /*Raw=*/false);
    if (!St.ok() && First.ok())
      First = St;
  }
  return First;
}

fault::Status
ReductionPipeline::writeV(std::span<const ByteSpan> Streams,
                          std::vector<ChunkWriteInfo> *InfoOut) {
  std::vector<ChunkView> Chunks;
  std::uint64_t Offset = LogicalBytes;
  for (const ByteSpan Stream : Streams) {
    StreamChunker->split(Stream, Offset, Chunks);
    Offset += Stream.size();
  }
  fault::Status First;
  for (std::size_t Begin = 0; Begin < Chunks.size();
       Begin += Config.BatchChunks) {
    const std::size_t End =
        std::min(Chunks.size(), Begin + Config.BatchChunks);
    const fault::Status St =
        processBatch(std::span<const ChunkView>(Chunks.data() + Begin,
                                                End - Begin),
                     InfoOut, /*Raw=*/false);
    if (!St.ok() && First.ok())
      First = St;
  }
  return First;
}

fault::Status
ReductionPipeline::writeRaw(ByteSpan Stream,
                            std::vector<ChunkWriteInfo> *InfoOut) {
  std::vector<ChunkView> Chunks;
  StreamChunker->split(Stream, LogicalBytes, Chunks);
  fault::Status First;
  for (std::size_t Begin = 0; Begin < Chunks.size();
       Begin += Config.BatchChunks) {
    const std::size_t End =
        std::min(Chunks.size(), Begin + Config.BatchChunks);
    const fault::Status St =
        processBatch(std::span<const ChunkView>(Chunks.data() + Begin,
                                                End - Begin),
                     InfoOut, /*Raw=*/true);
    if (!St.ok() && First.ok())
      First = St;
  }
  return First;
}

fault::Status
ReductionPipeline::processBatch(std::span<const ChunkView> Chunks,
                                std::vector<ChunkWriteInfo> *InfoOut,
                                bool Raw) {
  const std::size_t Count = Chunks.size();
  if (BatchChunksHist)
    BatchChunksHist->observe(static_cast<double>(Count));
  // Report-counter snapshots: the batch deltas feed the metric
  // counters at the end of the function.
  const std::uint64_t PrevUnique = UniqueChunks;
  const std::uint64_t PrevDupBuffer = DupFromBuffer;
  const std::uint64_t PrevDupTree = DupFromTree;
  const std::uint64_t PrevDupGpu = DupFromGpu;
  const std::uint64_t PrevMismatches = VerifyMismatches;
  const std::uint64_t PrevStored = StoredBytes;
  const std::uint64_t PrevLogicalBytes = LogicalBytes;

  // Admit the batch into the scheduler's in-flight window. Stages
  // still execute serially on the host (bit-exact results at every
  // depth); the brackets capture what each stage charges and replay it
  // onto the dependency-aware timeline.
  Sched->beginBatch();
  Sched->beginStage(BatchScheduler::Stage::Dedup);

  // Request-path fixed costs and endurance intent.
  {
    const obs::StageSpan Stage(Config.Trace, Ledger, "chunk");
    double OverheadMicros = 0.0;
    std::uint64_t BatchBytes = 0;
    // CDC scans every byte through a rolling hash; fixed chunking is a
    // pointer computation (the 40x factor is the gear-hash cost).
    const double ChunkingPerByteNs =
        Config.Chunking == ChunkingMode::Fixed
            ? Plat.Model.Cpu.ChunkingPerByteNs
            : Plat.Model.Cpu.ChunkingPerByteNs * 40.0;
    for (const ChunkView &Chunk : Chunks) {
      OverheadMicros += Plat.Model.Cpu.RequestOverheadUs +
                        ChunkingPerByteNs * 1e-3 *
                            static_cast<double>(Chunk.Data.size());
      BatchBytes += Chunk.Data.size();
    }
    Ledger.chargeMicros(Resource::CpuPool, OverheadMicros);
    if (!InternalWrites)
      Ssd.noteHostWrite(BatchBytes);
  }

  // Stage 1: deduplication (Fig. 1 upper half). Batch-scoped scratch
  // lives in the arena — reclaimed (and poisoned) wholesale here, so a
  // steady-state batch makes no heap calls for these arrays.
  BatchArena.reset();
  std::span<std::uint64_t> NewLocations =
      BatchArena.allocateSpan<std::uint64_t>(Count);
  for (std::size_t I = 0; I < Count; ++I)
    NewLocations[I] = NextLocation + I;

  std::vector<DedupItem> Items;
  fault::Status BatchStatus;
  {
    const obs::StageSpan Stage(Config.Trace, Ledger, "dedup");
    if (Dedup && !Raw) {
      BatchStatus = Dedup->processBatch(Chunks, NewLocations, Items);
    } else {
      // Dedup disabled (compression-only benchmarks) or a raw pass-
      // through write: every chunk is treated as unique. Raw writes
      // still fingerprint (the background reducer needs the digests).
      Items.resize(Count);
      for (std::size_t I = 0; I < Count; ++I) {
        Items[I].Outcome = LookupOutcome::Unique;
        Items[I].Location = NewLocations[I];
        if (Raw) {
          Items[I].Fp = Fingerprint::ofData(Chunks[I].Data);
          Ledger.chargeMicros(Resource::CpuPool,
                              Plat.Model.cpuHashUs(Chunks[I].Data.size()));
          Items[I].LatencyUs =
              Plat.Model.cpuHashUs(Chunks[I].Data.size());
        }
      }
    }
  }
  NextLocation += Count;

  // Verify-on-dedup: byte-compare every digest match before sharing
  // the chunk; a mismatch (collision or latent corruption) is demoted
  // to unique. A duplicate of a chunk from *this* batch compares
  // against the in-flight source (it has not been destaged yet, so
  // only a memcmp is charged); older chunks are read back from the
  // store.
  if (Config.VerifyDuplicates) {
    const obs::StageSpan Stage(Config.Trace, Ledger, "verify");
    const std::uint64_t BatchBase = NextLocation - Count;
    for (std::size_t I = 0; I < Count; ++I) {
      if (Items[I].Outcome == LookupOutcome::Unique)
        continue;
      bool Matches;
      if (Items[I].Location >= BatchBase) {
        const std::size_t Source =
            static_cast<std::size_t>(Items[I].Location - BatchBase);
        assert(Source < I && "Duplicate precedes its source");
        Ledger.chargeMicros(Resource::CpuPool,
                            Plat.Model.Cpu.VerifyPerByteNs * 1e-3 *
                                static_cast<double>(Chunks[I].Data.size()));
        Matches = Chunks[Source].Data.size() == Chunks[I].Data.size() &&
                  std::equal(Chunks[Source].Data.begin(),
                             Chunks[Source].Data.end(),
                             Chunks[I].Data.begin());
      } else {
        Ssd.readRandom4K(1);
        // Decompression is only charged when the stored block actually
        // is compressed — a raw-stored block (incompressible data, or
        // compression disabled) costs just the byte compare.
        double PerByteNs = Plat.Model.Cpu.VerifyPerByteNs;
        if (const auto Encoded = Store.encodedBlock(Items[I].Location);
            Encoded && Encoded->size() > 2 &&
            static_cast<BlockMethod>((*Encoded)[2]) != BlockMethod::Raw)
          PerByteNs += Plat.Model.Cpu.DecompressPerByteNs;
        Ledger.chargeMicros(Resource::CpuPool,
                            PerByteNs * 1e-3 *
                                static_cast<double>(Chunks[I].Data.size()));
        const auto Stored = Store.readChunk(Items[I].Location);
        Matches = Stored && Stored->size() == Chunks[I].Data.size() &&
                  std::equal(Stored->begin(), Stored->end(),
                             Chunks[I].Data.begin());
      }
      if (Matches)
        continue;
      ++VerifyMismatches;
      Items[I].Outcome = LookupOutcome::Unique;
      Items[I].Location = NewLocations[I];
    }
  }

  Sched->endStage(BatchScheduler::Stage::Dedup);

  // Partition into unique chunks (to compress + destage) and
  // duplicates (recipe-only). Capacity Count covers the all-unique
  // worst case; UniqueCount tracks the live prefix.
  std::span<ChunkView> UniqueViewsStorage =
      BatchArena.allocateSpan<ChunkView>(Count);
  std::span<std::size_t> UniqueIndices =
      BatchArena.allocateSpan<std::size_t>(Count);
  std::size_t UniqueCount = 0;
  for (std::size_t I = 0; I < Count; ++I) {
    Recipe.ChunkLocations.push_back(Items[I].Location);
    Recipe.ChunkSizes.push_back(
        static_cast<std::uint32_t>(Chunks[I].Data.size()));
    if (InfoOut)
      InfoOut->push_back(ChunkWriteInfo{
          Items[I].Location, Items[I].Fp, Items[I].Outcome,
          static_cast<std::uint32_t>(Chunks[I].Data.size())});
    ++LogicalChunks;
    LogicalBytes += Chunks[I].Data.size();
    switch (Items[I].Outcome) {
    case LookupOutcome::Unique:
      ++UniqueChunks;
      UniqueBytes += Chunks[I].Data.size();
      UniqueViewsStorage[UniqueCount] = Chunks[I];
      UniqueIndices[UniqueCount] = I;
      ++UniqueCount;
      break;
    case LookupOutcome::DupBuffer:
      ++DupChunks;
      ++DupFromBuffer;
      break;
    case LookupOutcome::DupTree:
      ++DupChunks;
      ++DupFromTree;
      break;
    case LookupOutcome::DupGpu:
      ++DupChunks;
      ++DupFromGpu;
      break;
    }
  }

  const std::span<const ChunkView> UniqueViews =
      UniqueViewsStorage.first(UniqueCount);

  // Stage 2: compression of unique chunks (Fig. 1 lower half). With
  // the backend framework enabled the splitter partitions the batch
  // across backends and replays its own per-slice timeline; otherwise
  // the single engine runs and the scheduler replays the whole stage.
  std::vector<CompressedChunk> Compressed;
  Sched->beginStage(BatchScheduler::Stage::Compress);
  bool SlicedReplay = false;
  {
    const obs::StageSpan Stage(Config.Trace, Ledger, "compress");
    if (Splitter && !Raw) {
      Splitter->runCompressStage(UniqueViews, Compressed);
      SlicedReplay = true;
    } else if (Compress && !Raw) {
      Compress->compressBatch(
          std::span<const ChunkView>(UniqueViews.data(),
                                     UniqueViews.size()),
          Compressed);
    } else {
      Compressed.resize(UniqueViews.size());
      for (std::size_t I = 0; I < UniqueViews.size(); ++I) {
        const ByteSpan Data = UniqueViews[I].Data;
        Compressed[I].StoredRaw = true;
        Compressed[I].Block = encodeBlock(
            BlockMethod::Raw, static_cast<std::uint32_t>(Data.size()),
            Data);
      }
    }
  }
  if (!SlicedReplay)
    Sched->endStage(BatchScheduler::Stage::Compress);

  // Stage 3: destage — one coalesced sequential write per batch. With
  // the FTL enabled the same stream also carries the per-chunk extent
  // layout so the device can track each chunk's pages.
  std::uint64_t DestageBytes = 0;
  std::vector<SsdModel::ChunkExtent> DestageExtents;
  if (Ssd.ftlEnabled())
    DestageExtents.reserve(UniqueViews.size());
  Sched->beginStage(BatchScheduler::Stage::Destage);
  {
    const obs::StageSpan Stage(Config.Trace, Ledger, "destage");
    for (std::size_t I = 0; I < UniqueViews.size(); ++I) {
      const std::uint64_t Location = Items[UniqueIndices[I]].Location;
      DestageBytes += Compressed[I].Block.size();
      StoredBytes += Compressed[I].Block.size();
      if (Ssd.ftlEnabled())
        DestageExtents.push_back({Location, Compressed[I].Block.size()});
      // Injected payload corruption: flip one bit in the encoded block
      // on its way to the store. The block's CRC no longer matches, so
      // the read path (or scrub) reports ChunkCorrupt.
      if (Config.Faults) {
        if (const auto Fault =
                Config.Faults->sample(fault::FaultSite::Destage)) {
          ByteVector &Block = Compressed[I].Block;
          if (Block.size() > BlockHeaderSize) {
            const std::size_t Offset =
                BlockHeaderSize +
                static_cast<std::size_t>(
                    Fault->RandomBits % (Block.size() - BlockHeaderSize));
            Block[Offset] ^= static_cast<std::uint8_t>(
                1u << ((Fault->RandomBits >> 32) & 7u));
          }
        }
      }
      Store.put(Location, std::move(Compressed[I].Block));
    }
    const fault::Status DestageStatus =
        Ssd.ftlEnabled()
            ? Ssd.writeDestage(DestageExtents, DestageBytes)
            : Ssd.writeSequential(DestageBytes);
    if (!DestageStatus.ok() && BatchStatus.ok())
      BatchStatus = DestageStatus;
  }
  Sched->endStage(BatchScheduler::Stage::Destage);
  Sched->endBatch();

  // Per-chunk modelled service latency: request path + dedup stage +
  // (uniques) compression stage + an equal share of the coalesced
  // destage write.
  const double DestageShareUs =
      UniqueViews.empty()
          ? 0.0
          : Plat.Model.ssdSeqWriteUs(DestageBytes) /
                static_cast<double>(UniqueViews.size());
  std::span<double> CompressLatency =
      BatchArena.allocateFilled<double>(Count, 0.0);
  for (std::size_t I = 0; I < UniqueViews.size(); ++I)
    CompressLatency[UniqueIndices[I]] =
        Compressed[I].LatencyUs + DestageShareUs;
  for (std::size_t I = 0; I < Count; ++I) {
    const double RequestUs =
        Plat.Model.Cpu.RequestOverheadUs +
        Plat.Model.Cpu.ChunkingPerByteNs * 1e-3 *
            static_cast<double>(Chunks[I].Data.size());
    const double TotalUs =
        RequestUs + Items[I].LatencyUs + CompressLatency[I];
    LatencyHist.add(TotalUs);
    if (ChunkLatencyHist)
      ChunkLatencyHist->observe(TotalUs);
  }

  if (ChunksTotal) {
    ChunksTotal->add(Count);
    LogicalBytesTotal->add(LogicalBytes - PrevLogicalBytes);
    UniqueTotal->add(UniqueChunks - PrevUnique);
    DupBufferTotal->add(DupFromBuffer - PrevDupBuffer);
    DupTreeTotal->add(DupFromTree - PrevDupTree);
    DupGpuTotal->add(DupFromGpu - PrevDupGpu);
    StoredBytesTotal->add(StoredBytes - PrevStored);
    VerifyMismatchTotal->add(VerifyMismatches - PrevMismatches);
  }
  return BatchStatus;
}

fault::Status ReductionPipeline::finish() {
  const obs::StageSpan Stage(Config.Trace, Ledger, "drain");
  if (!Dedup)
    return {};
  // The end-of-run bin-buffer flush drains after every queued destage
  // on the timeline, so the window empties cleanly even when the last
  // batches ended in typed errors.
  Sched->beginStage(BatchScheduler::Stage::Drain);
  const fault::Status St = Dedup->finish();
  Sched->endStage(BatchScheduler::Stage::Drain);
  return St;
}

fault::Status ReductionPipeline::journalWrite(std::uint64_t Bytes,
                                              const char *SpanName) {
  const obs::StageSpan Stage(Config.Trace, Ledger, SpanName);
  // Outside any stage bracket the op log is disarmed, so the charge
  // reaches the timeline only through noteCommit — which pins it after
  // the covered batch's destage (write-ahead ordering).
  const double BeforeUs = Ledger.busyMicros(Resource::Ssd);
  const fault::Status St = Ssd.writeSequential(Bytes);
  Sched->noteCommit(Ledger.busyMicros(Resource::Ssd) - BeforeUs, SpanName);
  return St;
}

std::optional<ByteVector> ReductionPipeline::readBack() {
  const obs::StageSpan Stage(Config.Trace, Ledger, "read");
  // Charge the read path: one random SSD read per referenced chunk and
  // CPU decompression per logical byte.
  Ssd.readRandom4K(Recipe.ChunkLocations.size());
  Ledger.chargeMicros(Resource::CpuPool,
                      Plat.Model.Cpu.DecompressPerByteNs * 1e-3 *
                          static_cast<double>(Recipe.logicalBytes()));
  return Store.readStream(Recipe);
}

std::optional<ByteVector>
ReductionPipeline::readChunk(std::uint64_t Location, bool BypassCache) {
  auto Result = readChunkEx(Location, BypassCache);
  if (!Result.ok())
    return std::nullopt;
  return std::move(Result.value());
}

fault::Expected<ByteVector>
ReductionPipeline::readChunkEx(std::uint64_t Location, bool BypassCache) {
  const obs::StageSpan Stage(Config.Trace, Ledger, "read");
  if (Cache && !BypassCache) {
    if (auto Hit = Cache->get(Location)) {
      Ledger.chargeMicros(Resource::CpuPool,
                          Plat.Model.Cpu.CacheCopyPerByteNs * 1e-3 *
                              static_cast<double>(Hit->size()));
      return std::move(*Hit);
    }
  }
  const fault::Status IoStatus = Ssd.readRandom4K(1);
  if (!IoStatus.ok())
    return IoStatus;
  const auto Chunk = Store.readChunk(Location);
  if (!Chunk) {
    // Corrupt (or missing) payload: drop any stale cached copy — a
    // later cached read must not mask corruption the flash path
    // reports, regardless of whether *this* read bypassed the cache
    // (scrub does, and scrub is exactly when corruption surfaces).
    if (Cache)
      Cache->invalidate(Location);
    if (DecodeFailTotal)
      DecodeFailTotal->add(1);
    return fault::Status::error(Store.contains(Location)
                                    ? fault::ErrorCode::ChunkCorrupt
                                    : fault::ErrorCode::ChunkMissing,
                                Location);
  }
  Ledger.chargeMicros(Resource::CpuPool,
                      Plat.Model.Cpu.DecompressPerByteNs * 1e-3 *
                          static_cast<double>(Chunk->size()));
  if (Cache && !BypassCache)
    Cache->put(Location, *Chunk);
  return *Chunk;
}

ScrubOutcome ReductionPipeline::scrubChunk(std::uint64_t Location,
                                           const Fingerprint &Fp) {
  // Snapshot any cached decoded copy *before* the flash read: a
  // corrupt flash read invalidates cached copies, and the snapshot is
  // the only repair source this pipeline has.
  std::optional<ByteVector> Candidate;
  if (Cache)
    Candidate = Cache->get(Location);

  auto Read = readChunkEx(Location, /*BypassCache=*/true);
  if (Read.ok()) {
    Ledger.chargeMicros(Resource::CpuPool,
                        Plat.Model.cpuHashUs(Read->size()));
    if (Fingerprint::ofData(ByteSpan(Read->data(), Read->size())) == Fp)
      return ScrubOutcome::Healthy;
    // A block that decodes but hashes wrong is corruption the CRC
    // missed (or a collision-shared chunk); fall through to repair.
    if (Cache)
      Cache->invalidate(Location);
  }

  // Verify the candidate against the tracker's fingerprint before
  // trusting it — an unverified copy could launder corruption back in.
  if (Candidate) {
    Ledger.chargeMicros(Resource::CpuPool,
                        Plat.Model.cpuHashUs(Candidate->size()));
    if (Fingerprint::ofData(
            ByteSpan(Candidate->data(), Candidate->size())) == Fp) {
      // Re-encode conservatively as a raw block and rewrite in place.
      // The rewrite is an in-place page update, not part of a destage
      // stream, so it is charged as a random write.
      Ledger.chargeMicros(Resource::CpuPool,
                          Plat.Model.Cpu.CacheCopyPerByteNs * 1e-3 *
                              static_cast<double>(Candidate->size()));
      if (Ssd.rewriteChunk(Location,
                           BlockHeaderSize + Candidate->size())
              .ok()) {
        ByteVector Block = encodeBlock(
            BlockMethod::Raw,
            static_cast<std::uint32_t>(Candidate->size()),
            ByteSpan(Candidate->data(), Candidate->size()));
        Store.erase(Location);
        Store.put(Location, std::move(Block));
        if (Cache)
          Cache->put(Location, *Candidate);
        if (ScrubRepairedTotal)
          ScrubRepairedTotal->add(1);
        return ScrubOutcome::Repaired;
      }
    }
  }
  if (ScrubLostTotal)
    ScrubLostTotal->add(1);
  return ScrubOutcome::Lost;
}

bool ReductionPipeline::dropIndexEntry(const Fingerprint &Fp) {
  if (!Dedup)
    return false;
  return Dedup->dropEntry(Fp);
}

std::uint64_t ReductionPipeline::eraseChunk(std::uint64_t Location) {
  if (Cache)
    Cache->invalidate(Location);
  Ssd.invalidateChunk(Location);
  return Store.erase(Location);
}

bool ReductionPipeline::restoreChunk(std::uint64_t Location,
                                     ByteVector Block,
                                     const Fingerprint &Fp) {
  if (Store.contains(Location))
    return false;
  // Recovery re-programs the chunk's flash pages; register the extent
  // so later GC/TRIM invalidation finds it.
  if (Ssd.ftlEnabled())
    (void)Ssd.rewriteChunk(Location, Block.size());
  StoredBytes += Block.size();
  Store.put(Location, std::move(Block));
  NextLocation = std::max(NextLocation, Location + 1);
  if (Dedup)
    Dedup->restoreEntry(Fp, Location);
  return true;
}

bool ReductionPipeline::verifyAgainst(ByteSpan Original) {
  const auto Stream = readBack();
  if (!Stream || Stream->size() != Original.size())
    return false;
  return std::equal(Stream->begin(), Stream->end(), Original.begin());
}

void ReductionPipeline::resetMeasurement() {
  Ledger.reset();
  // The timeline restarts alongside the busy clocks: the measured
  // phase's schedule must not inherit the warmup's queue positions.
  Sched->reset();
  // Extra backend devices keep their own staging pipelines; their
  // in-flight slots must drain with the warmup too.
  if (Splitter)
    Splitter->resetTimelineState();
  // The lane clocks restart at zero; recorded spans would otherwise
  // overlap the post-warmup ones at the same positions.
  if (Config.Trace)
    Config.Trace->clear();
  LogicalBytes = LogicalChunks = 0;
  UniqueChunks = UniqueBytes = 0;
  DupChunks = DupFromBuffer = DupFromTree = DupFromGpu = 0;
  VerifyMismatches = 0;
  StoredBytes = 0;
  RawFallbackBase = Splitter ? Splitter->rawFallbacks()
                             : (Compress ? Compress->rawFallbacks() : 0);
  LatencyHist = Histogram(20000.0, 2000);
}

PipelineReport ReductionPipeline::report() const {
  PipelineReport Report;
  Report.LogicalBytes = LogicalBytes;
  Report.LogicalChunks = LogicalChunks;
  Report.UniqueChunks = UniqueChunks;
  Report.DupChunks = DupChunks;
  Report.DupFromBuffer = DupFromBuffer;
  Report.DupFromTree = DupFromTree;
  Report.DupFromGpu = DupFromGpu;
  Report.VerifyMismatches = VerifyMismatches;
  Report.DedupRatio =
      UniqueBytes == 0 ? 1.0
                       : static_cast<double>(LogicalBytes) /
                             static_cast<double>(UniqueBytes);
  Report.StoredBytes = StoredBytes;
  Report.RawFallbacks =
      (Splitter ? Splitter->rawFallbacks()
                : (Compress ? Compress->rawFallbacks() : 0)) -
      RawFallbackBase;
  Report.CompressRatio =
      StoredBytes == 0 ? 1.0
                       : static_cast<double>(UniqueBytes) /
                             static_cast<double>(StoredBytes);
  Report.ReductionRatio =
      StoredBytes == 0 ? 1.0
                       : static_cast<double>(LogicalBytes) /
                             static_cast<double>(StoredBytes);

  const unsigned Threads = Plat.Model.Cpu.Threads;
  const unsigned GpuDevices = gpuDeviceCount();
  Report.MakespanSec =
      Ledger.makespanSeconds(Threads, ComputeResources, GpuDevices);
  if (Report.MakespanSec > 0.0) {
    Report.ThroughputIops =
        static_cast<double>(LogicalChunks) / Report.MakespanSec;
    Report.ThroughputMBps = static_cast<double>(LogicalBytes) /
                            Report.MakespanSec / 1e6;
  }
  Report.Bottleneck =
      Ledger.bottleneck(Threads, ComputeResources, GpuDevices);
  Report.CpuBusySec = Ledger.busySeconds(Resource::CpuPool);
  Report.GpuBusySec = Ledger.busySeconds(Resource::Gpu);
  Report.PcieBusySec = Ledger.busySeconds(Resource::Pcie);
  Report.SsdBusySec = Ledger.busySeconds(Resource::Ssd);
  Report.KernelLaunches = Ledger.kernelLaunches();
  Report.OffloadFraction = Dedup ? Dedup->offloadFraction() : 0.0;
  Report.LatencyP50Us = LatencyHist.percentile(50.0);
  Report.LatencyP95Us = LatencyHist.percentile(95.0);
  Report.LatencyP99Us = LatencyHist.percentile(99.0);
  Report.SsdHostBytes = Ssd.hostBytesWritten();
  Report.SsdNandBytes = Ssd.nandBytesWritten();

  Report.PipelineDepth = static_cast<unsigned>(Sched->depth());
  Report.WallSec = Ledger.timelineWallMicros() * 1e-6;
  if (Report.WallSec > 0.0) {
    Report.WallThroughputIops =
        static_cast<double>(LogicalChunks) / Report.WallSec;
    Report.WallThroughputMBps =
        static_cast<double>(LogicalBytes) / Report.WallSec / 1e6;
  }
  const ScheduleOverlap Overlap = Sched->overlap();
  for (unsigned R = 0; R < ResourceCount; ++R) {
    Report.SchedBusySec[R] = Overlap.BusySec[R];
    Report.SchedHiddenSec[R] = Overlap.HiddenSec[R];
  }
  return Report;
}

unsigned ReductionPipeline::gpuDeviceCount() const {
  return Splitter ? std::max(1u, Splitter->deviceCount()) : 1;
}
