//===----------------------------------------------------------------------===//
///
/// \file
/// Dedup engine implementation.
///
//===----------------------------------------------------------------------===//

#include "core/DedupEngine.h"

#include <algorithm>
#include <array>
#include <cassert>

using namespace padre;

DedupEngine::DedupEngine(const CostModel &Model, ResourceLedger &Ledger,
                         ThreadPool &Pool, SsdModel &Ssd, GpuDevice *Device,
                         const DedupEngineConfig &Config,
                         const obs::ObsSinks &Obs)
    : Model(Model), Ledger(Ledger), Pool(Pool), Ssd(Ssd), Device(Device),
      Config(Config), Index(makeFingerprintIndex(Config.Index)),
      HashWidth(std::clamp(Model.Cpu.HashBatchWidth, 1u, Sha1Batch::MaxWidth)),
      Offload(Config.GpuOffload ? Config.OffloadInitial : 0.0) {
  assert(isValidCostModel(Model) && "Invalid cost model");
  if (Config.GpuOffload) {
    assert(Device && Device->present() &&
           "GPU offload requested without a GPU");
    GpuTable = std::make_unique<GpuBinTable>(*Device, Index->layout(),
                                             Config.GpuSlotsPerBin,
                                             Config.Index.Seed ^ 0x6B75);
  }
  if (Obs.Metrics) {
    HitDepthHist = &Obs.Metrics->histogram(
        "padre_bin_buffer_hit_depth",
        "Entries scanned newest-first before a bin-buffer hit",
        1.0, 2.0, 12);
    BinFlushes = &Obs.Metrics->counter(
        "padre_bin_flushes_total",
        "Bin-buffer drains (sequential SSD log writes)");
    HashWidthGauge = &Obs.Metrics->gauge(
        "padre_hash_batch_width",
        "Multi-buffer SHA-1 lanes per batched hash call (1 = serial)");
    HashWidthGauge->set(static_cast<double>(HashWidth));
    if (Config.Index.Concurrent)
      CasRetryCounter = &Obs.Metrics->counter(
          "padre_index_cas_retry_total",
          "Failed CAS attempts (slot claims and bin-lock acquisitions) "
          "in the concurrent index");
    if (Config.GpuOffload) {
      OffloadGauge = &Obs.Metrics->gauge(
          "padre_dedup_offload_fraction",
          "Adaptive fraction of each batch co-processed by the GPU");
      OffloadGauge->set(Offload);
      GpuFallbacks = &Obs.Metrics->counter(
          "padre_gpu_fallback_total{family=\"indexing\"}",
          "GPU sub-batches re-run on the CPU path after a device fault");
    }
  }
}

fault::Status DedupEngine::processBatch(
    std::span<const ChunkView> Chunks,
    std::span<const std::uint64_t> NewLocations,
    std::vector<DedupItem> &Items) {
  const std::size_t Count = Chunks.size();
  assert(NewLocations.size() == Count && "Batch arrays disagree");
  Items.assign(Count, DedupItem());
  if (Count == 0)
    return {};

  // All per-batch scratch comes from the arena: one reset reclaims the
  // previous batch's spans (poisoned), then every array below is a
  // pointer bump — zero heap traffic on the steady-state hot path.
  BatchArena.reset();

  // Select the GPU co-processing subset by error-diffusion so any
  // fraction spreads evenly through the batch.
  std::span<std::uint32_t> SelectedStorage =
      BatchArena.allocateSpan<std::uint32_t>(Count);
  std::size_t SelectedCount = 0;
  std::span<std::uint8_t> IsSelected =
      BatchArena.allocateFilled<std::uint8_t>(Count, 0);
  if (GpuTable && Offload > 0.0) {
    double Error = 0.0;
    for (std::size_t I = 0; I < Count; ++I) {
      Error += Offload;
      if (Error >= 1.0) {
        Error -= 1.0;
        SelectedStorage[SelectedCount++] = static_cast<std::uint32_t>(I);
        IsSelected[I] = 1;
      }
    }
  }
  const std::span<const std::uint32_t> Selected =
      SelectedStorage.first(SelectedCount);

  std::span<Fingerprint> Fingerprints =
      BatchArena.allocateFilled<Fingerprint>(Count, Fingerprint());
  std::span<std::uint8_t> KnownDuplicate =
      BatchArena.allocateFilled<std::uint8_t>(Count, 0);
  std::span<std::uint64_t> ResolvedLocations =
      BatchArena.allocateFilled<std::uint64_t>(Count, 0);
  std::span<double> LatencyUs =
      BatchArena.allocateFilled<double>(Count, 0.0);

  // GPU phase first: it produces fingerprints for the selected chunks
  // and resolves some duplicates before the CPU path runs (Fig. 1:
  // "GPU indexing is performed if the GPU is available, and CPU
  // indexing is performed if duplicate hashes are not found").
  if (!Selected.empty())
    offloadToGpu(Chunks, Selected, IsSelected, Fingerprints,
                 KnownDuplicate, ResolvedLocations, LatencyUs);

  // CPU hashing for everything the GPU did not take — chunk-parallel
  // across slices, multi-buffer within each slice: lanes fill with
  // consecutive unselected chunks and hash as one interleaved group
  // (Sha1Batch). Every lane in a group waits for the group's longest
  // chunk — the SIMD lockstep the cost model charges via
  // cpuHashBatchUs. At width 1 the group is a single chunk and both
  // the digests and the charged costs are bit-identical to the old
  // serial loop.
  const unsigned Width = HashWidth;
  Pool.parallelForSlices(
      0, Count,
      [&](std::size_t Begin, std::size_t End, unsigned) {
        double Micros = 0.0;
        std::array<std::uint32_t, Sha1Batch::MaxWidth> LaneItem;
        std::array<ByteSpan, Sha1Batch::MaxWidth> LaneData;
        std::array<Sha1::Digest, Sha1Batch::MaxWidth> LaneDigest;
        unsigned Lanes = 0;
        const auto FlushGroup = [&] {
          if (Lanes == 0)
            return;
          Sha1Batch::digestGroup(
              std::span<const ByteSpan>(LaneData.data(), Lanes),
              std::span<Sha1::Digest>(LaneDigest.data(), Lanes));
          std::size_t MaxBytes = 0;
          for (unsigned L = 0; L < Lanes; ++L)
            MaxBytes = std::max(MaxBytes, LaneData[L].size());
          const double GroupUs = Model.cpuHashBatchUs(MaxBytes, Lanes);
          for (unsigned L = 0; L < Lanes; ++L) {
            Fingerprints[LaneItem[L]] = Fingerprint(LaneDigest[L]);
            LatencyUs[LaneItem[L]] += GroupUs;
          }
          Micros += GroupUs;
          Lanes = 0;
        };
        for (std::size_t I = Begin; I < End; ++I) {
          if (IsSelected[I])
            continue;
          LaneItem[Lanes] = static_cast<std::uint32_t>(I);
          LaneData[Lanes] = Chunks[I].Data;
          if (++Lanes == Width)
            FlushGroup();
        }
        FlushGroup();
        Ledger.chargeMicros(Resource::CpuPool, Micros);
      });

  // CPU bin-parallel indexing.
  std::span<LookupResult> Results =
      BatchArena.allocateFilled<LookupResult>(Count, LookupResult());
  std::vector<FlushEvent> Flushes;
  Index->processBatch(Fingerprints, NewLocations, KnownDuplicate, Pool,
                      Results, Flushes);

  // Charge the CPU index costs from the functional outcome: buffer
  // hits are cheap (temporal locality, §3.3), everything else pays a
  // full buffer-miss + tree-probe path; uniques add maintenance.
  std::size_t BufferHits = 0;
  std::size_t FullProbes = 0;
  std::size_t Uniques = 0;
  for (std::size_t I = 0; I < Count; ++I) {
    if (KnownDuplicate[I])
      continue;
    if (Results[I].Outcome == LookupOutcome::DupBuffer)
      ++BufferHits;
    else
      ++FullProbes;
    if (Results[I].Outcome == LookupOutcome::Unique)
      ++Uniques;
  }
  const double IndexMicros =
      static_cast<double>(BufferHits) * Model.Cpu.IndexProbeBufferUs +
      static_cast<double>(FullProbes) * Model.Cpu.IndexProbeUs +
      static_cast<double>(Uniques) * Model.Cpu.IndexMaintainUs;
  Ledger.chargeMicros(Resource::CpuPool, IndexMicros);
  if (Config.SerialIndexing)
    Ledger.chargeMicros(Resource::IndexLock, IndexMicros);

  const fault::Status FlushStatus = handleFlushes(Flushes);

  for (std::size_t I = 0; I < Count; ++I) {
    if (HitDepthHist && Results[I].Outcome == LookupOutcome::DupBuffer)
      HitDepthHist->observe(static_cast<double>(Results[I].BufferDepth));
    Items[I].Fp = Fingerprints[I];
    Items[I].Outcome = Results[I].Outcome;
    Items[I].Location = Results[I].Outcome == LookupOutcome::DupGpu
                            ? ResolvedLocations[I]
                            : Results[I].Location;
    if (!KnownDuplicate[I])
      LatencyUs[I] +=
          Results[I].Outcome == LookupOutcome::DupBuffer
              ? Model.Cpu.IndexProbeBufferUs
              : Model.Cpu.IndexProbeUs;
    if (Results[I].Outcome == LookupOutcome::Unique)
      LatencyUs[I] += Model.Cpu.IndexMaintainUs;
    Items[I].LatencyUs = LatencyUs[I];
  }

  if (GpuTable)
    adaptOffload();
  publishCasRetries();
  return FlushStatus;
}

void DedupEngine::offloadToGpu(
    std::span<const ChunkView> Chunks,
    std::span<const std::uint32_t> Selected,
    std::span<std::uint8_t> IsSelected,
    std::span<Fingerprint> Fingerprints,
    std::span<std::uint8_t> KnownDuplicate,
    std::span<std::uint64_t> ResolvedLocations,
    std::span<double> LatencyUs) {
  assert(Device && GpuTable && "GPU offload without device state");
  const std::size_t SubBatch = Model.Gpu.DedupBatchChunks;

  for (std::size_t Begin = 0; Begin < Selected.size(); Begin += SubBatch) {
    const std::size_t End = std::min(Selected.size(), Begin + SubBatch);

    // One DMA per sub-batch: the chunk payloads go to the device.
    std::size_t Bytes = 0;
    double ExecMicros = 0.0;
    for (std::size_t I = Begin; I < End; ++I) {
      const std::size_t Size = Chunks[Selected[I]].Data.size();
      Bytes += Size;
      ExecMicros += Model.gpuHashUs(Size) + Model.Gpu.ProbePerEntryUs;
    }
    fault::Status DeviceOk = Device->transferToDevice(Bytes);

    // The kernel: SHA-1 per chunk, then a linear-scan probe of the
    // GPU-resident bin. Results are (slot, hit) pairs; location
    // metadata is resolved host-side afterwards.
    if (DeviceOk.ok())
      DeviceOk = Device->launchKernel(KernelFamily::Indexing, ExecMicros, [&] {
        for (std::size_t I = Begin; I < End; ++I) {
          const std::uint32_t Item = Selected[I];
          Fingerprints[Item] = Fingerprint::ofData(Chunks[Item].Data);
          const std::uint32_t Bin =
              Index->layout().binOf(Fingerprints[Item]);
          if (!GpuTable->coversBin(Bin))
            continue;
          const GpuProbeResult Probe = GpuTable->probe(Fingerprints[Item]);
          if (Probe.Hit) {
            KnownDuplicate[Item] = 1;
            ResolvedLocations[Item] =
                GpuTable->resolveLocation(Probe.SlotIndex);
          }
        }
      });

    // Digest + (slot, hit) pair back to the host.
    const std::size_t ResultBytes =
        (End - Begin) * (Fingerprint::Size + sizeof(std::uint32_t));
    if (DeviceOk.ok())
      DeviceOk = Device->transferFromDevice(ResultBytes);

    if (!DeviceOk.ok()) {
      // Degraded mode: hand the sub-batch back to the CPU hash+index
      // path. Any results the device produced are discarded (a DMA
      // that corrupted in flight cannot be trusted).
      for (std::size_t I = Begin; I < End; ++I) {
        const std::uint32_t Item = Selected[I];
        IsSelected[Item] = 0;
        KnownDuplicate[Item] = 0;
        ResolvedLocations[Item] = 0;
      }
      ++GpuFallbackCount;
      if (GpuFallbacks)
        GpuFallbacks->add(1);
      continue;
    }

    // Every chunk in the sub-batch waits for the whole round trip:
    // DMA in, launch, lockstep execution, DMA out.
    const double Penalty =
        Device->mixedMode() ? Model.Gpu.MixedKernelPenalty : 1.0;
    const double RoundTripUs = Model.pcieTransferUs(Bytes) +
                               (Model.Gpu.LaunchUs + ExecMicros) * Penalty +
                               Model.pcieTransferUs(ResultBytes);
    for (std::size_t I = Begin; I < End; ++I)
      LatencyUs[Selected[I]] += RoundTripUs;
  }
}

fault::Status DedupEngine::handleFlushes(std::vector<FlushEvent> &Flushes) {
  fault::Status First;
  if (BinFlushes)
    BinFlushes->add(Flushes.size());
  for (FlushEvent &Event : Flushes) {
    // "When the buffer is full, the hash is immediately flushed from
    // the buffer to the storage. This creates the appropriate
    // sequential writes for the SSD." (§3.3)
    const std::size_t LogBytes =
        Event.Locations.size() * Index->layout().cpuEntryBytes();
    const fault::Status LogStatus = Ssd.writeSequential(LogBytes);
    if (!LogStatus.ok() && First.ok())
      First = LogStatus;

    // "And then, GPU bin in GPU memory are updated accordingly."
    if (GpuTable && GpuTable->coversBin(Event.Bin)) {
      if (Device->transferToDevice(Event.Suffixes.size()).ok()) {
        GpuTable->applyFlush(Event.Bin,
                             ByteSpan(Event.Suffixes.data(),
                                      Event.Suffixes.size()),
                             Event.Locations);
      } else {
        // The GPU table just misses these entries; probes fall through
        // to the CPU index.
        ++GpuFallbackCount;
        if (GpuFallbacks)
          GpuFallbacks->add(1);
      }
    }
  }
  Flushes.clear();
  return First;
}

void DedupEngine::adaptOffload() {
  // "We decide to use GPU only when CPU utilization is full and there
  // is still some work to do for indexing" (§3.1(3)) — in ledger
  // terms: push offload up while the normalized CPU busy-time grows
  // faster than the GPU's, back off otherwise.
  const double CpuBusy = Ledger.busySeconds(Resource::CpuPool) /
                         static_cast<double>(Model.Cpu.Threads);
  const double GpuBusy = Ledger.busySeconds(Resource::Gpu);
  const double CpuDelta = CpuBusy - LastCpuBusy;
  const double GpuDelta = GpuBusy - LastGpuBusy;
  LastCpuBusy = CpuBusy;
  LastGpuBusy = GpuBusy;

  // Proportional step toward balance: the relative CPU/GPU imbalance
  // scales the adjustment, so the fraction converges tightly instead
  // of oscillating around the equilibrium.
  const double Total = CpuDelta + GpuDelta;
  if (Total > 0.0) {
    const double Imbalance = (CpuDelta - GpuDelta) / Total;
    const double Step =
        std::min(Config.OffloadStep * 4.0, std::abs(Imbalance) * 0.5);
    Offload *= Imbalance > 0.0 ? 1.0 + Step : 1.0 - Step;
  }
  Offload = std::min(Config.OffloadCeiling,
                     std::max(Config.OffloadFloor, Offload));
  if (OffloadGauge)
    OffloadGauge->set(Offload);
}

void DedupEngine::publishCasRetries() {
  if (!CasRetryCounter)
    return;
  const std::uint64_t Now = Index->casRetries();
  if (Now > LastCasRetries)
    CasRetryCounter->add(Now - LastCasRetries);
  LastCasRetries = Now;
}

fault::Status DedupEngine::finish() {
  std::vector<FlushEvent> Flushes;
  Index->flushAll(Flushes);
  const fault::Status Status = handleFlushes(Flushes);
  publishCasRetries();
  return Status;
}

fault::Status DedupEngine::restoreEntry(const Fingerprint &Fp,
                                        std::uint64_t Location) {
  Ledger.chargeMicros(Resource::CpuPool, Model.Cpu.IndexMaintainUs);
  std::vector<FlushEvent> Flushes;
  (void)Index->upsert(Fp, Location, Flushes);
  return handleFlushes(Flushes);
}

bool DedupEngine::dropEntry(const Fingerprint &Fp) {
  Ledger.chargeMicros(Resource::CpuPool, Model.Cpu.IndexMaintainUs);
  bool Removed = Index->remove(Fp);
  if (GpuTable)
    Removed |= GpuTable->invalidate(Fp);
  return Removed;
}
