//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel deduplication engine (§3.1): fingerprinting plus
/// bin-based indexing across the multi-core CPU, with the GPU as an
/// indexing co-processor.
///
/// CPU path per batch: parallel SHA-1 over the chunks ("there is no
/// data dependency between chunks … in the hashing phase"), then the
/// lock-free bin-parallel probe/insert of index/DedupIndex.h. Bin
/// drains become sequential SSD writes and GPU bin-table updates
/// (§3.3).
///
/// GPU co-processing (§3.1(3) "use GPU only when CPU utilization is
/// full and there is still some work to do for indexing"): an adaptive
/// controller offloads a fraction of each batch — those chunks are
/// DMA'd to the device in small latency-bounded sub-batches, hashed and
/// probed against the GPU bin table there, and only GPU *misses* fall
/// through to the CPU index path. The fraction seeks the CPU/GPU busy
/// balance, exactly the "offload only past CPU saturation" rule
/// expressed in ledger terms.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_DEDUPENGINE_H
#define PADRE_CORE_DEDUPENGINE_H

#include "chunk/Chunker.h"
#include "fault/Status.h"
#include "gpu/GpuDevice.h"
#include "hash/Sha1Batch.h"
#include "index/FingerprintIndex.h"
#include "index/GpuBinTable.h"
#include "obs/Obs.h"
#include "sim/CostModel.h"
#include "sim/ResourceLedger.h"
#include "ssd/SsdModel.h"
#include "util/Arena.h"
#include "util/ThreadPool.h"

#include <memory>
#include <span>
#include <vector>

namespace padre {

/// Per-chunk outcome of a dedup batch.
struct DedupItem {
  Fingerprint Fp;
  LookupOutcome Outcome = LookupOutcome::Unique;
  /// Stored location: the original's for duplicates, the fresh one for
  /// uniques.
  std::uint64_t Location = 0;
  /// Modelled service latency of this chunk's dedup stage in
  /// microseconds: hashing (or the full GPU sub-batch round trip it
  /// had to wait for), probing, and index maintenance.
  double LatencyUs = 0.0;
};

/// Engine configuration.
struct DedupEngineConfig {
  DedupIndexConfig Index;
  /// Enables GPU co-processing of hashing+indexing.
  bool GpuOffload = false;
  /// Adaptive offload fraction bounds.
  double OffloadFloor = 0.15;
  double OffloadCeiling = 1.0;
  double OffloadInitial = 0.35;
  double OffloadStep = 0.05;
  /// GPU bin-table slots per bin.
  std::size_t GpuSlotsPerBin = 128;
  /// Baseline policy (bench_baselines): index probes/maintenance pass
  /// through one global lock (P-Dedupe-style multicore dedup, §5 —
  /// hashing is parallel but indexing is not). The index work is
  /// charged to the CPU *and* to the capacity-one IndexLock resource.
  bool SerialIndexing = false;
};

/// The deduplication stage. Not thread-safe across calls; the pipeline
/// drives one batch at a time (the parallelism is inside the batch).
class DedupEngine {
public:
  /// \p Device may be null (or absent) when GpuOffload is false.
  /// \p Obs sinks are optional; defaults disable instrumentation.
  DedupEngine(const CostModel &Model, ResourceLedger &Ledger,
              ThreadPool &Pool, SsdModel &Ssd, GpuDevice *Device,
              const DedupEngineConfig &Config,
              const obs::ObsSinks &Obs = obs::ObsSinks());

  /// Deduplicates a batch. \p NewLocations[i] is the location chunk i
  /// will occupy if unique. Results land in \p Items (resized).
  /// GPU faults never fail the batch — a faulted sub-batch falls back
  /// to the CPU hash+index path — so a non-ok status only reports a
  /// bin-log SSD write that outlived its retry budget (the in-memory
  /// index stays consistent; the log entries are lost).
  fault::Status processBatch(std::span<const ChunkView> Chunks,
                             std::span<const std::uint64_t> NewLocations,
                             std::vector<DedupItem> &Items);

  /// End-of-stream: drains every bin buffer (SSD log write + GPU
  /// update included).
  fault::Status finish();

  /// Garbage collection: drops \p Fp from the CPU index and, if
  /// resident, the GPU bin table. Returns true if any entry existed.
  bool dropEntry(const Fingerprint &Fp);

  /// Restore path: inserts \p Fp -> \p Location if absent, applying
  /// any resulting bin drains (SSD log + GPU table update) as usual.
  fault::Status restoreEntry(const Fingerprint &Fp, std::uint64_t Location);

  /// GPU sub-batches re-run on the CPU path after a device fault.
  std::uint64_t gpuFallbackCount() const { return GpuFallbackCount; }

  /// Current adaptive offload fraction.
  double offloadFraction() const { return Offload; }

  const FingerprintIndex &index() const { return *Index; }
  const GpuBinTable *gpuTable() const { return GpuTable.get(); }

private:
  /// Runs the GPU hash+probe kernels over the selected chunk indices;
  /// fills KnownDuplicate/Locations for hits. A device fault in a
  /// sub-batch clears its chunks' IsSelected flags so the CPU path
  /// picks them up (degraded-mode fallback).
  void offloadToGpu(std::span<const ChunkView> Chunks,
                    std::span<const std::uint32_t> Selected,
                    std::span<std::uint8_t> IsSelected,
                    std::span<Fingerprint> Fingerprints,
                    std::span<std::uint8_t> KnownDuplicate,
                    std::span<std::uint64_t> ResolvedLocations,
                    std::span<double> LatencyUs);

  /// Applies flush events: sequential SSD log write + GPU bin update.
  /// Returns the first log-write failure; a faulted GPU-table DMA only
  /// skips that table update (subsequent GPU probes miss and fall
  /// through to the CPU index — correct, slower).
  fault::Status handleFlushes(std::vector<FlushEvent> &Flushes);

  /// Nudges the offload fraction toward CPU/GPU busy balance.
  void adaptOffload();

  /// Publishes the concurrent index's CAS-retry delta to the
  /// padre_index_cas_retry_total counter (no-op when disabled).
  void publishCasRetries();

  CostModel Model;
  ResourceLedger &Ledger;
  ThreadPool &Pool;
  SsdModel &Ssd;
  GpuDevice *Device;
  DedupEngineConfig Config;
  /// Concrete type picked by makeFingerprintIndex from
  /// Config.Index.Shards: the plain bin index, or the digest-prefix
  /// sharded composite the multi-tenant service uses.
  std::unique_ptr<FingerprintIndex> Index;
  std::unique_ptr<GpuBinTable> GpuTable;
  /// Per-batch scratch (fingerprints, GPU selection, lookup results,
  /// latency accumulators) lives here instead of the heap; reset at the
  /// top of every processBatch. Single-owner: only the batch-driving
  /// thread allocates (parallel slices read/write the spans in place).
  Arena BatchArena;
  /// Multi-buffer SHA-1 lanes per batched hash call, from
  /// Model.Cpu.HashBatchWidth clamped to [1, Sha1Batch::MaxWidth].
  /// Width 1 reproduces the serial hash path bit-for-bit (same digests,
  /// same per-chunk cost accumulation order).
  unsigned HashWidth = 1;
  double Offload;
  // Ledger snapshot at the last adaptation step.
  double LastCpuBusy = 0.0;
  double LastGpuBusy = 0.0;
  std::uint64_t GpuFallbackCount = 0;
  // Observability instruments (null = disabled), cached at construction.
  obs::LogHistogram *HitDepthHist = nullptr;
  obs::Gauge *OffloadGauge = nullptr;
  obs::Counter *BinFlushes = nullptr;
  obs::Counter *GpuFallbacks = nullptr;
  obs::Gauge *HashWidthGauge = nullptr;
  obs::Counter *CasRetryCounter = nullptr;
  /// Index->casRetries() at the last publish (the counter is a delta
  /// feed; the index keeps the cumulative truth).
  std::uint64_t LastCasRetries = 0;
};

} // namespace padre

#endif // PADRE_CORE_DEDUPENGINE_H
