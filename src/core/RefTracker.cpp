//===----------------------------------------------------------------------===//
///
/// \file
/// Chunk reference tracker implementation (logic moved verbatim from
/// the original single-volume version of core/Volume.cpp).
///
//===----------------------------------------------------------------------===//

#include "core/RefTracker.h"

#include <cassert>

using namespace padre;

void ChunkRefTracker::reference(const ChunkWriteInfo &Info) {
  ChunkRef &Ref = Refs[Info.Location];
  if (Ref.Refs == 0) {
    Ref.Fp = Info.Fp;
    if (Info.Outcome != LookupOutcome::Unique) {
      // A dedup hit on a fully-dereferenced chunk: still resident (GC
      // has not run), so it is revived rather than re-stored.
      ++Revived;
    }
  }
  assert(Ref.Fp == Info.Fp && "Location reused with a new digest");
  ++Ref.Refs;
}

void ChunkRefTracker::dereference(std::uint64_t Location) {
  const auto It = Refs.find(Location);
  assert(It != Refs.end() && It->second.Refs > 0 &&
         "Dereferencing an untracked chunk");
  if (--It->second.Refs == 0)
    DeadList.push_back(Location);
}

std::size_t ChunkRefTracker::collectGarbage(ReductionPipeline &Pipeline) {
  std::size_t CollectedNow = 0;
  for (std::uint64_t Location : DeadList) {
    const auto It = Refs.find(Location);
    // A location can appear twice (died, revived, died again); the
    // first pass already collected it.
    if (It == Refs.end())
      continue;
    if (It->second.Refs != 0)
      continue; // revived since it died
    Pipeline.dropIndexEntry(It->second.Fp);
    Pipeline.eraseChunk(Location);
    Refs.erase(It);
    ++CollectedNow;
  }
  DeadList.clear();
  Collected += CollectedNow;
  return CollectedNow;
}

std::uint32_t ChunkRefTracker::refCount(std::uint64_t Location) const {
  const auto It = Refs.find(Location);
  return It == Refs.end() ? 0 : It->second.Refs;
}

std::optional<Fingerprint>
ChunkRefTracker::fingerprintOf(std::uint64_t Location) const {
  const auto It = Refs.find(Location);
  if (It == Refs.end())
    return std::nullopt;
  return It->second.Fp;
}

std::uint64_t ChunkRefTracker::liveChunks() const {
  std::uint64_t Dead = 0;
  for (const auto &[Location, Ref] : Refs)
    Dead += Ref.Refs == 0;
  return Refs.size() - Dead;
}

std::uint64_t ChunkRefTracker::deadChunks() const {
  std::uint64_t Dead = 0;
  for (const auto &[Location, Ref] : Refs)
    Dead += Ref.Refs == 0;
  return Dead;
}

std::vector<ChunkRefTracker::Record> ChunkRefTracker::records() const {
  std::vector<Record> Records;
  Records.reserve(Refs.size());
  for (const auto &[Location, Ref] : Refs)
    Records.push_back(Record{Location, Ref.Refs, Ref.Fp});
  return Records;
}

void ChunkRefTracker::restore(const std::vector<Record> &Records) {
  Refs.clear();
  DeadList.clear();
  Revived = Collected = 0;
  for (const Record &R : Records) {
    Refs[R.Location] = ChunkRef{R.Refs, R.Fp};
    if (R.Refs == 0)
      DeadList.push_back(R.Location);
  }
}
