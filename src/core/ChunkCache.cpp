//===----------------------------------------------------------------------===//
///
/// \file
/// Chunk cache implementation.
///
//===----------------------------------------------------------------------===//

#include "core/ChunkCache.h"

#include <cassert>

using namespace padre;

ChunkCache::ChunkCache(std::size_t CapacityBytes)
    : CapacityBytes(CapacityBytes) {
  assert(CapacityBytes > 0 && "Zero-capacity cache");
}

void ChunkCache::setObs(obs::MetricsRegistry *Metrics) {
  if (!Metrics) {
    HitCounter = MissCounter = EvictionCounter = nullptr;
    BytesGauge = nullptr;
    return;
  }
  HitCounter = &Metrics->counter("padre_cache_hit_total",
                                 "Read-cache lookups served from DRAM");
  MissCounter = &Metrics->counter("padre_cache_miss_total",
                                  "Read-cache lookups that went to the SSD");
  EvictionCounter = &Metrics->counter("padre_cache_eviction_total",
                                      "Read-cache LRU evictions");
  BytesGauge = &Metrics->gauge("padre_cache_bytes",
                               "Decompressed bytes currently cached");
  BytesGauge->set(static_cast<double>(CachedBytes));
}

std::optional<ByteVector> ChunkCache::get(std::uint64_t Location) {
  const auto It = Map.find(Location);
  if (It == Map.end()) {
    ++Misses;
    if (MissCounter)
      MissCounter->add(1);
    return std::nullopt;
  }
  ++Hits;
  if (HitCounter)
    HitCounter->add(1);
  // Promote to most-recently-used.
  Lru.splice(Lru.begin(), Lru, It->second);
  return It->second->Chunk;
}

void ChunkCache::put(std::uint64_t Location, ByteVector Chunk) {
  if (Chunk.size() > CapacityBytes)
    return; // would evict everything for one entry
  const auto It = Map.find(Location);
  if (It != Map.end()) {
    CachedBytes -= It->second->Chunk.size();
    CachedBytes += Chunk.size();
    It->second->Chunk = std::move(Chunk);
    Lru.splice(Lru.begin(), Lru, It->second);
    evictToFit(0);
    if (BytesGauge)
      BytesGauge->set(static_cast<double>(CachedBytes));
    return;
  }
  evictToFit(Chunk.size());
  CachedBytes += Chunk.size();
  Lru.push_front(Entry{Location, std::move(Chunk)});
  Map[Location] = Lru.begin();
  if (BytesGauge)
    BytesGauge->set(static_cast<double>(CachedBytes));
}

void ChunkCache::invalidate(std::uint64_t Location) {
  const auto It = Map.find(Location);
  if (It == Map.end())
    return;
  CachedBytes -= It->second->Chunk.size();
  Lru.erase(It->second);
  Map.erase(It);
  if (BytesGauge)
    BytesGauge->set(static_cast<double>(CachedBytes));
}

void ChunkCache::clear() {
  Lru.clear();
  Map.clear();
  CachedBytes = 0;
  if (BytesGauge)
    BytesGauge->set(static_cast<double>(CachedBytes));
}

void ChunkCache::evictToFit(std::size_t NeededBytes) {
  while (CachedBytes + NeededBytes > CapacityBytes && !Lru.empty()) {
    const Entry &Victim = Lru.back();
    CachedBytes -= Victim.Chunk.size();
    Map.erase(Victim.Location);
    Lru.pop_back();
    ++Evictions;
    if (EvictionCounter)
      EvictionCounter->add(1);
  }
  if (BytesGauge)
    BytesGauge->set(static_cast<double>(CachedBytes));
}
