//===----------------------------------------------------------------------===//
///
/// \file
/// Chunk cache implementation.
///
//===----------------------------------------------------------------------===//

#include "core/ChunkCache.h"

#include <cassert>

using namespace padre;

ChunkCache::ChunkCache(std::size_t CapacityBytes)
    : CapacityBytes(CapacityBytes) {
  assert(CapacityBytes > 0 && "Zero-capacity cache");
}

std::optional<ByteVector> ChunkCache::get(std::uint64_t Location) {
  const auto It = Map.find(Location);
  if (It == Map.end()) {
    ++Misses;
    return std::nullopt;
  }
  ++Hits;
  // Promote to most-recently-used.
  Lru.splice(Lru.begin(), Lru, It->second);
  return It->second->Chunk;
}

void ChunkCache::put(std::uint64_t Location, ByteVector Chunk) {
  if (Chunk.size() > CapacityBytes)
    return; // would evict everything for one entry
  const auto It = Map.find(Location);
  if (It != Map.end()) {
    CachedBytes -= It->second->Chunk.size();
    CachedBytes += Chunk.size();
    It->second->Chunk = std::move(Chunk);
    Lru.splice(Lru.begin(), Lru, It->second);
    evictToFit(0);
    return;
  }
  evictToFit(Chunk.size());
  CachedBytes += Chunk.size();
  Lru.push_front(Entry{Location, std::move(Chunk)});
  Map[Location] = Lru.begin();
}

void ChunkCache::invalidate(std::uint64_t Location) {
  const auto It = Map.find(Location);
  if (It == Map.end())
    return;
  CachedBytes -= It->second->Chunk.size();
  Lru.erase(It->second);
  Map.erase(It);
}

void ChunkCache::clear() {
  Lru.clear();
  Map.clear();
  CachedBytes = 0;
}

void ChunkCache::evictToFit(std::size_t NeededBytes) {
  while (CachedBytes + NeededBytes > CapacityBytes && !Lru.empty()) {
    const Entry &Victim = Lru.back();
    CachedBytes -= Victim.Chunk.size();
    Map.erase(Victim.Location);
    Lru.pop_back();
    ++Evictions;
  }
}
