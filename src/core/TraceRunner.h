//===----------------------------------------------------------------------===//
///
/// \file
/// Trace replay against an LBA volume, with on-the-fly verification: a
/// shadow tag map tracks what every block should contain, and each
/// read is checked byte-for-byte against the regenerated expectation.
/// This is the harness that turns a trace (workload/Trace.h) into an
/// end-to-end volume exercise.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_TRACERUNNER_H
#define PADRE_CORE_TRACERUNNER_H

#include "core/Volume.h"
#include "workload/Trace.h"

#include <functional>

namespace padre {

/// Replay outcome counters.
struct TraceRunStats {
  std::uint64_t Writes = 0;
  std::uint64_t Reads = 0;
  std::uint64_t Trims = 0;
  std::uint64_t BlocksWritten = 0;
  std::uint64_t BlocksRead = 0;
  /// Records whose LBA range exceeded the volume (skipped).
  std::uint64_t OutOfRange = 0;
  /// Reads that returned no data (corruption) — always a bug.
  std::uint64_t ReadFailures = 0;
  /// Reads whose content differed from the shadow expectation —
  /// always a bug.
  std::uint64_t VerifyFailures = 0;

  bool clean() const { return ReadFailures == 0 && VerifyFailures == 0; }
};

/// How replay serves reads: given (Lba, Count), return the decoded
/// blocks or nullopt on failure — the Volume::readBlocks contract.
using TraceReadFn =
    std::function<std::optional<ByteVector>(std::uint64_t, std::uint64_t)>;

/// Replays \p Log against \p Vol, verifying every read against a
/// shadow tag map. Out-of-range records are counted and skipped
/// (traces may be generated for a different geometry). Reads go
/// through \p ReadBlocks when provided (e.g. the batched
/// restore::VolumeReader — core cannot depend on restore, so the
/// read path is injected), else Volume::readBlocks.
TraceRunStats replayTrace(Volume &Vol, const TraceLog &Log,
                          const TraceReadFn &ReadBlocks = nullptr);

/// Timed-replay knobs.
struct ReplayConfig {
  /// Bypass the reduction pipeline: writes go through
  /// Volume::writeBlocksRaw (the reduction-off baseline of E9).
  bool RawWrites = false;
  /// Run Volume::collectGarbage every N ops (0 = never). Interleaves
  /// chunk GC — and, with the FTL on, page invalidation — with the
  /// write stream.
  std::uint64_t GcEveryOps = 0;
};

/// Timed-replay outcome: everything `replayTrace` counts, plus the
/// open-loop latency distribution.
struct TimedReplayReport {
  TraceRunStats Stats;
  /// Per-op modelled latency percentiles in microseconds (exact, from
  /// the full sample vector). Latency = completion − arrival under an
  /// open-loop single-server queue: the device drains ops in trace
  /// order at their modelled service times, and ops that arrive while
  /// it is busy queue behind their predecessors.
  double P50Us = 0.0;
  double P95Us = 0.0;
  double P99Us = 0.0;
  double MeanUs = 0.0;
  double MaxUs = 0.0;
  /// Completion time of the last op (modelled wall clock, µs).
  double WallUs = 0.0;
  /// Total modelled service time across ops (µs).
  double ServiceUs = 0.0;
  /// Volume GC passes run and chunks they collected.
  std::uint64_t GcRuns = 0;
  std::uint64_t ChunksCollected = 0;
};

/// Replays \p Log with the open-loop latency model: each record's
/// service time is the modelled busy-time delta its execution charges
/// (CPU-pool time divided by the pool width, plus GPU, PCIe, SSD and
/// index-lock lane time), and its latency is queueing + service
/// against the record's `ArrivalUs` stamp. Functional behaviour
/// (shadow verification, skip counting) matches `replayTrace`.
TimedReplayReport replayTraceTimed(Volume &Vol, const TraceLog &Log,
                                   const ReplayConfig &Config = {},
                                   const TraceReadFn &ReadBlocks = nullptr);

} // namespace padre

#endif // PADRE_CORE_TRACERUNNER_H
