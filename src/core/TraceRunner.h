//===----------------------------------------------------------------------===//
///
/// \file
/// Trace replay against an LBA volume, with on-the-fly verification: a
/// shadow tag map tracks what every block should contain, and each
/// read is checked byte-for-byte against the regenerated expectation.
/// This is the harness that turns a trace (workload/Trace.h) into an
/// end-to-end volume exercise.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_TRACERUNNER_H
#define PADRE_CORE_TRACERUNNER_H

#include "core/Volume.h"
#include "workload/Trace.h"

#include <functional>

namespace padre {

/// Replay outcome counters.
struct TraceRunStats {
  std::uint64_t Writes = 0;
  std::uint64_t Reads = 0;
  std::uint64_t Trims = 0;
  std::uint64_t BlocksWritten = 0;
  std::uint64_t BlocksRead = 0;
  /// Records whose LBA range exceeded the volume (skipped).
  std::uint64_t OutOfRange = 0;
  /// Reads that returned no data (corruption) — always a bug.
  std::uint64_t ReadFailures = 0;
  /// Reads whose content differed from the shadow expectation —
  /// always a bug.
  std::uint64_t VerifyFailures = 0;

  bool clean() const { return ReadFailures == 0 && VerifyFailures == 0; }
};

/// How replay serves reads: given (Lba, Count), return the decoded
/// blocks or nullopt on failure — the Volume::readBlocks contract.
using TraceReadFn =
    std::function<std::optional<ByteVector>(std::uint64_t, std::uint64_t)>;

/// Replays \p Log against \p Vol, verifying every read against a
/// shadow tag map. Out-of-range records are counted and skipped
/// (traces may be generated for a different geometry). Reads go
/// through \p ReadBlocks when provided (e.g. the batched
/// restore::VolumeReader — core cannot depend on restore, so the
/// read path is injected), else Volume::readBlocks.
TraceRunStats replayTrace(Volume &Vol, const TraceLog &Log,
                          const TraceReadFn &ReadBlocks = nullptr);

} // namespace padre

#endif // PADRE_CORE_TRACERUNNER_H
