//===----------------------------------------------------------------------===//
///
/// \file
/// Calibrator implementation.
///
//===----------------------------------------------------------------------===//

#include "core/Calibrator.h"

#include "workload/VdbenchStream.h"

#include <cstdio>

using namespace padre;

std::string CalibrationResult::summary() const {
  std::string Out;
  char Line[96];
  for (unsigned I = 0; I < PipelineModeCount; ++I) {
    const auto Mode = static_cast<PipelineMode>(I);
    if (ThroughputIops[I] <= 0.0)
      std::snprintf(Line, sizeof(Line), "  %-12s n/a\n",
                    pipelineModeName(Mode));
    else
      std::snprintf(Line, sizeof(Line), "  %-12s %8.1fK IOPS%s\n",
                    pipelineModeName(Mode), ThroughputIops[I] / 1e3,
                    Mode == BestMode ? "  <-- selected" : "");
    Out += Line;
  }
  return Out;
}

CalibrationResult padre::calibrate(const Platform &Platform,
                                   const CalibratorConfig &Config) {
  CalibrationResult Result;
  double Best = -1.0;

  WorkloadConfig Workload;
  Workload.BlockSize = Config.Base.ChunkSize;
  Workload.TotalBytes = Config.DummyBytes;
  Workload.DedupRatio = Config.DedupRatio;
  Workload.CompressRatio = Config.CompressRatio;
  Workload.Seed = Config.Seed;
  const VdbenchStream Stream(Workload);
  const ByteVector Data = Stream.generateAll();

  for (unsigned I = 0; I < PipelineModeCount; ++I) {
    const auto Mode = static_cast<PipelineMode>(I);
    const bool WantsGpu =
        modeOffloadsDedup(Mode) || modeOffloadsCompression(Mode);
    if (WantsGpu && !Platform.Model.Gpu.Present)
      continue; // infeasible on this platform

    PipelineConfig PipeConfig = Config.Base;
    PipeConfig.Mode = Mode;
    ReductionPipeline Pipeline(Platform, PipeConfig);
    Pipeline.write(ByteSpan(Data.data(), Data.size()));
    Pipeline.finish();
    const PipelineReport Report = Pipeline.report();
    Result.ThroughputIops[I] = Report.ThroughputIops;
    if (Report.ThroughputIops > Best) {
      Best = Report.ThroughputIops;
      Result.BestMode = Mode;
    }
  }
  return Result;
}
