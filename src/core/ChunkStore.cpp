//===----------------------------------------------------------------------===//
///
/// \file
/// Chunk store implementation.
///
//===----------------------------------------------------------------------===//

#include "core/ChunkStore.h"

#include "compress/ChunkCodec.h"

#include <cassert>

using namespace padre;

void ChunkStore::put(std::uint64_t Location, ByteVector Block) {
  std::lock_guard<std::mutex> Lock(Mutex);
  TotalStoredBytes += Block.size();
  [[maybe_unused]] const bool Inserted =
      Blocks.emplace(Location, std::move(Block)).second;
  assert(Inserted && "Duplicate chunk location");
}

bool ChunkStore::contains(std::uint64_t Location) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Blocks.count(Location) != 0;
}

std::optional<ByteSpan>
ChunkStore::encodedBlock(std::uint64_t Location) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const auto It = Blocks.find(Location);
  if (It == Blocks.end())
    return std::nullopt;
  return ByteSpan(It->second.data(), It->second.size());
}

std::optional<ByteVector>
ChunkStore::readChunk(std::uint64_t Location) const {
  const auto Encoded = encodedBlock(Location);
  if (!Encoded)
    return std::nullopt;
  const auto View = decodeBlock(*Encoded);
  if (!View)
    return std::nullopt;
  ByteVector Out;
  if (!decodeChunkPayload(*View, Out))
    return std::nullopt;
  return Out;
}

std::optional<ByteVector>
ChunkStore::readStream(const StreamRecipe &Recipe) const {
  assert(Recipe.ChunkLocations.size() == Recipe.ChunkSizes.size() &&
         "Malformed recipe");
  ByteVector Stream;
  Stream.reserve(Recipe.logicalBytes());
  for (std::size_t I = 0; I < Recipe.ChunkLocations.size(); ++I) {
    const auto Chunk = readChunk(Recipe.ChunkLocations[I]);
    if (!Chunk || Chunk->size() != Recipe.ChunkSizes[I])
      return std::nullopt;
    appendBytes(Stream, ByteSpan(Chunk->data(), Chunk->size()));
  }
  return Stream;
}

std::uint64_t ChunkStore::erase(std::uint64_t Location) {
  std::lock_guard<std::mutex> Lock(Mutex);
  const auto It = Blocks.find(Location);
  if (It == Blocks.end())
    return 0;
  const std::uint64_t Freed = It->second.size();
  TotalStoredBytes -= Freed;
  TotalFreedBytes += Freed;
  Blocks.erase(It);
  return Freed;
}

std::size_t ChunkStore::chunkCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Blocks.size();
}

std::uint64_t ChunkStore::storedBytes() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return TotalStoredBytes;
}

std::uint64_t ChunkStore::freedBytes() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return TotalFreedBytes;
}

bool ChunkStore::corruptForTesting(std::uint64_t Location,
                                   std::size_t ByteOffset) {
  std::lock_guard<std::mutex> Lock(Mutex);
  const auto It = Blocks.find(Location);
  if (It == Blocks.end() || ByteOffset >= It->second.size())
    return false;
  It->second[ByteOffset] ^= 0x5A;
  return true;
}

void ChunkStore::forEach(
    const std::function<void(std::uint64_t, ByteSpan)> &Visit) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &[Location, Block] : Blocks)
    Visit(Location, ByteSpan(Block.data(), Block.size()));
}
