//===----------------------------------------------------------------------===//
///
/// \file
/// The logical chunk store: what the destage stage writes and the read
/// path fetches. Maps a chunk *location* (a monotonically assigned id
/// recorded in the dedup index and in stream recipes) to the encoded
/// compressed block for that chunk. Duplicate chunks are never stored —
/// their recipes point at the original unique chunk's location.
///
/// Service time for the physical I/O is charged by the pipeline via the
/// SSD model; this class is the functional content so read-back
/// verification is possible.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_CHUNKSTORE_H
#define PADRE_CORE_CHUNKSTORE_H

#include "util/Bytes.h"

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace padre {

/// A written stream's reconstruction recipe: one chunk location per
/// logical chunk, in stream order.
struct StreamRecipe {
  std::vector<std::uint64_t> ChunkLocations;
  std::vector<std::uint32_t> ChunkSizes;

  std::uint64_t logicalBytes() const {
    std::uint64_t Total = 0;
    for (std::uint32_t Size : ChunkSizes)
      Total += Size;
    return Total;
  }
};

/// Thread-safe location -> encoded-block store.
class ChunkStore {
public:
  /// Stores \p Block (an encoded compress/Block.h block) under
  /// \p Location. Locations must be unique.
  void put(std::uint64_t Location, ByteVector Block);

  /// True if \p Location holds a chunk.
  bool contains(std::uint64_t Location) const;

  /// The encoded block at \p Location; nullopt if absent.
  std::optional<ByteSpan> encodedBlock(std::uint64_t Location) const;

  /// Decodes and decompresses the chunk at \p Location. Returns
  /// nullopt if absent or corrupt.
  std::optional<ByteVector> readChunk(std::uint64_t Location) const;

  /// Reconstructs a whole stream from \p Recipe. Returns nullopt if
  /// any chunk is missing or corrupt.
  std::optional<ByteVector> readStream(const StreamRecipe &Recipe) const;

  /// Removes the chunk at \p Location (garbage collection). Returns
  /// the encoded bytes freed (0 if absent).
  std::uint64_t erase(std::uint64_t Location);

  /// Number of live (unique) chunks.
  std::size_t chunkCount() const;

  /// Encoded bytes of live chunks (headers included).
  std::uint64_t storedBytes() const;

  /// Encoded bytes freed by `erase` since construction.
  std::uint64_t freedBytes() const;

  /// Visits every live chunk (persistence support). Iteration order is
  /// unspecified; the callback must not reenter the store.
  void forEach(
      const std::function<void(std::uint64_t, ByteSpan)> &Visit) const;

  /// Fault injection for tests and scrub drills: XORs one byte of the
  /// stored block at \p Location. Returns false if absent or the
  /// offset is out of range.
  bool corruptForTesting(std::uint64_t Location, std::size_t ByteOffset);

private:
  mutable std::mutex Mutex;
  std::unordered_map<std::uint64_t, ByteVector> Blocks;
  std::uint64_t TotalStoredBytes = 0;
  std::uint64_t TotalFreedBytes = 0;
};

} // namespace padre

#endif // PADRE_CORE_CHUNKSTORE_H
