//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU cache of decompressed chunks on the read path (extension).
/// Dedup concentrates reads: one hot shared chunk (a golden-image
/// block, a common page) serves many logical blocks, so even a small
/// cache absorbs a large fraction of SSD reads and decompression
/// work. Scrubbing must bypass it — a scrub that reads cached copies
/// would certify corrupt flash as healthy.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_CHUNKCACHE_H
#define PADRE_CORE_CHUNKCACHE_H

#include "obs/MetricsRegistry.h"
#include "util/Bytes.h"

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

namespace padre {

/// Byte-capacity-bounded LRU of decompressed chunks.
class ChunkCache {
public:
  /// \p CapacityBytes bounds the cached payload bytes (metadata is not
  /// counted). Must be nonzero.
  explicit ChunkCache(std::size_t CapacityBytes);

  /// Returns a copy of the cached chunk and promotes it to
  /// most-recently-used; nullopt on miss.
  std::optional<ByteVector> get(std::uint64_t Location);

  /// True if \p Location is cached. Does not promote and does not
  /// count as a lookup (readahead planning must not skew hit rates).
  bool contains(std::uint64_t Location) const {
    return Map.find(Location) != Map.end();
  }

  /// Inserts (or refreshes) \p Chunk under \p Location, evicting LRU
  /// entries to fit. Chunks larger than the capacity are not cached.
  void put(std::uint64_t Location, ByteVector Chunk);

  /// Drops \p Location if cached (GC / corruption invalidation).
  void invalidate(std::uint64_t Location);

  /// Drops everything.
  void clear();

  /// Attaches metric instruments (hit/miss/eviction counters plus a
  /// cached-bytes gauge — see OBSERVABILITY.md). Instruments are
  /// registered once here and updated through cached pointers on the
  /// hot path. Null detaches; \p Metrics must outlive the cache.
  void setObs(obs::MetricsRegistry *Metrics);

  std::uint64_t hits() const { return Hits; }
  std::uint64_t misses() const { return Misses; }
  std::uint64_t evictions() const { return Evictions; }
  std::size_t cachedBytes() const { return CachedBytes; }
  std::size_t entryCount() const { return Map.size(); }

  /// Hit fraction of all lookups (0 when none).
  double hitRate() const {
    const std::uint64_t Total = Hits + Misses;
    return Total == 0 ? 0.0
                      : static_cast<double>(Hits) /
                            static_cast<double>(Total);
  }

private:
  struct Entry {
    std::uint64_t Location;
    ByteVector Chunk;
  };

  void evictToFit(std::size_t NeededBytes);

  std::size_t CapacityBytes;
  std::size_t CachedBytes = 0;
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Evictions = 0;
  std::list<Entry> Lru; ///< front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> Map;
  // Observability (null = disabled).
  obs::Counter *HitCounter = nullptr;
  obs::Counter *MissCounter = nullptr;
  obs::Counter *EvictionCounter = nullptr;
  obs::Gauge *BytesGauge = nullptr;
};

} // namespace padre

#endif // PADRE_CORE_CHUNKCACHE_H
