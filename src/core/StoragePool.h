//===----------------------------------------------------------------------===//
///
/// \file
/// The storage pool: several LBA volumes sharing one inline reduction
/// pipeline and one chunk reference domain — the global dedup domain a
/// primary array exposes. Cross-volume duplicates (the VDI
/// golden-image pattern: many clones of one template) are stored once;
/// a chunk is garbage only when *no* volume or snapshot anywhere in
/// the pool references it.
///
/// Single-writer semantics across the pool, like its parts.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_STORAGEPOOL_H
#define PADRE_CORE_STORAGEPOOL_H

#include "core/Volume.h"

namespace padre {

/// Pool-wide statistics.
struct PoolStats {
  std::uint64_t Volumes = 0;
  std::uint64_t MappedBlocks = 0;  ///< across all volumes
  std::uint64_t LogicalBytes = 0;  ///< across all volumes
  std::uint64_t PhysicalBytes = 0; ///< shared store, counted once
  std::uint64_t LiveChunks = 0;
  std::uint64_t DeadChunks = 0;
  /// logical / physical — the pool's headline "reduction" figure;
  /// cross-volume dedup pushes it beyond any single volume's ratio.
  double reductionRatio() const {
    return PhysicalBytes == 0 ? 0.0
                              : static_cast<double>(LogicalBytes) /
                                    static_cast<double>(PhysicalBytes);
  }
};

/// A dedup domain of volumes over one pipeline.
class StoragePool {
public:
  /// The pool owns its pipeline, built for \p Plat / \p Config.
  StoragePool(const Platform &Plat, const PipelineConfig &Config);

  /// Creates a volume of \p Blocks blocks in the shared domain. The
  /// reference stays valid for the pool's lifetime.
  Volume &createVolume(std::uint64_t Blocks);

  /// Number of volumes created.
  std::size_t volumeCount() const { return Volumes.size(); }

  /// Volume \p Index, in creation order.
  Volume &volume(std::size_t Index) { return *Volumes[Index]; }

  /// Pool-wide garbage collection (any member volume's collectGarbage
  /// is equivalent; this is the idiomatic entry point).
  std::size_t collectGarbage();

  /// Drains pipeline buffers.
  void flush() { Pipeline.finish(); }

  /// Pool-wide space statistics.
  PoolStats stats() const;

  ReductionPipeline &pipeline() { return Pipeline; }
  const std::shared_ptr<ChunkRefTracker> &tracker() const {
    return Tracker;
  }

private:
  ReductionPipeline Pipeline;
  std::shared_ptr<ChunkRefTracker> Tracker;
  std::vector<std::unique_ptr<Volume>> Volumes;
};

} // namespace padre

#endif // PADRE_CORE_STORAGEPOOL_H
