//===----------------------------------------------------------------------===//
///
/// \file
/// The block-device frontend: a logical-block-address (LBA) volume on
/// top of the inline reduction pipeline. This is the piece a real
/// primary storage system exposes to clients — the paper's pipeline
/// handles the write path; the volume adds what production needs
/// around it:
///
///   * overwrite semantics — rewriting an LBA remaps it and
///     dereferences the old chunk,
///   * TRIM/discard,
///   * per-chunk reference counting (duplicates share one stored
///     chunk), held in a ChunkRefTracker that several volumes can
///     share for a cross-volume dedup domain (core/StoragePool.h),
///   * deferred garbage collection — a dead chunk stays resident (and
///     can be *revived* by a dedup hit) until `collectGarbage()`
///     purges its store block and index entries,
///   * snapshots priced by divergence, and integrity scrubbing,
///   * space accounting (logical vs physical, space amplification).
///
/// Single-writer semantics: volume operations are not internally
/// synchronized (the parallelism lives inside the pipeline stages).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CORE_VOLUME_H
#define PADRE_CORE_VOLUME_H

#include "core/RefTracker.h"

#include <memory>

namespace padre {

/// Volume geometry.
struct VolumeConfig {
  /// Addressable blocks; block size equals the pipeline chunk size.
  std::uint64_t BlockCount = 1 << 16;
};

/// Space/GC statistics. With a shared tracker (pool member volumes)
/// the chunk/GC counters describe the whole dedup domain.
struct VolumeStats {
  std::uint64_t MappedBlocks = 0;
  std::uint64_t LiveChunks = 0;
  std::uint64_t DeadChunks = 0; ///< awaiting collectGarbage()
  std::uint64_t LogicalBytes = 0;  ///< mapped blocks x block size
  std::uint64_t PhysicalBytes = 0; ///< encoded bytes in the store
  std::uint64_t RevivedChunks = 0; ///< dead chunks rescued by dedup
  std::uint64_t CollectedChunks = 0;
  std::uint64_t Snapshots = 0;
  /// physical/logical; < 1 when reduction wins.
  double spaceAmplification() const {
    return LogicalBytes == 0 ? 0.0
                             : static_cast<double>(PhysicalBytes) /
                                   static_cast<double>(LogicalBytes);
  }
};

/// An LBA volume over a reduction pipeline. The pipeline must outlive
/// the volume and should not be written to directly while volumes
/// manage it.
class Volume {
public:
  /// \p Tracker is the chunk reference domain; pass the same tracker
  /// to several volumes over one pipeline for cross-volume dedup
  /// accounting (or leave null for a private domain).
  Volume(ReductionPipeline &Pipeline, const VolumeConfig &Config,
         std::shared_ptr<ChunkRefTracker> Tracker = nullptr);

  std::size_t blockSize() const { return BlockSize; }
  std::uint64_t blockCount() const { return Config.BlockCount; }

  /// Writes \p Data (a multiple of the block size) at block \p Lba.
  /// Returns false (writing nothing) if the range exceeds the volume.
  /// When \p InfoOut is non-null, the pipeline's per-block outcomes
  /// (location, fingerprint, dedup outcome) are appended — the journal
  /// layer records them as the write's redo intent (src/journal).
  bool writeBlocks(std::uint64_t Lba, ByteSpan Data,
                   std::vector<ChunkWriteInfo> *InfoOut = nullptr);

  /// Writes \p Data bypassing both reduction operations (the §1
  /// background-reduction baseline; see core/BackgroundReducer.h).
  bool writeBlocksRaw(std::uint64_t Lba, ByteSpan Data);

  /// The mapping-apply tail of writeBlocks for externally pipelined
  /// data: callers that ingest several volumes' runs through one
  /// combined pipeline write (ReductionPipeline::writeV) partition the
  /// per-chunk outcomes back to each volume here. One Info per block,
  /// in LBA order; the range must be valid.
  void applyChunkWrites(std::uint64_t Lba,
                        std::span<const ChunkWriteInfo> Infos);

  /// Reads \p Count blocks at \p Lba. Unmapped blocks read as zeros.
  /// Returns nullopt on out-of-range or store corruption.
  std::optional<ByteVector> readBlocks(std::uint64_t Lba,
                                       std::uint64_t Count);

  /// Discards \p Count blocks at \p Lba (TRIM). Returns false only
  /// for invalid ranges.
  bool trim(std::uint64_t Lba, std::uint64_t Count);

  /// Purges dead chunks of the whole reference domain. Returns the
  /// number of chunks collected.
  std::size_t collectGarbage();

  //===--------------------------------------------------------------===//
  // Snapshots — point-in-time clones of the LBA mapping. Dedup makes
  // them nearly free: a snapshot only takes chunk references, so space
  // grows with *divergence* after the snapshot, not with volume size.
  //===--------------------------------------------------------------===//

  using SnapshotId = std::uint64_t;

  /// Captures the current mapping. O(mapped blocks); no data copied.
  SnapshotId createSnapshot();

  /// Drops a snapshot; its exclusively-referenced chunks become dead
  /// (collectable). Returns false for unknown ids.
  bool deleteSnapshot(SnapshotId Id);

  /// Reads \p Count blocks at \p Lba as of snapshot \p Id. Unmapped
  /// blocks read as zeros; nullopt on bad id/range or corruption.
  std::optional<ByteVector> readSnapshotBlocks(SnapshotId Id,
                                               std::uint64_t Lba,
                                               std::uint64_t Count);

  /// Ids of live snapshots, oldest first.
  std::vector<SnapshotId> snapshotIds() const;

  //===--------------------------------------------------------------===//
  // Scrubbing — background integrity verification.
  //===--------------------------------------------------------------===//

  struct ScrubReport {
    std::uint64_t ChunksScanned = 0;
    std::uint64_t CorruptChunks = 0;
    /// Locations whose block failed to decode or whose content no
    /// longer matches its fingerprint.
    std::vector<std::uint64_t> BadLocations;
  };

  /// Reads every tracked chunk back, decodes it, and re-fingerprints
  /// the content (charging the SSD reads and CPU hashing). A dedup
  /// store must scrub: one corrupt shared chunk silently damages every
  /// logical block that references it. Covers the whole reference
  /// domain.
  ScrubReport scrub();

  struct ScrubRepairReport {
    std::uint64_t ChunksScanned = 0;
    std::uint64_t CorruptChunks = 0;
    std::uint64_t RepairedChunks = 0;
    std::uint64_t LostChunks = 0;
    /// Locations that could not be repaired (no fingerprint-verified
    /// copy available, or the repair write failed).
    std::vector<std::uint64_t> LostLocations;
  };

  /// scrub() plus repair: each corrupt/unreadable chunk is rewritten
  /// from a fingerprint-verified cached copy when one exists (see
  /// ReductionPipeline::scrubChunk). Chunks with no trusted repair
  /// source are reported as lost — their data is gone until the caller
  /// restores from a replica or an image.
  ScrubRepairReport scrubAndRepair();

  /// Flushes pipeline buffers (bin-buffer drains).
  void flush() { Pipeline.finish(); }

  /// Current space/GC statistics.
  VolumeStats stats() const;

  /// Reference count of \p Location (0 if unknown/dead).
  std::uint32_t refCount(std::uint64_t Location) const;

  /// The chunk reference domain this volume belongs to.
  const std::shared_ptr<ChunkRefTracker> &tracker() const {
    return Tracker;
  }

  /// Maintenance access to the underlying pipeline (background
  /// reducer, tools). Use with single-writer discipline.
  ReductionPipeline &pipelineForMaintenance() { return Pipeline; }

  /// Sentinel for unwritten/trimmed LBAs in `mapping()`.
  static constexpr std::uint64_t Unmapped = ~0ull;

  /// A persisted chunk reference (persist/VolumeImage.h).
  using ChunkRecord = ChunkRefTracker::Record;

  /// Snapshot of the LBA mapping (persistence support).
  const std::vector<std::uint64_t> &mapping() const { return Mapping; }

  /// Snapshot of the reference table, in unspecified order.
  std::vector<ChunkRecord> chunkRecords() const {
    return Tracker->records();
  }

  /// A persisted snapshot (id + its full mapping).
  using SnapshotTable =
      std::vector<std::pair<SnapshotId, std::vector<std::uint64_t>>>;

  /// Snapshot table snapshot (persistence support), oldest first.
  SnapshotTable snapshotTable() const { return Snapshots; }

  /// The id the next createSnapshot() will assign (persistence
  /// support). Monotonic across deletes, so it cannot be derived from
  /// the live snapshot table.
  SnapshotId nextSnapshotId() const { return NextSnapshotId; }

  /// Replaces the volume's mapping, reference table and snapshots
  /// (restore path). Only valid for volumes with a private tracker —
  /// restoring one member of a shared domain would clobber the
  /// others' references. \p NextId restores the snapshot-id counter; it
  /// is raised to past the highest live snapshot id, so 0 (the
  /// default) derives the counter from the table alone. Returns false
  /// on geometry mismatch, snapshot mappings of the wrong size, or a
  /// shared tracker.
  bool restoreState(std::vector<std::uint64_t> NewMapping,
                    const std::vector<ChunkRecord> &Records,
                    SnapshotTable Snapshots = SnapshotTable(),
                    SnapshotId NextId = 0);

  /// Journal-replay hook (src/journal/Recovery.cpp): re-applies one
  /// recorded LBA remap without re-running the pipeline — references
  /// the chunk at \p Location (fingerprint \p Fp), installs the
  /// mapping, and dereferences the previously mapped chunk; exactly
  /// the per-block tail of writeBlocks. \p FreshChunk marks a chunk
  /// the same record just placed (replayed as a Unique outcome, so it
  /// does not count as a dedup revival). Returns false for an
  /// out-of-range LBA.
  bool applyMappingUpdate(std::uint64_t Lba, std::uint64_t Location,
                          const Fingerprint &Fp, bool FreshChunk = false);

private:
  bool writeBlocksImpl(std::uint64_t Lba, ByteSpan Data, bool Raw,
                       std::vector<ChunkWriteInfo> *InfoOut);

  ReductionPipeline &Pipeline;
  VolumeConfig Config;
  std::size_t BlockSize;
  bool SharedTracker;
  std::shared_ptr<ChunkRefTracker> Tracker;
  /// LBA -> chunk location; Unmapped when unwritten/trimmed.
  std::vector<std::uint64_t> Mapping;
  /// Live snapshots, oldest first.
  SnapshotTable Snapshots;
  SnapshotId NextSnapshotId = 1;
};

} // namespace padre

#endif // PADRE_CORE_VOLUME_H
