//===----------------------------------------------------------------------===//
///
/// \file
/// Report rendering.
///
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include <cassert>
#include <cstdio>

using namespace padre;

const char *padre::pipelineModeName(PipelineMode Mode) {
  switch (Mode) {
  case PipelineMode::CpuOnly:
    return "cpu-only";
  case PipelineMode::GpuDedup:
    return "gpu-dedup";
  case PipelineMode::GpuCompress:
    return "gpu-compress";
  case PipelineMode::GpuBoth:
    return "gpu-both";
  }
  assert(false && "Unknown pipeline mode");
  return "?";
}

namespace {

/// Percent of a lane's scheduled occupancy hidden behind other lanes.
double hiddenPct(const double *BusySec, const double *HiddenSec,
                 Resource R) {
  const double Busy = BusySec[static_cast<unsigned>(R)];
  if (Busy <= 0.0)
    return 0.0;
  return 100.0 * HiddenSec[static_cast<unsigned>(R)] / Busy;
}

} // namespace

std::string PipelineReport::toString() const {
  char Buffer[1536];
  std::snprintf(
      Buffer, sizeof(Buffer),
      "chunks=%llu (%.1f MiB)  unique=%llu dup=%llu "
      "(buf=%llu tree=%llu gpu=%llu)\n"
      "dedup=%.2fx compress=%.2fx reduction=%.2fx stored=%.1f MiB "
      "rawFallbacks=%llu\n"
      "throughput=%.1fK IOPS (%.1f MB/s)  makespan=%.4fs "
      "bottleneck=%s offload=%.2f\n"
      "latency (modelled): p50=%.0fus p95=%.0fus p99=%.0fus\n"
      "busy: cpu=%.4fs gpu=%.4fs pcie=%.4fs ssd=%.4fs launches=%llu\n"
      "pipeline: depth=%u wall=%.4fs (%.1f MB/s) hidden: cpu=%.0f%% "
      "gpu=%.0f%% pcie=%.0f%% ssd=%.0f%%\n"
      "ssd endurance: host=%.1f MiB nand=%.1f MiB",
      static_cast<unsigned long long>(LogicalChunks),
      static_cast<double>(LogicalBytes) / (1 << 20),
      static_cast<unsigned long long>(UniqueChunks),
      static_cast<unsigned long long>(DupChunks),
      static_cast<unsigned long long>(DupFromBuffer),
      static_cast<unsigned long long>(DupFromTree),
      static_cast<unsigned long long>(DupFromGpu), DedupRatio,
      CompressRatio, ReductionRatio,
      static_cast<double>(StoredBytes) / (1 << 20),
      static_cast<unsigned long long>(RawFallbacks),
      ThroughputIops / 1e3, ThroughputMBps, MakespanSec,
      resourceName(Bottleneck), OffloadFraction, LatencyP50Us,
      LatencyP95Us, LatencyP99Us, CpuBusySec, GpuBusySec,
      PcieBusySec, SsdBusySec,
      static_cast<unsigned long long>(KernelLaunches), PipelineDepth,
      WallSec, WallThroughputMBps,
      hiddenPct(SchedBusySec, SchedHiddenSec, Resource::CpuPool),
      hiddenPct(SchedBusySec, SchedHiddenSec, Resource::Gpu),
      hiddenPct(SchedBusySec, SchedHiddenSec, Resource::Pcie),
      hiddenPct(SchedBusySec, SchedHiddenSec, Resource::Ssd),
      static_cast<double>(SsdHostBytes) / (1 << 20),
      static_cast<double>(SsdNandBytes) / (1 << 20));
  return Buffer;
}
