//===----------------------------------------------------------------------===//
///
/// \file
/// GPU device model implementation.
///
//===----------------------------------------------------------------------===//

#include "gpu/GpuDevice.h"

#include "fault/FaultInjector.h"

#include <algorithm>
#include <cassert>

using namespace padre;

const char *padre::kernelFamilyName(KernelFamily Family) {
  switch (Family) {
  case KernelFamily::Indexing:
    return "indexing";
  case KernelFamily::Hashing:
    return "hashing";
  case KernelFamily::Compression:
    return "compression";
  case KernelFamily::Decompression:
    return "decompression";
  }
  assert(false && "Unknown kernel family");
  return "?";
}

double GpuStagingModel::acquireSlot(double ReadyUs) {
  assert(Pending < SlotCount && "Both staging slots already in flight");
  const double Start = std::max(ReadyUs, FreeUs[Cursor]);
  Cursor = (Cursor + 1) % SlotCount;
  ++Pending;
  return Start;
}

void GpuStagingModel::releaseOldest(double KernelDoneUs) {
  if (Pending == 0)
    return;
  FreeUs[Oldest] = KernelDoneUs;
  Oldest = (Oldest + 1) % SlotCount;
  --Pending;
}

void GpuStagingModel::reset() {
  FreeUs[0] = FreeUs[1] = 0.0;
  Cursor = Oldest = Pending = 0;
}

GpuDevice::GpuDevice(const CostModel &Model, ResourceLedger &Ledger)
    : Model(Model), Ledger(Ledger) {
  assert(isValidCostModel(Model) && "Invalid cost model");
  for (auto &Count : LaunchCounts)
    Count.store(0);
}

std::uint64_t GpuDevice::memoryCapacityBytes() const {
  return static_cast<std::uint64_t>(Model.Gpu.DeviceMemoryMiB * 1024.0 *
                                    1024.0);
}

bool GpuDevice::allocateMemory(std::uint64_t Bytes) {
  assert(present() && "No GPU on this platform");
  const std::uint64_t Capacity = memoryCapacityBytes();
  std::uint64_t Current = MemoryUsed.load();
  for (;;) {
    if (Current + Bytes > Capacity)
      return false;
    if (MemoryUsed.compare_exchange_weak(Current, Current + Bytes))
      return true;
  }
}

void GpuDevice::releaseMemory(std::uint64_t Bytes) {
  [[maybe_unused]] const std::uint64_t Previous =
      MemoryUsed.fetch_sub(Bytes);
  assert(Previous >= Bytes && "Releasing more device memory than reserved");
}

void GpuDevice::setObs(const obs::ObsSinks &Obs) {
  Trace = Obs.Trace;
  if (!Obs.Metrics)
    return;
  for (unsigned F = 0; F < KernelFamilyCount; ++F) {
    std::string Name = "padre_gpu_kernel_launches_total{family=\"";
    Name += kernelFamilyName(static_cast<KernelFamily>(F));
    Name += "\"}";
    LaunchCounters[F] =
        &Obs.Metrics->counter(Name, "GPU kernel launches by family");
  }
  BytesH2d = &Obs.Metrics->counter("padre_pcie_bytes_total{dir=\"h2d\"}",
                                   "Bytes moved over the PCIe link");
  BytesD2h = &Obs.Metrics->counter("padre_pcie_bytes_total{dir=\"d2h\"}",
                                   "Bytes moved over the PCIe link");
}

fault::Status GpuDevice::transferToDevice(std::size_t Bytes) {
  assert(present() && "No GPU on this platform");
  const obs::LaneSpan Span(Trace, Ledger, Resource::Pcie, "dma:h2d",
                           obs::CategoryDma);
  Ledger.chargeMicros(Resource::Pcie, Model.pcieTransferUs(Bytes));
  if (OpLog)
    OpLog->push_back(GpuOp{GpuOp::Kind::H2d, Model.pcieTransferUs(Bytes)});
  Ledger.countHostToDevice(Bytes);
  if (BytesH2d)
    BytesH2d->add(Bytes);
  if (Faults && Faults->sample(fault::FaultSite::GpuDma))
    return fault::Status::error(fault::ErrorCode::GpuDmaError);
  return {};
}

fault::Status GpuDevice::transferFromDevice(std::size_t Bytes) {
  assert(present() && "No GPU on this platform");
  const obs::LaneSpan Span(Trace, Ledger, Resource::Pcie, "dma:d2h",
                           obs::CategoryDma);
  Ledger.chargeMicros(Resource::Pcie, Model.pcieTransferUs(Bytes));
  if (OpLog)
    OpLog->push_back(GpuOp{GpuOp::Kind::D2h, Model.pcieTransferUs(Bytes)});
  Ledger.countDeviceToHost(Bytes);
  if (BytesD2h)
    BytesD2h->add(Bytes);
  if (Faults && Faults->sample(fault::FaultSite::GpuDma))
    return fault::Status::error(fault::ErrorCode::GpuDmaError);
  return {};
}

fault::Status GpuDevice::launchKernel(KernelFamily Family, double ExecMicros,
                                      const std::function<void()> &Body) {
  return submitKernel(Family, Model.Gpu.LaunchUs, ExecMicros, Body);
}

fault::Status GpuDevice::dispatchResident(KernelFamily Family,
                                          double DispatchUs,
                                          double ExecMicros,
                                          const std::function<void()> &Body) {
  assert(DispatchUs >= 0.0 && "Negative dispatch latency");
  return submitKernel(Family, DispatchUs, ExecMicros, Body);
}

fault::Status GpuDevice::submitKernel(KernelFamily Family, double FixedUs,
                                      double ExecMicros,
                                      const std::function<void()> &Body) {
  assert(present() && "No GPU on this platform");
  assert(ExecMicros >= 0.0 && "Negative kernel execution time");
  static constexpr const char *SpanNames[KernelFamilyCount] = {
      "kernel:indexing", "kernel:hashing", "kernel:compression",
      "kernel:decompression"};
  const obs::LaneSpan Span(Trace, Ledger, Resource::Gpu,
                           SpanNames[static_cast<unsigned>(Family)],
                           obs::CategoryKernel);
  const double Penalty =
      MixedMode.load() ? Model.Gpu.MixedKernelPenalty : 1.0;
  std::optional<fault::InjectedFault> Fault;
  if (Faults)
    Fault = Faults->sample(fault::FaultSite::GpuKernel);
  // A hung kernel occupies the device until the host kills it at the
  // hang timeout; an ECC-errored kernel runs to completion but its
  // results are uncorrectable. Either way Body is skipped — the
  // functional results never existed or are discarded.
  const double ChargedExecUs =
      (Fault && Fault->Kind == fault::FaultKind::GpuKernelHang)
          ? Fault->ExtraUs
          : ExecMicros;
  Ledger.chargeMicros(Resource::Gpu,
                      (FixedUs + ChargedExecUs) * Penalty);
  if (OpLog)
    OpLog->push_back(
        GpuOp{GpuOp::Kind::Kernel, (FixedUs + ChargedExecUs) * Penalty});
  Ledger.countKernelLaunch();
  LaunchCounts[static_cast<unsigned>(Family)].fetch_add(1);
  if (obs::Counter *C = LaunchCounters[static_cast<unsigned>(Family)])
    C->add(1);
  if (Fault)
    return fault::Status::error(fault::ErrorCode::GpuKernelError);
  if (Body)
    Body();
  return {};
}

std::uint64_t GpuDevice::launches(KernelFamily Family) const {
  return LaunchCounts[static_cast<unsigned>(Family)].load();
}
