//===----------------------------------------------------------------------===//
///
/// \file
/// The GPU device model — the substitution for the paper's Radeon
/// HD 7970 (see DESIGN.md §1). Kernels execute *functionally* on the
/// calling host thread so results are bit-exact, while the architectural
/// costs the paper's design reasons about are charged to the resource
/// ledger explicitly:
///
///   * fixed kernel-launch latency ("the inevitable time at which the
///     GPU kernel starts", §3.1(3)),
///   * host<->device transfers over the PCIe link (§3.1(2) first
///     architectural consideration),
///   * kernel execution time from the calibrated per-byte/per-entry
///     rates in sim/CostModel.h,
///   * a mixed-kernel occupancy penalty when both reduction operations
///     share the device (integration mode GpuBoth, §4(3)),
///   * a bounded device-memory arena (the GPU bin table must fit, which
///     is why it uses random replacement, §3.3).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_GPU_GPUDEVICE_H
#define PADRE_GPU_GPUDEVICE_H

#include "fault/Status.h"
#include "obs/Obs.h"
#include "sim/CostModel.h"
#include "sim/ResourceLedger.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

namespace padre {

namespace fault {
class FaultInjector;
} // namespace fault

/// Kernel families tracked by the device (for reports and for the
/// mixed-kernel penalty).
enum class KernelFamily : unsigned {
  Indexing = 0,      ///< bin-table probe kernels (dedup offload)
  Hashing = 1,       ///< SHA-1 fingerprint kernels (dedup offload)
  Compression = 2,   ///< lane-parallel LZ kernels
  Decompression = 3, ///< lane-parallel LZ decode kernels (restore path)
};

inline constexpr unsigned KernelFamilyCount = 4;

/// Returns "indexing", "hashing", "compression" or "decompression".
const char *kernelFamilyName(KernelFamily Family);

/// One operation submitted to the device's async queue, in host
/// submission order. When the batch scheduler arms the log (setOpLog),
/// every DMA and kernel appends an entry; the scheduler then *replays*
/// the queue onto the dependency-aware timeline — H2D on the PCIe
/// lane, the kernel it feeds on the GPU lane, D2H back on PCIe — the
/// way an asynchronous stream would execute it, instead of the
/// charge-order serialization the busy accumulators imply.
struct GpuOp {
  enum class Kind : unsigned { H2d, Kernel, D2h };
  Kind Op = Kind::Kernel;
  /// Modelled time the operation charged (µs), fault stalls included.
  double Micros = 0.0;
};

/// Double-buffered device staging (modelled): two staging slots feed
/// the async queue, so the upload for sub-batch N+1 overlaps the
/// kernel consuming slot N, but a third upload must wait for the first
/// kernel to free its slot — the classic two-deep copy/compute
/// pipeline. Pure timeline bookkeeping in modelled µs, driven by the
/// batch scheduler's replay; not thread-safe (replay is
/// single-threaded).
class GpuStagingModel {
public:
  static constexpr unsigned SlotCount = 2;

  /// Earliest time an upload eligible at \p ReadyUs may start: the
  /// slot acquired is the least-recently freed one.
  double acquireSlot(double ReadyUs);

  /// Frees the oldest in-flight slot at \p KernelDoneUs (the kernel
  /// that consumed it has completed). No-op when nothing is in flight.
  void releaseOldest(double KernelDoneUs);

  /// Slots currently holding an upload whose kernel has not completed.
  unsigned inFlight() const { return Pending; }

  void reset();

private:
  double FreeUs[SlotCount] = {0.0, 0.0};
  unsigned Cursor = 0;  ///< next slot to acquire (ring order)
  unsigned Oldest = 0;  ///< next slot to release (ring order)
  unsigned Pending = 0; ///< acquired but not yet released
};

/// The modelled discrete GPU. Thread-safe: engines launch kernels from
/// multiple pool threads concurrently.
class GpuDevice {
public:
  /// \p Model supplies the calibrated GPU/PCIe constants; \p Ledger
  /// receives all charges. Both must outlive the device.
  GpuDevice(const CostModel &Model, ResourceLedger &Ledger);

  /// False if the platform has no GPU; all other calls are then invalid.
  bool present() const { return Model.Gpu.Present; }

  /// Device-memory capacity in bytes.
  std::uint64_t memoryCapacityBytes() const;

  /// Reserves \p Bytes of device memory. Returns false (and reserves
  /// nothing) if the arena would overflow.
  bool allocateMemory(std::uint64_t Bytes);

  /// Releases \p Bytes previously reserved.
  void releaseMemory(std::uint64_t Bytes);

  std::uint64_t memoryUsedBytes() const { return MemoryUsed.load(); }

  /// Charges a host-to-device DMA of \p Bytes to the PCIe link. With a
  /// fault injector attached, the transfer may deliver corrupt data:
  /// the time is still charged (the DMA ran; the arrival CRC failed)
  /// and a GpuDmaError status is returned for the caller's CPU
  /// fallback.
  fault::Status transferToDevice(std::size_t Bytes);

  /// Charges a device-to-host DMA of \p Bytes to the PCIe link. Same
  /// fault contract as transferToDevice.
  fault::Status transferFromDevice(std::size_t Bytes);

  /// Launches a kernel: runs \p Body functionally on the calling thread
  /// and charges launch latency plus \p ExecMicros of execution to the
  /// GPU resource (both scaled by the mixed-kernel penalty when mixed
  /// mode is enabled). Injected kernel faults skip \p Body (an ECC
  /// error's results are discarded; a hung kernel never finishes, and
  /// is charged the plan's hang timeout instead of its execution time)
  /// and return GpuKernelError — the caller re-runs the work on the
  /// CPU path.
  fault::Status launchKernel(KernelFamily Family, double ExecMicros,
                             const std::function<void()> &Body);

  /// Submits work to an already-resident *persistent* kernel: instead
  /// of the full LaunchUs, only \p DispatchUs (the work-queue doorbell
  /// — one mapped write plus the device-side dequeue) is charged ahead
  /// of \p ExecMicros. The caller owns residency tracking: the kernel
  /// must have been started earlier with launchKernel, and after any
  /// fault it must be considered evicted (relaunch before the next
  /// dispatch). Same fault contract as launchKernel otherwise.
  fault::Status dispatchResident(KernelFamily Family, double DispatchUs,
                                 double ExecMicros,
                                 const std::function<void()> &Body);

  /// Enables/disables the mixed-kernel occupancy penalty. Set by the
  /// pipeline when both reduction operations offload to the GPU.
  void setMixedMode(bool Mixed) { MixedMode.store(Mixed); }
  bool mixedMode() const { return MixedMode.load(); }

  /// Number of kernels launched for \p Family since construction.
  std::uint64_t launches(KernelFamily Family) const;

  /// Attaches observability sinks: per-family kernel spans and DMA
  /// spans (detail categories nested inside the pipeline stage spans)
  /// plus launch/byte counters. Call before any traffic; sinks must
  /// outlive the device.
  void setObs(const obs::ObsSinks &Obs);

  /// Arms (null detaches) the async submission log: every DMA and
  /// kernel appends one GpuOp in issue order. The caller owns the
  /// vector. Unsynchronized by design — arm it only around code that
  /// issues device traffic from a single thread (the pipeline thread;
  /// pool workers never touch the device).
  void setOpLog(std::vector<GpuOp> *Log) { OpLog = Log; }

  /// The device's staging-buffer timeline model (see GpuStagingModel).
  GpuStagingModel &staging() { return Staging; }

  /// Identity among the host's modelled GPUs (0-based). Device 0 is
  /// the pipeline's primary (its op chain replays on the Resource::Gpu
  /// timeline lane); the multi-GPU backend numbers extra devices and
  /// gives each its own aux timeline lanes. Charges always land on the
  /// shared per-resource busy accumulators regardless of index.
  void setDeviceIndex(unsigned Index) { DeviceIndex = Index; }
  unsigned deviceIndex() const { return DeviceIndex; }

  /// Attaches a fault injector (null detaches; must outlive the
  /// device). Call before any traffic.
  void setFaultInjector(fault::FaultInjector *Injector) {
    Faults = Injector;
  }

  /// The cost model the device was built with.
  const CostModel &costModel() const { return Model; }

private:
  /// Shared body of launchKernel/dispatchResident: \p FixedUs is the
  /// pre-execution latency (LaunchUs or the doorbell).
  fault::Status submitKernel(KernelFamily Family, double FixedUs,
                             double ExecMicros,
                             const std::function<void()> &Body);

  CostModel Model;
  ResourceLedger &Ledger;
  fault::FaultInjector *Faults = nullptr;
  std::vector<GpuOp> *OpLog = nullptr;
  GpuStagingModel Staging;
  unsigned DeviceIndex = 0;
  std::atomic<std::uint64_t> MemoryUsed{0};
  std::atomic<bool> MixedMode{false};
  std::atomic<std::uint64_t> LaunchCounts[KernelFamilyCount];
  // Observability (null = disabled). Counter pointers are cached at
  // setObs time so the hot path never touches the registry lock.
  obs::TraceRecorder *Trace = nullptr;
  obs::Counter *LaunchCounters[KernelFamilyCount] = {};
  obs::Counter *BytesH2d = nullptr;
  obs::Counter *BytesD2h = nullptr;
};

} // namespace padre

#endif // PADRE_GPU_GPUDEVICE_H
