//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build an inline data-reduction pipeline, push a write
/// stream through it, read it back, and print the report.
///
/// This is the 60-second tour of the public API:
///   1. pick a Platform (the calibrated hardware model),
///   2. configure a ReductionPipeline (integration mode, chunk size),
///   3. write() your data, finish(), verify, report().
///
//===----------------------------------------------------------------------===//

#include "core/ReductionPipeline.h"
#include "workload/VdbenchStream.h"

#include <cstdio>

using namespace padre;

int main() {
  // 1. The hardware model: the paper's testbed (i7-3770K, HD 7970,
  //    SSD 830). Platform::noGpu()/weakGpu()/fastGpu() are also
  //    available, or build your own CostModel.
  const Platform Plat = Platform::paper();

  // 2. The pipeline: GPU-for-compression is the paper's winning
  //    integration (§4(3)); 4 KiB chunks match primary-storage writes.
  PipelineConfig Config;
  Config.Mode = PipelineMode::GpuCompress;
  Config.ChunkSize = 4096;
  Config.Dedup.Index.BinBits = 8; // 256 bins for this small demo
  ReductionPipeline Pipeline(Plat, Config);

  // 3. Some data: a vdbench-style stream with dedup ratio 2.0 and
  //    compression ratio 2.0 — "a common ratio for primary storage
  //    systems" (§4). Any ByteSpan works here; this generator just
  //    gives us controllable redundancy.
  WorkloadConfig Load;
  Load.TotalBytes = 16ull << 20;
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  const ByteVector Data = VdbenchStream(Load).generateAll();

  // 4. Write it through the inline reduction path.
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();

  // 5. Read back and verify byte-exact reconstruction.
  if (!Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size()))) {
    std::fprintf(stderr, "error: read-back verification failed\n");
    return 1;
  }

  // 6. The measurement report (modelled time; see DESIGN.md §1).
  const PipelineReport Report = Pipeline.report();
  std::printf("wrote %s through mode '%s' — verified OK\n\n",
              formatSize(Data.size()).c_str(),
              pipelineModeName(Config.Mode));
  std::printf("%s\n", Report.toString().c_str());
  std::printf("\nstored %s for %s of logical data (%.2fx total "
              "reduction)\n",
              formatSize(Report.StoredBytes).c_str(),
              formatSize(Report.LogicalBytes).c_str(),
              Report.ReductionRatio);
  return 0;
}
