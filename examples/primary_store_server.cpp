//===----------------------------------------------------------------------===//
///
/// \file
/// A primary-storage server scenario: one SSD-backed volume serving
/// several tenants whose write streams have very different reduction
/// characteristics — the workload mix the paper's introduction
/// motivates (virtual desktops dedup well; databases compress well;
/// media does neither).
///
/// The server ingests interleaved tenant writes through the inline
/// reduction pipeline, prints per-phase telemetry, then verifies every
/// tenant's data byte-exact and reports capacity and endurance
/// savings.
///
//===----------------------------------------------------------------------===//

#include "core/Calibrator.h"
#include "core/ReductionPipeline.h"
#include "workload/VdbenchStream.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace padre;

namespace {

struct Tenant {
  const char *Name;
  double DedupRatio;
  double CompressRatio;
  std::uint64_t BytesPerPhase;
  std::uint64_t Seed;
  ByteVector AllData; ///< accumulated for final verification
};

} // namespace

int main() {
  const Platform Plat = Platform::paper();

  // Mount-time calibration (§4(3)): probe the integration modes with
  // dummy I/O and let the winner serve the volume.
  CalibratorConfig CalConfig;
  CalConfig.Base.Dedup.Index.BinBits = 8;
  const CalibrationResult Calibration = calibrate(Plat, CalConfig);
  std::printf("mount-time calibration on %s:\n%s\n", Plat.Name.c_str(),
              Calibration.summary().c_str());

  PipelineConfig Config;
  Config.Mode = Calibration.BestMode;
  Config.Dedup.Index.BinBits = 10;
  Config.Dedup.Index.BufferCapacityPerBin = 16;
  ReductionPipeline Volume(Plat, Config);

  std::vector<Tenant> Tenants = {
      // Virtual desktops: heavy cross-image redundancy, decent text.
      {"vdi-pool", 4.0, 2.0, 6ull << 20, 101, {}},
      // OLTP database pages: few duplicates, compress well.
      {"oltp-db", 1.2, 3.0, 4ull << 20, 202, {}},
      // Media assets: already-compressed, nearly incompressible.
      {"media", 1.0, 1.05, 2ull << 20, 303, {}},
  };

  const unsigned Phases = 4;
  std::printf("serving %zu tenants for %u phases (mode %s)\n\n",
              Tenants.size(), Phases, pipelineModeName(Config.Mode));
  std::printf("%-8s %-10s %10s %12s %10s %10s\n", "phase", "tenant",
              "MiB", "IOPS (K)", "dedup", "reduce");

  for (unsigned Phase = 0; Phase < Phases; ++Phase) {
    for (Tenant &T : Tenants) {
      WorkloadConfig Load;
      Load.TotalBytes = T.BytesPerPhase;
      Load.DedupRatio = T.DedupRatio;
      Load.CompressRatio = T.CompressRatio;
      // Phase-dependent seed: fresh data each phase, but rewriting the
      // same tenant keys some cross-phase duplication for VDI.
      Load.Seed = T.Seed + (T.DedupRatio > 2.0 ? Phase / 2 : Phase);
      const ByteVector Data = VdbenchStream(Load).generateAll();

      const PipelineReport Before = Volume.report();
      Volume.write(ByteSpan(Data.data(), Data.size()));
      const PipelineReport After = Volume.report();
      appendBytes(T.AllData, ByteSpan(Data.data(), Data.size()));

      const double PhaseIops =
          After.MakespanSec > Before.MakespanSec
              ? static_cast<double>(After.LogicalChunks -
                                    Before.LogicalChunks) /
                    (After.MakespanSec - Before.MakespanSec)
              : 0.0;
      std::printf("%-8u %-10s %10.1f %12.1f %9.2fx %9.2fx\n", Phase,
                  T.Name,
                  static_cast<double>(Data.size()) / (1 << 20),
                  PhaseIops / 1e3, After.DedupRatio,
                  After.ReductionRatio);
    }
  }
  Volume.finish();

  // Verify every tenant's entire history byte-exact. Tenants were
  // interleaved, so this exercises recipes spanning the whole run.
  const auto Full = Volume.readBack();
  if (!Full) {
    std::fprintf(stderr, "error: volume read-back failed\n");
    return 1;
  }
  // The recipe is in write order: phases x tenants.
  std::size_t Offset = 0;
  for (unsigned Phase = 0; Phase < Phases; ++Phase) {
    for (Tenant &T : Tenants) {
      const std::size_t PhaseBytes = T.BytesPerPhase;
      const std::size_t TenantOffset = Phase * PhaseBytes;
      if (!std::equal(Full->begin() + Offset,
                      Full->begin() + Offset + PhaseBytes,
                      T.AllData.begin() + TenantOffset)) {
        std::fprintf(stderr, "error: tenant %s phase %u corrupt\n",
                     T.Name, Phase);
        return 1;
      }
      Offset += PhaseBytes;
    }
  }

  const PipelineReport Report = Volume.report();
  std::printf("\nall tenant data verified byte-exact (%s logical)\n",
              formatSize(Report.LogicalBytes).c_str());
  std::printf("\nvolume summary:\n%s\n", Report.toString().c_str());
  std::printf("\ncapacity: %s logical -> %s on flash (%.2fx); NAND wear "
              "%.0f%% of a reduction-less volume\n",
              formatSize(Report.LogicalBytes).c_str(),
              formatSize(Report.StoredBytes).c_str(),
              Report.ReductionRatio,
              static_cast<double>(Report.SsdNandBytes) /
                  static_cast<double>(Report.SsdHostBytes) * 100.0);
  return 0;
}
