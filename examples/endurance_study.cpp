//===----------------------------------------------------------------------===//
///
/// \file
/// Endurance study: the §1 motivation quantified over a device
/// lifetime. A primary volume absorbs repeated overwrite cycles under
/// three policies — no reduction, background reduction, inline
/// reduction — and the study projects how many workload cycles each
/// policy sustains before the SSD's rated NAND-write budget is spent.
///
//===----------------------------------------------------------------------===//

#include "core/ReductionPipeline.h"
#include "ssd/SsdModel.h"
#include "workload/VdbenchStream.h"

#include <cstdio>

using namespace padre;

int main() {
  const Platform Plat = Platform::paper();

  // One workload cycle: a full working-set overwrite.
  WorkloadConfig Load;
  Load.TotalBytes = 8ull << 20;
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  Load.Seed = 5150;
  const unsigned Cycles = 5;

  // Policy 1: no reduction — every cycle destages raw.
  ResourceLedger LedgerNone;
  SsdModel None(Plat.Model, LedgerNone);

  // Policy 2: background reduction — every cycle destages raw, then
  // the idle-time reducer rewrites the reduced copy.
  ResourceLedger LedgerBg;
  SsdModel Bg(Plat.Model, LedgerBg);

  // Policy 3: inline reduction — the pipeline destages reduced data
  // only. (Repeat-cycle duplicates dedup against earlier cycles.)
  PipelineConfig Config;
  Config.Dedup.Index.BinBits = 10;
  ReductionPipeline Inline(Plat, Config);

  std::printf("%8s %18s %18s %18s\n", "cycle", "none NAND (MiB)",
              "background (MiB)", "inline (MiB)");
  for (unsigned Cycle = 0; Cycle < Cycles; ++Cycle) {
    // Each cycle rewrites the working set with partial changes: the
    // seed advances every other cycle, so half the cycles are exact
    // overwrites (dedup catches them) and half bring fresh data.
    WorkloadConfig CycleLoad = Load;
    CycleLoad.Seed = Load.Seed + Cycle / 2;
    const ByteVector Data = VdbenchStream(CycleLoad).generateAll();

    None.noteHostWrite(Data.size());
    None.writeSequential(Data.size());

    Bg.noteHostWrite(Data.size());
    Bg.writeSequential(Data.size()); // inline raw destage
    // The background pass later rewrites the reduced copy; reuse the
    // inline pipeline's reduction ratio as the reducer's outcome.
    const std::uint64_t StoredBefore = Inline.report().StoredBytes;
    Inline.write(ByteSpan(Data.data(), Data.size()));
    const std::uint64_t CycleStored =
        Inline.report().StoredBytes - StoredBefore;
    Bg.writeSequential(CycleStored);

    std::printf("%8u %18.1f %18.1f %18.1f\n", Cycle,
                static_cast<double>(None.nandBytesWritten()) / (1 << 20),
                static_cast<double>(Bg.nandBytesWritten()) / (1 << 20),
                static_cast<double>(Inline.report().SsdNandBytes) /
                    (1 << 20));
  }
  Inline.finish();

  const PipelineReport Report = Inline.report();
  const double NoneRatio = None.enduranceRatio();
  const double BgRatio = Bg.enduranceRatio();
  const double InlineRatio =
      static_cast<double>(Report.SsdNandBytes) /
      static_cast<double>(Report.SsdHostBytes);

  std::printf("\nNAND bytes per host byte:  none %.2f   background %.2f   "
              "inline %.2f\n",
              NoneRatio, BgRatio, InlineRatio);

  // Lifetime projection: a 256 GB-class consumer SSD is rated for
  // roughly 3000 P/E cycles -> ~750 TB of NAND writes.
  const double NandBudgetTb = 750.0;
  std::printf("\nprojected lifetime (host TB until the NAND budget of "
              "%.0f TB is spent):\n",
              NandBudgetTb);
  std::printf("  no reduction          %8.0f TB\n", NandBudgetTb / NoneRatio);
  std::printf("  background reduction  %8.0f TB  (worse than no "
              "reduction — §1's point)\n",
              NandBudgetTb / BgRatio);
  std::printf("  inline reduction      %8.0f TB  (%.1fx the no-reduction "
              "lifetime)\n",
              NandBudgetTb / InlineRatio, NoneRatio / InlineRatio);

  if (!(BgRatio > NoneRatio && InlineRatio < NoneRatio)) {
    std::fprintf(stderr, "error: endurance ordering violated\n");
    return 1;
  }
  return 0;
}
