//===----------------------------------------------------------------------===//
///
/// \file
/// Platform tuning: §4(3)'s point that no static integration choice is
/// right everywhere. For each hardware profile this example runs the
/// mount-time dummy-I/O calibration, deploys the selected mode on a
/// real workload, and quantifies what the calibration bought compared
/// with two static policies ("always CPU-only" and "always
/// GPU-everything").
///
//===----------------------------------------------------------------------===//

#include "core/Calibrator.h"
#include "core/ReductionPipeline.h"
#include "workload/VdbenchStream.h"

#include <cstdio>

using namespace padre;

namespace {

/// Deploys \p Mode on \p Plat for the full workload; returns IOPS.
double deploy(const Platform &Plat, PipelineMode Mode,
              const ByteVector &Data) {
  PipelineConfig Config;
  Config.Mode = Mode;
  Config.Dedup.Index.BinBits = 8;
  ReductionPipeline Pipeline(Plat, Config);
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  return Pipeline.report().ThroughputIops;
}

bool feasible(const Platform &Plat, PipelineMode Mode) {
  return Plat.Model.Gpu.Present ||
         (!modeOffloadsDedup(Mode) && !modeOffloadsCompression(Mode));
}

} // namespace

int main() {
  WorkloadConfig Load;
  Load.TotalBytes = 16ull << 20;
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  const ByteVector Data = VdbenchStream(Load).generateAll();

  std::printf("deploying a %s stream (dedup 2.0 / comp 2.0) on four "
              "platforms\n\n",
              formatSize(Data.size()).c_str());

  for (const Platform &Plat : Platform::allProfiles()) {
    CalibratorConfig CalConfig;
    CalConfig.Base.Dedup.Index.BinBits = 8;
    const CalibrationResult Calibration = calibrate(Plat, CalConfig);

    const double Calibrated = deploy(Plat, Calibration.BestMode, Data);
    const double AlwaysCpu = deploy(Plat, PipelineMode::CpuOnly, Data);
    const double AlwaysGpu =
        feasible(Plat, PipelineMode::GpuBoth)
            ? deploy(Plat, PipelineMode::GpuBoth, Data)
            : 0.0;

    std::printf("platform %-34s calibration picks %-12s\n",
                Plat.Name.c_str(),
                pipelineModeName(Calibration.BestMode));
    std::printf("  calibrated choice     %8.1fK IOPS\n", Calibrated / 1e3);
    std::printf("  static cpu-only       %8.1fK IOPS (%+.1f%% vs "
                "calibrated)\n",
                AlwaysCpu / 1e3, (AlwaysCpu / Calibrated - 1.0) * 100.0);
    if (AlwaysGpu > 0.0)
      std::printf("  static gpu-everything %8.1fK IOPS (%+.1f%% vs "
                  "calibrated)\n",
                  AlwaysGpu / 1e3, (AlwaysGpu / Calibrated - 1.0) * 100.0);
    else
      std::printf("  static gpu-everything        infeasible (no GPU)\n");
    std::printf("\n");
  }

  std::printf("takeaway (§4(3)): \"we cannot guarantee that this "
              "integration is always right\" —\nthe dummy-I/O probe picks "
              "the right mode per platform, so no static policy wins "
              "everywhere.\n");
  return 0;
}
