//===----------------------------------------------------------------------===//
///
/// \file
/// A VDI clone farm on a storage pool: the operational showcase for
/// cross-volume deduplication. One golden desktop image is cloned for
/// a fleet of users; every clone boots (hot reads through the shared
/// cache), diverges a little (user data), gets snapshotted for backup,
/// and one departing user's desktop is deleted — all while the pool
/// stores the common bits exactly once.
///
//===----------------------------------------------------------------------===//

#include "core/StoragePool.h"
#include "workload/Trace.h"

#include <cstdio>
#include <vector>

using namespace padre;

namespace {

constexpr std::size_t BlockSize = 4096;
constexpr std::uint64_t ImageBlocks = 768; // 3 MiB golden image

void printPool(const StoragePool &Pool, const char *When) {
  const PoolStats Stats = Pool.stats();
  std::printf("  %-30s volumes=%llu logical=%s physical=%s "
              "(%.1fx reduction)\n",
              When, static_cast<unsigned long long>(Stats.Volumes),
              formatSize(Stats.LogicalBytes).c_str(),
              formatSize(Stats.PhysicalBytes).c_str(),
              Stats.reductionRatio());
}

ByteVector imageBlock(std::uint64_t Index) {
  ByteVector Data(BlockSize);
  fillTraceBlock(Index, MutableByteSpan(Data.data(), Data.size()));
  return Data;
}

} // namespace

int main() {
  PipelineConfig Config;
  Config.Mode = PipelineMode::GpuCompress;
  Config.Dedup.Index.BinBits = 10;
  Config.ReadCacheBytes = 2 << 20; // boot blocks are hot
  StoragePool Pool(Platform::paper(), Config);

  // Provision six user desktops from the golden image.
  ByteVector Golden;
  for (std::uint64_t I = 0; I < ImageBlocks; ++I)
    appendBytes(Golden, ByteSpan(imageBlock(I).data(), BlockSize));
  std::vector<Volume *> Desktops;
  for (int User = 0; User < 6; ++User) {
    Volume &Vol = Pool.createVolume(1024);
    if (!Vol.writeBlocks(0, ByteSpan(Golden.data(), Golden.size()))) {
      std::fprintf(stderr, "error: provisioning failed\n");
      return 1;
    }
    Desktops.push_back(&Vol);
  }
  printPool(Pool, "after provisioning 6 clones");

  // Boot storm: every desktop reads the same first 256 blocks.
  for (Volume *Desktop : Desktops)
    if (!Desktop->readBlocks(0, 256))
      return 1;
  const ChunkCache *Cache = Pool.pipeline().readCache();
  std::printf("  boot storm: %.0f%% of reads served from the shared "
              "cache (%llu hits, %llu misses)\n",
              Cache->hitRate() * 100.0,
              static_cast<unsigned long long>(Cache->hits()),
              static_cast<unsigned long long>(Cache->misses()));

  // Each user writes some private data past the image.
  for (std::size_t User = 0; User < Desktops.size(); ++User) {
    ByteVector Private;
    for (std::uint64_t I = 0; I < 64; ++I)
      appendBytes(Private,
                  ByteSpan(imageBlock(10000 * (User + 1) + I).data(),
                           BlockSize));
    if (!Desktops[User]->writeBlocks(ImageBlocks,
                                     ByteSpan(Private.data(),
                                              Private.size())))
      return 1;
  }
  printPool(Pool, "after per-user private data");

  // Nightly backup: snapshot every desktop (nearly free).
  std::vector<Volume::SnapshotId> Backups;
  for (Volume *Desktop : Desktops)
    Backups.push_back(Desktop->createSnapshot());
  printPool(Pool, "after nightly snapshots");

  // One user leaves: wipe their desktop and its backup.
  Desktops[5]->deleteSnapshot(Backups[5]);
  Desktops[5]->trim(0, Desktops[5]->blockCount());
  const std::size_t Freed = Pool.collectGarbage();
  printPool(Pool, "after retiring one desktop");
  std::printf("  (GC reclaimed %zu chunks — the user's private data; "
              "the golden image stays shared)\n",
              Freed);

  // Everyone else's data is intact and healthy.
  for (std::size_t User = 0; User < 5; ++User) {
    const auto Boot = Desktops[User]->readBlocks(0, ImageBlocks);
    if (!Boot ||
        !std::equal(Boot->begin(), Boot->end(), Golden.begin())) {
      std::fprintf(stderr, "error: desktop %zu corrupted\n", User);
      return 1;
    }
  }
  const Volume::ScrubReport Scrub = Desktops[0]->scrub();
  std::printf("  scrub: %llu chunks, %llu corrupt\n",
              static_cast<unsigned long long>(Scrub.ChunksScanned),
              static_cast<unsigned long long>(Scrub.CorruptChunks));
  if (Scrub.CorruptChunks != 0)
    return 1;

  std::printf("\ntakeaway: the pool's shared dedup domain stores the "
              "golden image once for\nthe whole fleet; clones, backups "
              "and departures only move reference counts.\n");
  return 0;
}
