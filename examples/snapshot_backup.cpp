//===----------------------------------------------------------------------===//
///
/// \file
/// Snapshot-based backup workflow on a deduplicated volume: the
/// operational pattern primary storage arrays sell — frequent
/// near-free snapshots, divergence-priced retention, scrub-verified
/// integrity, and point-in-time restore.
///
/// Day 0: provision a volume and load a dataset.
/// Days 1..3: take a snapshot, then mutate part of the working set.
/// Then: restore a file from an old snapshot, scrub, retire the oldest
/// snapshots, and show how space tracks divergence.
///
//===----------------------------------------------------------------------===//

#include "core/TraceRunner.h"
#include "core/Volume.h"
#include "persist/VolumeImage.h"
#include "workload/Trace.h"

#include <cstdio>
#include <vector>

using namespace padre;

namespace {

constexpr std::size_t BlockSize = 4096;
constexpr std::uint64_t VolumeBlocks = 2048;

/// Writes `Blocks` blocks of day-specific content at `Lba`.
void writeRegion(Volume &Vol, std::uint64_t Lba, std::uint64_t Blocks,
                 std::uint64_t DayTag) {
  ByteVector Data(Blocks * BlockSize);
  for (std::uint64_t I = 0; I < Blocks; ++I)
    fillTraceBlock(DayTag * 100000 + Lba + I,
                   MutableByteSpan(Data.data() + I * BlockSize, BlockSize));
  if (!Vol.writeBlocks(Lba, ByteSpan(Data.data(), Data.size()))) {
    std::fprintf(stderr, "error: write rejected\n");
    std::exit(1);
  }
}

void printSpace(const Volume &Vol, const char *When) {
  const VolumeStats Stats = Vol.stats();
  std::printf("  %-28s mapped=%4llu  live chunks=%4llu  physical=%s  "
              "snapshots=%llu\n",
              When, static_cast<unsigned long long>(Stats.MappedBlocks),
              static_cast<unsigned long long>(Stats.LiveChunks),
              formatSize(Stats.PhysicalBytes).c_str(),
              static_cast<unsigned long long>(Stats.Snapshots));
}

} // namespace

int main() {
  PipelineConfig Config;
  Config.Mode = PipelineMode::GpuCompress; // the paper's winner
  Config.Dedup.Index.BinBits = 10;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = VolumeBlocks;
  Volume Vol(Pipeline, VolConfig);

  // Day 0: initial dataset (1024 blocks = 4 MiB working set).
  writeRegion(Vol, 0, 1024, /*DayTag=*/0);
  printSpace(Vol, "day 0 (initial load)");

  // Days 1..3: snapshot, then mutate an eighth of the working set.
  std::vector<Volume::SnapshotId> Backups;
  for (std::uint64_t Day = 1; Day <= 3; ++Day) {
    Backups.push_back(Vol.createSnapshot());
    writeRegion(Vol, (Day - 1) * 128, 128, Day);
    Vol.collectGarbage();
    char Label[32];
    std::snprintf(Label, sizeof(Label), "day %llu (after changes)",
                  static_cast<unsigned long long>(Day));
    printSpace(Vol, Label);
  }

  // Point-in-time restore: block 0 as of the day-1 backup (before the
  // day-1 changes overwrote it) back onto a spare region.
  const auto OldBlock = Vol.readSnapshotBlocks(Backups[0], 0, 1);
  if (!OldBlock) {
    std::fprintf(stderr, "error: snapshot read failed\n");
    return 1;
  }
  ByteVector Day0Expected(BlockSize);
  fillTraceBlock(0 * 100000 + 0, MutableByteSpan(Day0Expected.data(),
                                               BlockSize));
  if (*OldBlock != Day0Expected) {
    std::fprintf(stderr, "error: snapshot content mismatch\n");
    return 1;
  }
  Vol.writeBlocks(1500, ByteSpan(OldBlock->data(), OldBlock->size()));
  std::printf("\nrestored block 0 from the day-1 backup to LBA 1500 "
              "(verified)\n");

  // Integrity: scrub every chunk the volume tracks.
  const Volume::ScrubReport Scrub = Vol.scrub();
  std::printf("scrub: %llu chunks scanned, %llu corrupt\n",
              static_cast<unsigned long long>(Scrub.ChunksScanned),
              static_cast<unsigned long long>(Scrub.CorruptChunks));
  if (Scrub.CorruptChunks != 0)
    return 1;

  // Retention: retire the two oldest backups; space returns as the
  // exclusively-referenced day-0 chunks die.
  Vol.deleteSnapshot(Backups[0]);
  Vol.deleteSnapshot(Backups[1]);
  const std::size_t Freed = Vol.collectGarbage();
  char Label[48];
  std::snprintf(Label, sizeof(Label), "after retiring 2 backups (%zu "
                "chunks freed)", Freed);
  printSpace(Vol, Label);

  std::printf("\ntakeaway: snapshots on a deduplicated volume cost only "
              "the divergence\nsince the snapshot — retention policy is "
              "a space/history dial, not a full-copy tax.\n");
  return 0;
}
