//===----------------------------------------------------------------------===//
///
/// \file
/// Observability: attach a TraceRecorder and MetricsRegistry to a
/// pipeline run, then inspect where the modelled time went.
///
/// The tour:
///   1. create the sinks and point PipelineConfig::Trace/Metrics at
///      them (both are optional and independent),
///   2. run a write stream as usual,
///   3. read per-lane stage totals straight off the recorder,
///   4. export padre_trace.json (open in Perfetto or chrome://tracing)
///      and padre_metrics.prom (Prometheus text format).
///
/// Every span/metric name is catalogued in OBSERVABILITY.md. The same
/// sinks are reachable from the CLI: `padrectl run --trace-out=t.json
/// --metrics-out=m.prom`.
///
//===----------------------------------------------------------------------===//

#include "core/ReductionPipeline.h"
#include "workload/VdbenchStream.h"

#include <cstdio>

using namespace padre;

int main() {
  // 1. The sinks. Non-owning pointers in the config: a null pointer
  //    (the default) keeps the whole layer disabled and free.
  obs::TraceRecorder Trace;
  obs::MetricsRegistry Metrics;

  PipelineConfig Config;
  Config.Mode = PipelineMode::GpuCompress;
  Config.Dedup.Index.BinBits = 8;
  Config.Trace = &Trace;
  Config.Metrics = &Metrics;
  ReductionPipeline Pipeline(Platform::paper(), Config);

  // 2. A stream with some redundancy to light up the dedup tiers.
  WorkloadConfig Load;
  Load.TotalBytes = 16ull << 20;
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  const ByteVector Data = VdbenchStream(Load).generateAll();
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();

  // 3. Stage spans tile each lane's busy-time clock, so the per-lane
  //    stage totals ARE the report's busy times (tests assert ±1 µs).
  const PipelineReport Report = Pipeline.report();
  std::printf("recorded %zu spans over %s of writes\n\n",
              Trace.spanCount(), formatSize(Data.size()).c_str());
  std::printf("%-6s %14s %14s\n", "lane", "stage spans", "report busy");
  for (unsigned R = 0; R < ResourceCount; ++R) {
    const Resource Lane = static_cast<Resource>(R);
    const double StageUs = Trace.laneTotalUs(Lane, obs::CategoryStage);
    const double BusySec = R == static_cast<unsigned>(Resource::CpuPool)
                               ? Report.CpuBusySec
                           : R == static_cast<unsigned>(Resource::Gpu)
                               ? Report.GpuBusySec
                           : R == static_cast<unsigned>(Resource::Pcie)
                               ? Report.PcieBusySec
                           : R == static_cast<unsigned>(Resource::Ssd)
                               ? Report.SsdBusySec
                               : 0.0;
    std::printf("%-6s %12.0fus %12.0fus\n", resourceName(Lane), StageUs,
                BusySec * 1e6);
  }

  // 4. Metrics are queryable in-process too, not just via the export.
  if (const obs::Counter *Dups =
          Metrics.findCounter("padre_dup_chunks_total{tier=\"buffer\"}"))
    std::printf("\nbin-buffer duplicate hits: %llu\n",
                static_cast<unsigned long long>(Dups->value()));
  if (const obs::LogHistogram *Latency =
          Metrics.findHistogram("padre_chunk_latency_us"))
    std::printf("chunk latency: %llu observations, mean %.1f us\n",
                static_cast<unsigned long long>(Latency->count()),
                Latency->count() ? Latency->sum() / Latency->count() : 0.0);

  // 5. Export for the real tools.
  if (!Trace.writeChromeJson("padre_trace.json") ||
      !Metrics.writePrometheus("padre_metrics.prom")) {
    std::fprintf(stderr, "error: failed to write trace/metrics files\n");
    return 1;
  }
  std::printf("\nwrote padre_trace.json (Perfetto / chrome://tracing) and "
              "padre_metrics.prom\n");
  return 0;
}
