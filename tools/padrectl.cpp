//===----------------------------------------------------------------------===//
///
/// \file
/// padrectl — command-line driver for the padre library.
///
/// Subcommands:
///   info                         platform profiles + model constants
///   calibrate [options]          dummy-I/O integration calibration
///   run       [options]          pipeline run on a synthetic stream
///   volume    [options]          LBA volume demo: writes, overwrites,
///                                TRIM, GC, image save/load round trip
///   trace     [options]          synthesize (or --trace FILE) and
///                                replay a verified I/O trace
///   replay    [options]          timed trace replay: a shaped
///                                scenario (--scenario) or trace file
///                                through the open-loop latency model,
///                                optionally over the page-level FTL
///                                (--ftl) with measured write
///                                amplification and lifetime
///   restore   [options]          batched read/restore demo: write a
///                                volume, read it back cold then warm
///                                through the restore pipeline
///   recover   [options]          crash-consistency demo: journaled
///                                writes (optionally crashed by a
///                                `crash@<point>` fault plan), then
///                                recovery into a fresh volume with
///                                bit-exact verification of every
///                                acknowledged write
///   serve     [options]          multi-tenant service demo: N tenants
///                                behind weighted-fair dispatch over
///                                one sharded global index, with
///                                quotas and the prioritized cache
///                                tier (see SERVICE.md)
///   tenant    [options]          single-tenant parity check: the same
///                                stream through a direct Volume and
///                                through the VolumeService must be
///                                bit-identical (results and ledger
///                                charges) at the chosen shard count
///
/// Common options:
///   --platform paper|no-gpu|weak-gpu|fast-gpu   (default paper)
///   --mode cpu-only|gpu-dedup|gpu-compress|gpu-both|auto  (default auto)
///   --bytes N        stream size in bytes        (default 16 MiB)
///   --dedup D        workload dedup ratio        (default 2.0)
///   --comp C         workload compression ratio  (default 2.0)
///   --chunk N        chunk size in bytes         (default 4096)
///   --entropy        enable the Huffman entropy stage
///   --verify-dedup   byte-compare every digest match
///   --cache N        read-cache capacity in bytes (default off)
///   --chunking fixed|rabin|fastcdc   (run only; default fixed)
///   --threads N      override the platform's CPU thread count (run)
///   --seed N         workload seed               (default 42)
///   --image PATH     (volume) save/load the volume image here
///   --read-batch N   restore batch depth          (default 256)
///   --read-mode cpu|gpu|warp|auto   restore decode mode (default auto)
///   --sub-blocks N   framed sub-blocks per chunk (1 = unframed v1;
///                    >1 stores decode-v2 frames the warp mode needs)
///   --backends cpu,gpu,gpu2   enable the multi-backend splitter over
///                    the listed backends (gpu2 = two modelled GPUs);
///                    write batches are domain-decomposed across them
///   --split auto|cpu|gpu   splitter policy (default auto: the
///                    occupancy-balancing tuner picks the fraction)
///   --tuner-window N EWMA window of the splitter's rate tuner
///   --readahead N    restore readahead chunks per run (default 8)
///   --journal PATH       (recover) metadata WAL path (padre.wal)
///   --checkpoint PATH    (recover) checkpoint path (padre.ckpt)
///   --group-commit N     (recover) ops per group commit (default 1)
///   --checkpoint-every N (recover) checkpoint every N ops (default 0)
///   --tenants N          (serve) tenant count            (default 3)
///   --rounds N           (serve) dispatch rounds         (default 12)
///   --shards N           (serve/tenant) index shards     (default 4)
///   --index-budget N     (serve) inline index budget, bytes (default 0
///                        = unlimited / pass-through)
///   --policy prioritized|lru   (serve) cache-tier policy
///   --quota N            (serve) per-tenant quota, bytes (default 0)
///   --fault-plan SPEC  deterministic fault injection (DESIGN.md):
///       seed=N;retries=N;<site>:<kind>:<trigger>[;...]
///   --trace-out FILE.json    write a Chrome trace_event span file
///                            (open in Perfetto / about:tracing)
///   --metrics-out FILE.prom  write Prometheus text-format metrics
///   --scenario SHAPE     (replay) sequential|uniform|skewed-hot|
///                        bursty-hot|day-night  (default skewed-hot)
///   --gc-every N         (replay) run volume GC every N ops
///   --raw                (replay) bypass reduction (writeBlocksRaw)
///   --ftl                (replay) page-level FTL under the SSD model
///   --ftl-blocks N  --ftl-pages-per-block N  --ftl-op PCT
///                        (replay) FTL geometry and over-provisioning
///
/// Options also accept the --opt=value spelling. See OBSERVABILITY.md
/// for the span schema and metric catalogue.
///
//===----------------------------------------------------------------------===//

#include "backend/AutoSplitter.h"
#include "core/Calibrator.h"
#include "core/TraceRunner.h"
#include "core/Volume.h"
#include "service/VolumeService.h"
#include "util/Random.h"
#include "journal/JournaledVolume.h"
#include "journal/Recovery.h"
#include "obs/Obs.h"
#include "persist/VolumeImage.h"
#include "restore/VolumeReader.h"
#include "workload/Scenario.h"
#include "workload/VdbenchStream.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

using namespace padre;

namespace {

struct Options {
  std::string Command;
  Platform Plat = Platform::paper();
  std::optional<PipelineMode> Mode; // nullopt = auto (calibrate)
  std::uint64_t Bytes = 16ull << 20;
  double DedupRatio = 2.0;
  double CompressRatio = 2.0;
  std::size_t ChunkSize = 4096;
  bool Entropy = false;
  std::uint64_t Seed = 42;
  std::string ImagePath;
  std::string TracePath;
  std::uint64_t TraceOps = 5000;
  bool VerifyDedup = false;
  std::uint64_t CacheBytes = 0;
  ChunkingMode Chunking = ChunkingMode::Fixed;
  unsigned Threads = 0; // 0 = platform default
  std::string TraceOutPath;
  std::string MetricsOutPath;
  std::size_t ReadBatch = 256;
  restore::DecodeMode ReadMode = restore::DecodeMode::Auto;
  std::size_t Readahead = 8;
  std::size_t PipelineDepth = 4;
  unsigned SubBlocks = 1;
  fault::FaultPlan FaultPlan;
  std::string JournalPath = "padre.wal";
  std::string CheckpointPath = "padre.ckpt";
  std::size_t GroupCommitOps = 1;
  std::size_t CheckpointEveryOps = 0;
  unsigned Tenants = 3;
  std::uint64_t Rounds = 12;
  unsigned Shards = 4;
  std::size_t IndexBudget = 0;
  CachePolicy Policy = CachePolicy::Prioritized;
  std::uint64_t QuotaBytes = 0;
  ScenarioShape Scenario = ScenarioShape::SkewedHot;
  std::uint64_t GcEvery = 0;
  bool BackendEnabled = false;
  bool BackendHasGpu = false;
  unsigned BackendGpuDevices = 1;
  backend::SplitMode Split = backend::SplitMode::Auto;
  unsigned TunerWindow = 0; // 0 = BackendConfig default
  bool RawWrites = false;
  bool FtlOn = false;
  std::uint32_t FtlBlocks = 128;
  std::uint32_t FtlPagesPerBlock = 64;
  double FtlOverprovisionPct = 7.0;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: padrectl "
      "<info|calibrate|run|volume|trace|replay|restore|recover|serve|"
      "tenant> [options]\n"
      "  --platform paper|no-gpu|weak-gpu|fast-gpu\n"
      "  --mode cpu-only|gpu-dedup|gpu-compress|gpu-both|auto\n"
      "  --bytes N  --dedup D  --comp C  --chunk N  --seed N\n"
      "  --entropy  --verify-dedup  --cache N  --chunking "
      "fixed|rabin|fastcdc\n"
      "  --threads N  --image PATH  --trace FILE  --trace-ops N\n"
      "  --trace-out FILE.json  --metrics-out FILE.prom\n"
      "  --read-batch N  --read-mode cpu|gpu|warp|auto  --readahead N\n"
      "  --sub-blocks N       framed sub-blocks per chunk (warp decode)\n"
      "  --backends cpu,gpu,gpu2   multi-backend splitter (gpu2 = two\n"
      "      modelled GPUs)  --split auto|cpu|gpu  --tuner-window N\n"
      "  --pipeline-depth N   in-flight write batches (1 = serial)\n"
      "  --journal PATH  --checkpoint PATH   (recover) WAL/checkpoint\n"
      "  --group-commit N  --checkpoint-every N   (recover) policies\n"
      "  --scenario sequential|uniform|skewed-hot|bursty-hot|day-night\n"
      "  --gc-every N  --raw  --ftl   (replay) GC cadence, raw writes,\n"
      "      page-level FTL; geometry via --ftl-blocks N\n"
      "      --ftl-pages-per-block N  --ftl-op PCT\n"
      "  --tenants N  --rounds N  --quota N   (serve) tenant workload\n"
      "  --shards N  --index-budget N  --policy prioritized|lru\n"
      "      (serve/tenant) sharded global index + cache tier\n"
      "  --fault-plan SPEC   inject faults, e.g.\n"
      "      'seed=7;ssd-read:error:p=0.01;gpu-kernel:hang:every=50'\n"
      "      sites: ssd-read ssd-write gpu-kernel gpu-dma destage\n"
      "      kinds: error timeout ecc hang dma-corrupt bitflip\n"
      "      triggers: p=F | at=N,N,... | every=N   (see DESIGN.md)\n");
}

bool parsePlatform(const std::string &Name, Platform &Out) {
  for (const Platform &Plat : Platform::allProfiles()) {
    if (Plat.Name == Name ||
        (Name == "paper" && Plat.Name.rfind("paper", 0) == 0)) {
      Out = Plat;
      return true;
    }
  }
  return false;
}

bool parseMode(const std::string &Name,
               std::optional<PipelineMode> &Out) {
  if (Name == "auto") {
    Out = std::nullopt;
    return true;
  }
  for (unsigned I = 0; I < PipelineModeCount; ++I)
    if (Name == pipelineModeName(static_cast<PipelineMode>(I))) {
      Out = static_cast<PipelineMode>(I);
      return true;
    }
  return false;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  if (Argc < 2)
    return false;
  Opts.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    // Accept both "--opt value" and "--opt=value".
    std::optional<std::string> Inline;
    if (Arg.rfind("--", 0) == 0) {
      const std::size_t Eq = Arg.find('=');
      if (Eq != std::string::npos) {
        Inline = Arg.substr(Eq + 1);
        Arg.resize(Eq);
      }
    }
    auto NextValue = [&](std::string &Out) {
      if (Inline) {
        Out = *Inline;
        return true;
      }
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    std::string Value;
    if (Arg == "--entropy") {
      Opts.Entropy = true;
    } else if (Arg == "--platform" && NextValue(Value)) {
      if (!parsePlatform(Value, Opts.Plat)) {
        std::fprintf(stderr, "error: unknown platform '%s'\n",
                     Value.c_str());
        return false;
      }
    } else if (Arg == "--mode" && NextValue(Value)) {
      if (!parseMode(Value, Opts.Mode)) {
        std::fprintf(stderr, "error: unknown mode '%s'\n", Value.c_str());
        return false;
      }
    } else if (Arg == "--bytes" && NextValue(Value)) {
      Opts.Bytes = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--dedup" && NextValue(Value)) {
      Opts.DedupRatio = std::strtod(Value.c_str(), nullptr);
    } else if (Arg == "--comp" && NextValue(Value)) {
      Opts.CompressRatio = std::strtod(Value.c_str(), nullptr);
    } else if (Arg == "--chunk" && NextValue(Value)) {
      Opts.ChunkSize = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--seed" && NextValue(Value)) {
      Opts.Seed = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--image" && NextValue(Value)) {
      Opts.ImagePath = Value;
    } else if (Arg == "--trace" && NextValue(Value)) {
      Opts.TracePath = Value;
    } else if (Arg == "--trace-out" && NextValue(Value)) {
      Opts.TraceOutPath = Value;
    } else if (Arg == "--metrics-out" && NextValue(Value)) {
      Opts.MetricsOutPath = Value;
    } else if (Arg == "--trace-ops" && NextValue(Value)) {
      Opts.TraceOps = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--verify-dedup") {
      Opts.VerifyDedup = true;
    } else if (Arg == "--cache" && NextValue(Value)) {
      Opts.CacheBytes = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--read-batch" && NextValue(Value)) {
      Opts.ReadBatch = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--readahead" && NextValue(Value)) {
      Opts.Readahead = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--pipeline-depth" && NextValue(Value)) {
      Opts.PipelineDepth = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--sub-blocks" && NextValue(Value)) {
      Opts.SubBlocks =
          static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (Arg == "--backends" && NextValue(Value)) {
      Opts.BackendEnabled = true;
      std::size_t Pos = 0;
      while (Pos <= Value.size()) {
        const std::size_t Comma = Value.find(',', Pos);
        const std::string Token =
            Value.substr(Pos, Comma == std::string::npos ? std::string::npos
                                                         : Comma - Pos);
        if (Token == "cpu") {
          // Always present; listed for symmetry.
        } else if (Token == "gpu") {
          Opts.BackendHasGpu = true;
        } else if (Token == "gpu2") {
          Opts.BackendHasGpu = true;
          Opts.BackendGpuDevices = 2;
        } else {
          std::fprintf(stderr, "error: unknown backend '%s'\n",
                       Token.c_str());
          return false;
        }
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
    } else if (Arg == "--split" && NextValue(Value)) {
      if (Value == "auto")
        Opts.Split = backend::SplitMode::Auto;
      else if (Value == "cpu")
        Opts.Split = backend::SplitMode::CpuOnly;
      else if (Value == "gpu")
        Opts.Split = backend::SplitMode::GpuOnly;
      else {
        std::fprintf(stderr, "error: unknown split policy '%s'\n",
                     Value.c_str());
        return false;
      }
      // --split implies the splitter over both backends unless
      // --backends narrows it.
      if (!Opts.BackendEnabled) {
        Opts.BackendEnabled = true;
        Opts.BackendHasGpu = true;
      }
    } else if (Arg == "--tuner-window" && NextValue(Value)) {
      Opts.TunerWindow =
          static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
      if (!Opts.BackendEnabled) {
        Opts.BackendEnabled = true;
        Opts.BackendHasGpu = true;
      }
    } else if (Arg == "--read-mode" && NextValue(Value)) {
      if (Value == "cpu")
        Opts.ReadMode = restore::DecodeMode::Cpu;
      else if (Value == "gpu")
        Opts.ReadMode = restore::DecodeMode::Gpu;
      else if (Value == "warp")
        Opts.ReadMode = restore::DecodeMode::WarpGpu;
      else if (Value == "auto")
        Opts.ReadMode = restore::DecodeMode::Auto;
      else {
        std::fprintf(stderr, "error: unknown read mode '%s'\n",
                     Value.c_str());
        return false;
      }
    } else if (Arg == "--journal" && NextValue(Value)) {
      Opts.JournalPath = Value;
    } else if (Arg == "--checkpoint" && NextValue(Value)) {
      Opts.CheckpointPath = Value;
    } else if (Arg == "--group-commit" && NextValue(Value)) {
      Opts.GroupCommitOps = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--checkpoint-every" && NextValue(Value)) {
      Opts.CheckpointEveryOps = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--tenants" && NextValue(Value)) {
      Opts.Tenants =
          static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (Arg == "--rounds" && NextValue(Value)) {
      Opts.Rounds = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--shards" && NextValue(Value)) {
      Opts.Shards =
          static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (Arg == "--index-budget" && NextValue(Value)) {
      Opts.IndexBudget = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--quota" && NextValue(Value)) {
      Opts.QuotaBytes = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--policy" && NextValue(Value)) {
      if (Value == "prioritized")
        Opts.Policy = CachePolicy::Prioritized;
      else if (Value == "lru")
        Opts.Policy = CachePolicy::Lru;
      else {
        std::fprintf(stderr, "error: unknown policy '%s'\n",
                     Value.c_str());
        return false;
      }
    } else if (Arg == "--scenario" && NextValue(Value)) {
      if (!parseScenarioShape(Value, Opts.Scenario)) {
        std::fprintf(stderr, "error: unknown scenario '%s'\n",
                     Value.c_str());
        return false;
      }
    } else if (Arg == "--gc-every" && NextValue(Value)) {
      Opts.GcEvery = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (Arg == "--raw") {
      Opts.RawWrites = true;
    } else if (Arg == "--ftl") {
      Opts.FtlOn = true;
    } else if (Arg == "--ftl-blocks" && NextValue(Value)) {
      Opts.FtlBlocks =
          static_cast<std::uint32_t>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (Arg == "--ftl-pages-per-block" && NextValue(Value)) {
      Opts.FtlPagesPerBlock =
          static_cast<std::uint32_t>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (Arg == "--ftl-op" && NextValue(Value)) {
      Opts.FtlOverprovisionPct = std::strtod(Value.c_str(), nullptr);
    } else if (Arg == "--fault-plan" && NextValue(Value)) {
      std::string Error;
      if (!fault::parseFaultPlan(Value, Opts.FaultPlan, Error)) {
        std::fprintf(stderr, "error: bad fault plan: %s\n", Error.c_str());
        return false;
      }
    } else if (Arg == "--threads" && NextValue(Value)) {
      Opts.Threads =
          static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
    } else if (Arg == "--chunking" && NextValue(Value)) {
      if (Value == "fixed")
        Opts.Chunking = ChunkingMode::Fixed;
      else if (Value == "rabin")
        Opts.Chunking = ChunkingMode::Rabin;
      else if (Value == "fastcdc")
        Opts.Chunking = ChunkingMode::FastCdc;
      else {
        std::fprintf(stderr, "error: unknown chunking '%s'\n",
                     Value.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "error: unknown or incomplete option '%s'\n",
                   Arg.c_str());
      return false;
    }
  }
  if (Opts.Bytes == 0 || Opts.ChunkSize == 0 || Opts.DedupRatio < 1.0 ||
      Opts.CompressRatio < 1.0 || Opts.ReadBatch == 0 ||
      Opts.PipelineDepth == 0 || Opts.Tenants == 0 || Opts.Rounds == 0 ||
      Opts.Shards == 0) {
    std::fprintf(stderr, "error: invalid numeric option\n");
    return false;
  }
  return true;
}

restore::ReadConfig readConfigFor(const Options &Opts) {
  restore::ReadConfig Config;
  Config.BatchDepth = Opts.ReadBatch;
  Config.Mode = Opts.ReadMode;
  Config.ReadaheadChunks = Opts.Readahead;
  return Config;
}

PipelineConfig pipelineConfigFor(const Options &Opts, PipelineMode Mode) {
  PipelineConfig Config;
  Config.Mode = Mode;
  Config.ChunkSize = Opts.ChunkSize;
  Config.Dedup.Index.BinBits = 10;
  Config.Compress.EntropyStage = Opts.Entropy;
  Config.VerifyDuplicates = Opts.VerifyDedup;
  Config.ReadCacheBytes = Opts.CacheBytes;
  Config.Chunking = Opts.Chunking;
  Config.PipelineDepth = Opts.PipelineDepth;
  Config.Compress.SubBlocks = Opts.SubBlocks;
  if (Opts.BackendEnabled) {
    Config.Backend.Enabled = true;
    // Device-capable split modes need a modelled GPU; on a GPU-less
    // platform (or a cpu-only backend list) the splitter degrades to
    // the forced-CPU pass-through.
    const bool DeviceCapable =
        Opts.BackendHasGpu && Opts.Plat.Model.Gpu.Present;
    Config.Backend.Split =
        DeviceCapable ? Opts.Split : backend::SplitMode::CpuOnly;
    Config.Backend.GpuDevices = DeviceCapable ? Opts.BackendGpuDevices : 1;
    if (Opts.TunerWindow != 0)
      Config.Backend.TunerWindow = Opts.TunerWindow;
  }
  return Config;
}

/// Footer after the write-side report: how much of the scheduled wall
/// time each lane occupied, and how much of that occupancy ran under
/// the cover of another lane (E6's overlap story).
void printOverlapSummary(const PipelineReport &Report) {
  if (Report.WallSec <= 0.0)
    return;
  static constexpr Resource Lanes[] = {Resource::CpuPool, Resource::Gpu,
                                       Resource::Pcie, Resource::Ssd};
  std::printf("\noverlap (depth %u, wall %.4fs):\n", Report.PipelineDepth,
              Report.WallSec);
  for (const Resource Lane : Lanes) {
    const unsigned I = static_cast<unsigned>(Lane);
    const double Busy = Report.SchedBusySec[I];
    const double Hidden = Report.SchedHiddenSec[I];
    std::printf("  %-4s busy %.4fs (%5.1f%% of wall), hidden behind "
                "other lanes %5.1f%%\n",
                resourceName(Lane), Busy,
                100.0 * Busy / Report.WallSec,
                Busy > 0.0 ? 100.0 * Hidden / Busy : 0.0);
  }
}

/// Footer after the overlap summary: the splitter's chosen split and
/// the tuner's observed rates (the E12 story in one line).
void printSplitterSummary(const ReductionPipeline &Pipeline) {
  const backend::AutoSplitter *Splitter = Pipeline.splitter();
  if (!Splitter)
    return;
  const backend::SplitterStats &Stats = Splitter->stats();
  std::printf("\nbackend split (%s",
              backend::splitModeName(Splitter->config().Split));
  if (Splitter->deviceCount() > 1)
    std::printf(", %u gpus", Splitter->deviceCount());
  std::printf("): last fraction %.2f gpu / %.2f cpu over %llu batches "
              "(%llu gpu chunks, %llu cpu chunks)\n",
              Stats.Fraction, 1.0 - Stats.Fraction,
              static_cast<unsigned long long>(Stats.Batches),
              static_cast<unsigned long long>(Stats.GpuChunks),
              static_cast<unsigned long long>(Stats.CpuChunks));
  std::printf("  observed rates: cpu %.1f B/us, gpu %.1f B/us "
              "(EWMA of marginal pool occupancy)\n",
              Stats.CpuRateBytesPerUs, Stats.GpuRateBytesPerUs);
}

/// Caller-frame observability sinks for --trace-out / --metrics-out.
/// Only the sinks whose output path was requested are attached, so an
/// unadorned invocation runs with instrumentation fully disabled.
struct ObsOutput {
  obs::TraceRecorder Trace;
  obs::MetricsRegistry Metrics;

  void attach(const Options &Opts, PipelineConfig &Config) {
    if (!Opts.TraceOutPath.empty())
      Config.Trace = &Trace;
    if (!Opts.MetricsOutPath.empty())
      Config.Metrics = &Metrics;
  }

  /// Writes the requested files. Returns false on I/O failure.
  bool write(const Options &Opts) const {
    if (!Opts.TraceOutPath.empty()) {
      if (!Trace.writeChromeJson(Opts.TraceOutPath)) {
        std::fprintf(stderr, "error: cannot write trace %s\n",
                     Opts.TraceOutPath.c_str());
        return false;
      }
      std::printf("trace: %zu spans -> %s (open in Perfetto or "
                  "chrome://tracing)\n",
                  Trace.spanCount(), Opts.TraceOutPath.c_str());
    }
    if (!Opts.MetricsOutPath.empty()) {
      if (!Metrics.writePrometheus(Opts.MetricsOutPath)) {
        std::fprintf(stderr, "error: cannot write metrics %s\n",
                     Opts.MetricsOutPath.c_str());
        return false;
      }
      std::printf("metrics: %s (Prometheus text format)\n",
                  Opts.MetricsOutPath.c_str());
    }
    return true;
  }
};

/// Caller-frame fault injector for --fault-plan: it must outlive the
/// pipeline, like the observability sinks.
struct FaultSetup {
  std::optional<fault::FaultInjector> Injector;

  void attach(const Options &Opts, PipelineConfig &Config) {
    if (Opts.FaultPlan.empty())
      return;
    Injector.emplace(Opts.FaultPlan);
    Config.Faults = &*Injector;
  }

  void summary() const {
    if (!Injector)
      return;
    std::printf("\nfault plan (seed %llu): %llu faults injected",
                static_cast<unsigned long long>(Injector->plan().Seed),
                static_cast<unsigned long long>(Injector->injectedTotal()));
    for (unsigned K = 0; K < fault::FaultKindCount; ++K) {
      const auto Kind = static_cast<fault::FaultKind>(K);
      if (const std::uint64_t N = Injector->injected(Kind))
        std::printf(", %s=%llu", fault::faultKindName(Kind),
                    static_cast<unsigned long long>(N));
    }
    std::printf("\n");
  }
};

PipelineMode resolveMode(const Options &Opts) {
  if (Opts.Mode)
    return *Opts.Mode;
  // With the multi-backend splitter enabled the compress stage belongs
  // to the splitter, not the classic mode — calibration across modes
  // would be answering the wrong question. Dedup stays on the CPU pool
  // (pass --mode gpu-dedup explicitly to offload it).
  if (Opts.BackendEnabled) {
    std::printf("note: --backends routes compression through the "
                "splitter; using cpu-only writes for the other stages "
                "(pass --mode to override)\n\n");
    return PipelineMode::CpuOnly;
  }
  // Sub-block framing lives in the CPU compress path (the GPU lane
  // kernel's streams share history across lane boundaries, so they
  // cannot be reframed). Calibration would otherwise pick an unframed
  // GPU store and silently drop the framing the user asked for.
  if (Opts.SubBlocks > 1) {
    std::printf("note: --sub-blocks %u frames chunks on the CPU "
                "compress path; using cpu-only writes (pass --mode to "
                "override)\n\n",
                Opts.SubBlocks);
    return PipelineMode::CpuOnly;
  }
  CalibratorConfig CalConfig;
  CalConfig.Base = pipelineConfigFor(Opts, PipelineMode::CpuOnly);
  CalConfig.DedupRatio = Opts.DedupRatio;
  CalConfig.CompressRatio = Opts.CompressRatio;
  const CalibrationResult Result = calibrate(Opts.Plat, CalConfig);
  std::printf("calibration on %s:\n%s\n", Opts.Plat.Name.c_str(),
              Result.summary().c_str());
  return Result.BestMode;
}

ByteVector makeStream(const Options &Opts) {
  WorkloadConfig Load;
  Load.BlockSize = Opts.ChunkSize;
  Load.TotalBytes = Opts.Bytes;
  Load.DedupRatio = Opts.DedupRatio;
  Load.CompressRatio = Opts.CompressRatio;
  Load.Seed = Opts.Seed;
  return VdbenchStream(Load).generateAll();
}

int commandInfo() {
  std::printf("padre — parallel inline data reduction (PaCT'17 "
              "reproduction)\n\nplatform profiles:\n");
  for (const Platform &Plat : Platform::allProfiles()) {
    const GpuCosts &Gpu = Plat.Model.Gpu;
    std::printf("  %-36s gpu=%s", Plat.Name.c_str(),
                Gpu.Present ? "yes" : "no");
    if (Gpu.Present)
      std::printf(" launch=%.0fus lzLit=%.2fns/B mem=%.0fMiB pcie=%.1fGB/s",
                  Gpu.LaunchUs, Gpu.LzLiteralPerByteNs, Gpu.DeviceMemoryMiB,
                  Plat.Model.Pcie.GigabytesPerSec);
    std::printf("\n");
  }
  const CostModel Model;
  std::printf("\npaper CPU model: %u threads, request=%.0fus/chunk, "
              "sha1=%.2fns/B, probe=%.1fus, lz(lit)=%.1fns/B\n",
              Model.Cpu.Threads, Model.Cpu.RequestOverheadUs,
              Model.Cpu.HashPerByteNs, Model.Cpu.IndexProbeUs,
              Model.Cpu.LzLiteralPerByteNs);
  std::printf("paper SSD model: %.0fK IOPS (4K), %.0f MB/s sequential "
              "write\n",
              1e3 / Model.Ssd.RandWrite4KUs / 1e3 * 1e3,
              Model.Ssd.SeqWriteMBps);
  return 0;
}

int commandCalibrate(const Options &Opts) {
  CalibratorConfig CalConfig;
  CalConfig.Base = pipelineConfigFor(Opts, PipelineMode::CpuOnly);
  CalConfig.DedupRatio = Opts.DedupRatio;
  CalConfig.CompressRatio = Opts.CompressRatio;
  const CalibrationResult Result = calibrate(Opts.Plat, CalConfig);
  std::printf("platform: %s\n%s", Opts.Plat.Name.c_str(),
              Result.summary().c_str());
  return 0;
}

int commandRun(const Options &OptsIn) {
  Options Opts = OptsIn;
  if (Opts.Threads != 0)
    Opts.Plat.Model.Cpu.Threads = Opts.Threads;
  const PipelineMode Mode = resolveMode(Opts);
  const ByteVector Data = makeStream(Opts);
  ObsOutput Obs;
  FaultSetup Faults;
  PipelineConfig Config = pipelineConfigFor(Opts, Mode);
  Obs.attach(Opts, Config);
  Faults.attach(Opts, Config);
  ReductionPipeline Pipeline(Opts.Plat, Config);
  const fault::Status WriteStatus =
      Pipeline.write(ByteSpan(Data.data(), Data.size()));
  const fault::Status FinishStatus = Pipeline.finish();
  if (!WriteStatus.ok() || !FinishStatus.ok()) {
    const fault::Status &Bad = WriteStatus.ok() ? FinishStatus : WriteStatus;
    std::fprintf(stderr, "error: write failed: %s (detail %llu)\n",
                 Bad.message(),
                 static_cast<unsigned long long>(Bad.detail()));
    return 1;
  }
  if (!Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size()))) {
    std::fprintf(stderr, "error: read-back verification FAILED\n");
    return 1;
  }
  std::printf("mode %s on %s, %s stream (dedup %.1f, comp %.1f%s)\n\n",
              pipelineModeName(Mode), Opts.Plat.Name.c_str(),
              formatSize(Data.size()).c_str(), Opts.DedupRatio,
              Opts.CompressRatio, Opts.Entropy ? ", entropy" : "");
  const PipelineReport WriteReport = Pipeline.report();
  std::printf("%s\n", WriteReport.toString().c_str());
  printOverlapSummary(WriteReport);
  printSplitterSummary(Pipeline);
  std::printf("\nread-back verified byte-exact\n");

  // Read-mix: restore the whole stream through the batched read
  // pipeline and report the read side next to the write side.
  restore::ReadPipeline Reader(Pipeline, readConfigFor(Opts));
  const auto Restored = Reader.readStream(Pipeline.recipe());
  if (!Restored || *Restored != Data) {
    std::fprintf(stderr, "error: batched restore mismatch\n");
    return 1;
  }
  std::printf("\nrestore (decode mode %s):\n%s\n",
              restore::decodeModeName(Reader.effectiveMode()),
              Reader.report().toString().c_str());
  Faults.summary();
  return Obs.write(Opts) ? 0 : 1;
}

int commandVolume(const Options &OptsIn) {
  Options Opts = OptsIn;
  Opts.Chunking = ChunkingMode::Fixed; // LBA volumes need fixed chunks
  const PipelineMode Mode = resolveMode(Opts);
  ObsOutput Obs;
  FaultSetup Faults;
  PipelineConfig Config = pipelineConfigFor(Opts, Mode);
  Obs.attach(Opts, Config);
  Faults.attach(Opts, Config);
  ReductionPipeline Pipeline(Opts.Plat, Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = Opts.Bytes / Opts.ChunkSize;
  Volume Vol(Pipeline, VolConfig);

  const ByteVector Data = makeStream(Opts);
  const std::uint64_t Blocks = Data.size() / Opts.ChunkSize;
  if (!Vol.writeBlocks(0, ByteSpan(Data.data(), Data.size()))) {
    std::fprintf(stderr, "error: initial write rejected\n");
    return 1;
  }
  // Overwrite the first quarter and TRIM the last quarter.
  Vol.writeBlocks(0, ByteSpan(Data.data() + Data.size() / 2,
                              Blocks / 4 * Opts.ChunkSize));
  Vol.trim(Blocks - Blocks / 4, Blocks / 4);
  const std::size_t Collected = Vol.collectGarbage();
  Vol.flush();

  const VolumeStats Stats = Vol.stats();
  std::printf("volume: %llu blocks, %llu mapped, %llu live chunks, "
              "%zu collected by GC\n",
              static_cast<unsigned long long>(Vol.blockCount()),
              static_cast<unsigned long long>(Stats.MappedBlocks),
              static_cast<unsigned long long>(Stats.LiveChunks),
              Collected);
  std::printf("space: %s logical -> %s physical (amplification %.2f)\n",
              formatSize(Stats.LogicalBytes).c_str(),
              formatSize(Stats.PhysicalBytes).c_str(),
              Stats.spaceAmplification());

  if (!Opts.ImagePath.empty()) {
    const ImageResult Saved =
        saveVolumeImage(Opts.ImagePath, Vol, Pipeline);
    if (!Saved.Ok) {
      std::fprintf(stderr, "error: save failed: %s\n",
                   Saved.Message.c_str());
      return 1;
    }
    ReductionPipeline Fresh(Opts.Plat, pipelineConfigFor(Opts, Mode));
    Volume Restored(Fresh, VolConfig);
    const ImageResult Loaded =
        loadVolumeImage(Opts.ImagePath, Fresh, Restored);
    if (!Loaded.Ok) {
      std::fprintf(stderr, "error: load failed: %s\n",
                   Loaded.Message.c_str());
      return 1;
    }
    const auto Original = Vol.readBlocks(0, Vol.blockCount());
    const auto RoundTrip = Restored.readBlocks(0, Restored.blockCount());
    if (!Original || !RoundTrip || *Original != *RoundTrip) {
      std::fprintf(stderr, "error: image round trip mismatch\n");
      return 1;
    }
    std::printf("image: saved to %s and restored byte-exact\n",
                Opts.ImagePath.c_str());
  }
  Faults.summary();
  return Obs.write(Opts) ? 0 : 1;
}

int commandRestore(const Options &OptsIn) {
  Options Opts = OptsIn;
  Opts.Chunking = ChunkingMode::Fixed; // LBA volumes need fixed chunks
  if (Opts.CacheBytes == 0)
    Opts.CacheBytes = 32ull << 20; // restore demo default: 32 MiB cache
  const PipelineMode Mode = resolveMode(Opts);
  ObsOutput Obs;
  FaultSetup Faults;
  PipelineConfig Config = pipelineConfigFor(Opts, Mode);
  Obs.attach(Opts, Config);
  Faults.attach(Opts, Config);
  ReductionPipeline Pipeline(Opts.Plat, Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = Opts.Bytes / Opts.ChunkSize;
  Volume Vol(Pipeline, VolConfig);

  const ByteVector Data = makeStream(Opts);
  const std::uint64_t Blocks = Data.size() / Opts.ChunkSize;
  if (!Vol.writeBlocks(0, ByteSpan(Data.data(), Data.size()))) {
    std::fprintf(stderr, "error: initial write rejected\n");
    return 1;
  }
  Vol.flush();

  restore::VolumeReader Reader(Vol, readConfigFor(Opts));
  std::printf("restore on %s: %s volume, batch depth %zu, readahead "
              "%zu, %s cache, decode mode %s\n",
              Opts.Plat.Name.c_str(), formatSize(Data.size()).c_str(),
              Opts.ReadBatch, Opts.Readahead,
              formatSize(Opts.CacheBytes).c_str(),
              restore::decodeModeName(Reader.pipeline().effectiveMode()));

  // Cold pass: everything comes off flash. Rebaseline after the
  // writes so the report covers only the reads.
  Reader.pipeline().resetMeasurement();
  auto Restored = Reader.readBlocks(0, Blocks);
  if (!Restored || *Restored != Data) {
    std::fprintf(stderr, "error: cold restore mismatch\n");
    return 1;
  }
  std::printf("\ncold pass (SSD + decode):\n%s\n",
              Reader.pipeline().report().toString().c_str());

  // Warm pass: the cache front tier absorbs what fits.
  Reader.pipeline().resetMeasurement();
  Restored = Reader.readBlocks(0, Blocks);
  if (!Restored || *Restored != Data) {
    std::fprintf(stderr, "error: warm restore mismatch\n");
    return 1;
  }
  std::printf("\nwarm pass (cache front tier):\n%s\n",
              Reader.pipeline().report().toString().c_str());
  std::printf("\nboth passes verified byte-exact\n");
  Faults.summary();
  return Obs.write(Opts) ? 0 : 1;
}

int commandRecover(const Options &OptsIn) {
  Options Opts = OptsIn;
  Opts.Chunking = ChunkingMode::Fixed; // LBA volumes need fixed chunks
  const PipelineMode Mode = resolveMode(Opts);
  ObsOutput Obs;
  FaultSetup Faults;
  PipelineConfig Config = pipelineConfigFor(Opts, Mode);
  Obs.attach(Opts, Config);
  Faults.attach(Opts, Config);
  ReductionPipeline Pipeline(Opts.Plat, Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = Opts.Bytes / Opts.ChunkSize;
  Volume Vol(Pipeline, VolConfig);

  journal::JournaledVolumeConfig JvConfig;
  JvConfig.JournalPath = Opts.JournalPath;
  JvConfig.CheckpointPath = Opts.CheckpointPath;
  JvConfig.GroupCommitOps = Opts.GroupCommitOps;
  JvConfig.CheckpointEveryOps = Opts.CheckpointEveryOps;
  JvConfig.Faults = Faults.Injector ? &*Faults.Injector : nullptr;
  if (Config.Metrics)
    JvConfig.Metrics = Config.Metrics;
  journal::JournaledVolume Jv(Vol, Pipeline, JvConfig);
  if (!Jv.ctorStatus().ok()) {
    std::fprintf(stderr, "error: cannot create journal %s: %s\n",
                 Opts.JournalPath.c_str(), Jv.ctorStatus().message());
    return 1;
  }

  // Journaled write phase: one op per 8-block extent, tracking what was
  // acknowledged so recovery can be verified bit-for-bit.
  const ByteVector Data = makeStream(Opts);
  const std::uint64_t Blocks = Data.size() / Opts.ChunkSize;
  const std::uint64_t OpBlocks = 8;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> AckedExtents;
  std::uint64_t Ops = 0;
  for (std::uint64_t Lba = 0; Lba + OpBlocks <= Blocks; Lba += OpBlocks) {
    const auto Seq = Jv.writeBlocks(
        Lba, ByteSpan(Data.data() + Lba * Opts.ChunkSize,
                      OpBlocks * Opts.ChunkSize));
    if (!Seq.ok()) {
      std::printf("write op %llu halted: %s (the crash)\n",
                  static_cast<unsigned long long>(Ops),
                  Seq.status().message());
      break;
    }
    ++Ops;
  }
  if (!Jv.halted() && !Jv.sync().ok()) {
    std::fprintf(stderr, "error: final sync failed\n");
    return 1;
  }
  for (std::uint64_t Lba = 0; Lba + OpBlocks <= Blocks; Lba += OpBlocks) {
    const std::uint64_t Seq = Lba / OpBlocks + 1;
    if (Seq <= Jv.ackedSeq())
      AckedExtents.emplace_back(Lba, OpBlocks);
  }
  std::printf("journaled writes on %s: %llu ops, acked seq %llu, "
              "committed seq %llu, %llu checkpoints%s\n",
              Opts.Plat.Name.c_str(), static_cast<unsigned long long>(Ops),
              static_cast<unsigned long long>(Jv.ackedSeq()),
              static_cast<unsigned long long>(Jv.committedSeq()),
              static_cast<unsigned long long>(Jv.checkpointsTaken()),
              Jv.halted() ? ", HALTED by crash injection" : "");

  // Recovery into a fresh pipeline/volume pair.
  ReductionPipeline FreshPipe(Opts.Plat, pipelineConfigFor(Opts, Mode));
  Volume Restored(FreshPipe, VolConfig);
  const journal::RecoveryReport Report = journal::recoverVolume(
      Opts.JournalPath, Opts.CheckpointPath, FreshPipe, Restored,
      JvConfig.Metrics);
  if (!Report.ok()) {
    std::fprintf(stderr, "error: recovery failed: %s (detail %llu)\n",
                 Report.St.message(),
                 static_cast<unsigned long long>(Report.St.detail()));
    return 1;
  }
  std::printf("recovery: checkpoint %s (seq %llu), %llu records "
              "replayed, %llu skipped, %llu torn bytes discarded, "
              "modelled %.2f ms\n",
              Report.CheckpointLoaded ? "loaded" : "absent",
              static_cast<unsigned long long>(Report.CheckpointSeq),
              static_cast<unsigned long long>(Report.ReplayedRecords),
              static_cast<unsigned long long>(Report.SkippedRecords),
              static_cast<unsigned long long>(Report.DiscardedTailBytes),
              Report.ModelledMicros / 1e3);

  // Every acknowledged extent must read back bit-identical.
  for (const auto &[Lba, Count] : AckedExtents) {
    const auto Read = Restored.readBlocks(Lba, Count);
    if (!Read ||
        !std::equal(Read->begin(), Read->end(),
                    Data.begin() + Lba * Opts.ChunkSize)) {
      std::fprintf(stderr,
                   "error: acked extent at LBA %llu not recovered\n",
                   static_cast<unsigned long long>(Lba));
      return 1;
    }
  }
  std::printf("verified: all %zu acknowledged extents recovered "
              "bit-exact\n",
              AckedExtents.size());
  Faults.summary();
  return Obs.write(Opts) ? 0 : 1;
}

/// One service-demo dispatch run: RunBlocks blocks whose contents are
/// derived from \p Tag (deterministic across invocations).
constexpr std::uint64_t ServeRunBlocks = 8;

ByteVector serveRun(const Options &Opts, std::uint64_t Tag) {
  ByteVector Data(ServeRunBlocks * Opts.ChunkSize);
  for (std::uint64_t I = 0; I < ServeRunBlocks; ++I) {
    Random Rng((Tag + I) * 7919 + Opts.Seed);
    Rng.fillBytes(Data.data() + I * Opts.ChunkSize, Opts.ChunkSize);
  }
  return Data;
}

int commandServe(const Options &OptsIn) {
  Options Opts = OptsIn;
  Opts.Chunking = ChunkingMode::Fixed; // LBA volumes need fixed chunks
  const PipelineMode Mode = resolveMode(Opts);
  ObsOutput Obs;
  FaultSetup Faults;
  ServiceConfig Config;
  Config.Pipeline = pipelineConfigFor(Opts, Mode);
  Config.Pipeline.Dedup.Index.Shards = Opts.Shards;
  Config.IndexMemoryBudget = Opts.IndexBudget;
  Config.Policy = Opts.Policy;
  Obs.attach(Opts, Config.Pipeline);
  Faults.attach(Opts, Config.Pipeline);
  VolumeService Service(Opts.Plat, Config);

  // Tenant 0 rewrites one working set every round (a hot, high-
  // locality stream); the rest write fresh blocks (cold streams). With
  // an --index-budget this is the cache tier's decision to make.
  TenantConfig Tenant;
  Tenant.Blocks = std::max<std::uint64_t>(Opts.Rounds * ServeRunBlocks,
                                          ServeRunBlocks);
  Tenant.QuotaBytes = Opts.QuotaBytes;
  std::vector<VolumeService::TenantId> Ids;
  for (unsigned I = 0; I < Opts.Tenants; ++I)
    Ids.push_back(
        Service.addTenant("tenant" + std::to_string(I), Tenant));

  for (std::uint64_t Round = 0; Round < Opts.Rounds; ++Round) {
    for (unsigned I = 0; I < Opts.Tenants; ++I) {
      const bool Hot = I == 0;
      const std::uint64_t Tag =
          Hot ? 1000 : 1'000'000 * I + Round * ServeRunBlocks;
      const ByteVector Run = serveRun(Opts, Tag);
      const std::uint64_t Lba = Hot ? 0 : Round * ServeRunBlocks;
      // Quota rejections are part of the demo, not an error.
      Service.submitWrite(Ids[I], Lba,
                          ByteSpan(Run.data(), Run.size()));
    }
    Service.pump();
  }
  Service.finish();
  const ServiceSweepStats Sweep = Service.sweepDeferred();

  std::printf("service on %s: %u tenants, %llu rounds, %u index "
              "shard%s, policy %s, budget %s\n\n",
              Opts.Plat.Name.c_str(), Opts.Tenants,
              static_cast<unsigned long long>(Service.rounds()),
              Opts.Shards, Opts.Shards == 1 ? "" : "s",
              Opts.Policy == CachePolicy::Prioritized ? "prioritized"
                                                      : "lru",
              Opts.IndexBudget == 0
                  ? "unlimited"
                  : formatSize(Opts.IndexBudget).c_str());
  std::printf("%-10s %12s %12s %12s %10s %9s %8s\n", "tenant",
              "admitted", "deferred", "rejected", "locality", "resident",
              "tracked");
  for (const VolumeService::TenantId Id : Ids) {
    const TenantStats Stats = Service.tenantStats(Id);
    std::printf("%-10s %12s %12s %12s %10.3f %9s %8zu\n",
                Stats.Name.c_str(),
                formatSize(Stats.AdmittedBytes).c_str(),
                formatSize(Stats.DeferredBytes).c_str(),
                formatSize(Stats.RejectedBytes).c_str(),
                Stats.LocalityScore, Stats.Resident ? "yes" : "no",
                Stats.TrackedEntries);
  }
  std::printf("\nsweep: %llu tenants, %llu blocks reprocessed, %llu "
              "chunks collected, %llu entries expired\n",
              static_cast<unsigned long long>(Sweep.TenantsSwept),
              static_cast<unsigned long long>(Sweep.BlocksProcessed),
              static_cast<unsigned long long>(Sweep.ChunksCollected),
              static_cast<unsigned long long>(Sweep.EntriesExpired));

  const DedupEngine *Engine = Service.pipeline().dedupEngine();
  if (Engine && Engine->index().shardCount() > 1) {
    const FingerprintIndex &Index = Engine->index();
    std::printf("\n%-7s %12s %12s %12s %12s\n", "shard", "bins",
                "entries", "hits", "memory");
    for (unsigned S = 0; S < Index.shardCount(); ++S) {
      const IndexShardStats Stats = Index.shardStats(S);
      std::printf("%-7u %5llu..%-5llu %12llu %12llu %12s\n", S,
                  static_cast<unsigned long long>(Stats.BinBegin),
                  static_cast<unsigned long long>(Stats.BinEnd),
                  static_cast<unsigned long long>(Stats.TreeEntries),
                  static_cast<unsigned long long>(
                      Stats.BufferHits + Stats.TreeHits + Stats.GpuHits),
                  formatSize(Stats.MemoryBytes).c_str());
    }
  }
  std::printf("\n%s\n", Service.pipeline().report().toString().c_str());
  Faults.summary();
  return Obs.write(Opts) ? 0 : 1;
}

int commandTenant(const Options &OptsIn) {
  Options Opts = OptsIn;
  Opts.Chunking = ChunkingMode::Fixed; // LBA volumes need fixed chunks
  const PipelineMode Mode = resolveMode(Opts);
  const ByteVector Data = makeStream(Opts);
  const std::uint64_t Blocks = Data.size() / Opts.ChunkSize;
  const std::uint64_t ExtentBlocks = 64;

  // Reference: the same stream straight through a Volume.
  ReductionPipeline DirectPipe(Opts.Plat,
                               pipelineConfigFor(Opts, Mode));
  VolumeConfig VolConfig;
  VolConfig.BlockCount = Blocks;
  Volume Direct(DirectPipe, VolConfig);
  for (std::uint64_t Lba = 0; Lba < Blocks; Lba += ExtentBlocks) {
    const std::uint64_t Count = std::min(ExtentBlocks, Blocks - Lba);
    if (!Direct.writeBlocks(Lba,
                            ByteSpan(Data.data() + Lba * Opts.ChunkSize,
                                     Count * Opts.ChunkSize))) {
      std::fprintf(stderr, "error: direct write rejected\n");
      return 1;
    }
  }
  Direct.flush();

  // Candidate: one tenant through the service at --shards shards.
  ServiceConfig Config;
  Config.Pipeline = pipelineConfigFor(Opts, Mode);
  Config.Pipeline.Dedup.Index.Shards = Opts.Shards;
  VolumeService Service(Opts.Plat, Config);
  TenantConfig Tenant;
  Tenant.Blocks = Blocks;
  const auto Id = Service.addTenant("tenant0", Tenant);
  for (std::uint64_t Lba = 0; Lba < Blocks; Lba += ExtentBlocks) {
    const std::uint64_t Count = std::min(ExtentBlocks, Blocks - Lba);
    if (!Service.submitWrite(Id,
                             Lba,
                             ByteSpan(Data.data() + Lba * Opts.ChunkSize,
                                      Count * Opts.ChunkSize))) {
      std::fprintf(stderr, "error: service write rejected\n");
      return 1;
    }
  }
  Service.finish();

  const PipelineReport Ref = DirectPipe.report();
  const PipelineReport Svc = Service.pipeline().report();
  std::printf("single-tenant parity on %s: %s stream, %u index "
              "shard%s\n\n",
              Opts.Plat.Name.c_str(), formatSize(Data.size()).c_str(),
              Opts.Shards, Opts.Shards == 1 ? "" : "s");
  bool Match = Ref.UniqueChunks == Svc.UniqueChunks &&
               Ref.DupChunks == Svc.DupChunks &&
               Ref.DupFromBuffer == Svc.DupFromBuffer &&
               Ref.DupFromTree == Svc.DupFromTree &&
               Ref.StoredBytes == Svc.StoredBytes;
  std::printf("%-22s %16s %16s\n", "counter", "direct volume",
              "service");
  const auto Row = [&](const char *Name, std::uint64_t A,
                       std::uint64_t B) {
    std::printf("%-22s %16llu %16llu%s\n", Name,
                static_cast<unsigned long long>(A),
                static_cast<unsigned long long>(B),
                A == B ? "" : "   <-- MISMATCH");
  };
  Row("unique chunks", Ref.UniqueChunks, Svc.UniqueChunks);
  Row("dup chunks", Ref.DupChunks, Svc.DupChunks);
  Row("dup (buffer)", Ref.DupFromBuffer, Svc.DupFromBuffer);
  Row("dup (tree)", Ref.DupFromTree, Svc.DupFromTree);
  Row("stored bytes", Ref.StoredBytes, Svc.StoredBytes);
  static constexpr Resource Lanes[] = {Resource::CpuPool, Resource::Gpu,
                                       Resource::Pcie, Resource::Ssd,
                                       Resource::IndexLock};
  for (const Resource Lane : Lanes) {
    const double A = DirectPipe.ledger().busyMicros(Lane);
    const double B = Service.pipeline().ledger().busyMicros(Lane);
    Match = Match && A == B;
    std::printf("%-22s %16.3f %16.3f%s\n", resourceName(Lane), A, B,
                A == B ? "" : "   <-- MISMATCH");
  }
  const auto DirectRead = Direct.readBlocks(0, Blocks);
  const auto ServiceRead = Service.readBlocks(Id, 0, Blocks);
  const bool BytesMatch = DirectRead && ServiceRead &&
                          *DirectRead == *ServiceRead &&
                          std::equal(DirectRead->begin(),
                                     DirectRead->end(), Data.begin());
  Match = Match && BytesMatch;
  std::printf("\nread-back: %s\n",
              BytesMatch ? "byte-exact on both paths"
                         : "MISMATCH between paths");
  if (!Match) {
    std::fprintf(stderr, "error: service diverged from the direct "
                         "volume path\n");
    return 1;
  }
  std::printf("parity: PASS — service results and ledger charges are "
              "bit-identical\n");
  return 0;
}

} // namespace

int commandTrace(const Options &OptsIn) {
  Options Opts = OptsIn;
  Opts.Chunking = ChunkingMode::Fixed; // LBA volumes need fixed chunks
  const PipelineMode Mode = resolveMode(Opts);
  ObsOutput Obs;
  FaultSetup Faults;
  PipelineConfig Config = pipelineConfigFor(Opts, Mode);
  Obs.attach(Opts, Config);
  Faults.attach(Opts, Config);
  ReductionPipeline Pipeline(Opts.Plat, Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = Opts.Bytes / Opts.ChunkSize;
  Volume Vol(Pipeline, VolConfig);

  TraceLog Log;
  if (!Opts.TracePath.empty()) {
    std::FILE *File = std::fopen(Opts.TracePath.c_str(), "rb");
    if (!File) {
      std::fprintf(stderr, "error: cannot open trace %s\n",
                   Opts.TracePath.c_str());
      return 1;
    }
    std::string Text;
    char Buffer[4096];
    std::size_t Read;
    while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
      Text.append(Buffer, Read);
    std::fclose(File);
    const auto Parsed = TraceLog::parse(Text);
    if (!Parsed) {
      std::fprintf(stderr, "error: malformed trace file\n");
      return 1;
    }
    Log = *Parsed;
  } else {
    TraceSynthesisConfig Synth;
    Synth.Operations = Opts.TraceOps;
    Synth.VolumeBlocks = VolConfig.BlockCount;
    Synth.Seed = Opts.Seed;
    Log = TraceLog::synthesize(Synth);
  }

  // Reads replay through the batched restore pipeline (the write path
  // stays the volume's own).
  restore::VolumeReader Reader(Vol, readConfigFor(Opts));
  const TraceRunStats Stats =
      replayTrace(Vol, Log, [&](std::uint64_t Lba, std::uint64_t Count) {
        return Reader.readBlocks(Lba, Count);
      });
  Vol.collectGarbage();
  Vol.flush();
  // Under a fault plan, scrub-and-repair: injected destage bit-flips
  // are expected and repairable from the cache; plain scrub would
  // report them as (unexplained) corruption.
  Volume::ScrubReport Scrub;
  if (Faults.Injector) {
    const Volume::ScrubRepairReport Repair = Vol.scrubAndRepair();
    Scrub.ChunksScanned = Repair.ChunksScanned;
    Scrub.CorruptChunks = Repair.LostChunks; // repaired ones healed
    Scrub.BadLocations = Repair.LostLocations;
    std::printf("scrub-and-repair: %llu corrupt, %llu repaired, %llu "
                "lost\n",
                static_cast<unsigned long long>(Repair.CorruptChunks),
                static_cast<unsigned long long>(Repair.RepairedChunks),
                static_cast<unsigned long long>(Repair.LostChunks));
  } else {
    Scrub = Vol.scrub();
  }
  const VolumeStats VolStats = Vol.stats();

  std::printf("replayed %zu records: %llu writes, %llu reads, %llu "
              "trims (%llu out of range)\n",
              Log.Records.size(),
              static_cast<unsigned long long>(Stats.Writes),
              static_cast<unsigned long long>(Stats.Reads),
              static_cast<unsigned long long>(Stats.Trims),
              static_cast<unsigned long long>(Stats.OutOfRange));
  std::printf("verification: %llu read failures, %llu content "
              "mismatches; scrub: %llu/%llu corrupt\n",
              static_cast<unsigned long long>(Stats.ReadFailures),
              static_cast<unsigned long long>(Stats.VerifyFailures),
              static_cast<unsigned long long>(Scrub.CorruptChunks),
              static_cast<unsigned long long>(Scrub.ChunksScanned));
  std::printf("space: %s logical -> %s physical (amplification %.2f)\n",
              formatSize(VolStats.LogicalBytes).c_str(),
              formatSize(VolStats.PhysicalBytes).c_str(),
              VolStats.spaceAmplification());
  std::printf("%s\n", Pipeline.report().toString().c_str());
  // Read-side counters only: the restore busy window here overlaps
  // the replay's writes, so its makespan would describe the mix, not
  // the reads.
  const restore::ReadReport ReadStats = Reader.pipeline().report();
  std::printf("restore reads: mode %s, %llu chunks, cache hits %.0f%%, "
              "coalesced runs %llu, decode batches cpu=%llu gpu=%llu\n",
              restore::decodeModeName(Reader.pipeline().effectiveMode()),
              static_cast<unsigned long long>(ReadStats.ChunksRequested),
              ReadStats.cacheHitRate() * 100.0,
              static_cast<unsigned long long>(ReadStats.CoalescedRuns),
              static_cast<unsigned long long>(ReadStats.CpuBatches),
              static_cast<unsigned long long>(ReadStats.GpuBatches));
  Faults.summary();
  if (!Obs.write(Opts))
    return 1;
  return Stats.clean() && Scrub.CorruptChunks == 0 ? 0 : 1;
}

int commandReplay(const Options &OptsIn) {
  Options Opts = OptsIn;
  Opts.Chunking = ChunkingMode::Fixed; // LBA volumes need fixed chunks
  const PipelineMode Mode = resolveMode(Opts);
  ObsOutput Obs;
  FaultSetup Faults;
  PipelineConfig Config = pipelineConfigFor(Opts, Mode);
  if (Opts.FtlOn) {
    ssd::FtlConfig Ftl;
    Ftl.Blocks = Opts.FtlBlocks;
    Ftl.PagesPerBlock = Opts.FtlPagesPerBlock;
    Ftl.OverprovisionPct = Opts.FtlOverprovisionPct;
    if (!ssd::isValidFtlConfig(Ftl)) {
      std::fprintf(stderr, "error: invalid FTL geometry\n");
      return 2;
    }
    Config.Ftl = Ftl;
  }
  Obs.attach(Opts, Config);
  Faults.attach(Opts, Config);
  ReductionPipeline Pipeline(Opts.Plat, Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = Opts.Bytes / Opts.ChunkSize;
  Volume Vol(Pipeline, VolConfig);

  TraceLog Log;
  if (!Opts.TracePath.empty()) {
    std::FILE *File = std::fopen(Opts.TracePath.c_str(), "rb");
    if (!File) {
      std::fprintf(stderr, "error: cannot open trace %s\n",
                   Opts.TracePath.c_str());
      return 1;
    }
    std::string Text;
    char Buffer[4096];
    std::size_t Read;
    while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
      Text.append(Buffer, Read);
    std::fclose(File);
    const auto Parsed = TraceLog::parseChecked(Text);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s (line %llu) in %s\n",
                   Parsed.status().message(),
                   static_cast<unsigned long long>(Parsed.status().detail()),
                   Opts.TracePath.c_str());
      return 1;
    }
    const fault::Status Valid = Parsed->validate(VolConfig.BlockCount);
    if (!Valid.ok()) {
      std::fprintf(stderr, "error: %s (record %llu) in %s\n",
                   Valid.message(),
                   static_cast<unsigned long long>(Valid.detail()),
                   Opts.TracePath.c_str());
      return 1;
    }
    Log = *Parsed;
  } else {
    ScenarioConfig Scen;
    Scen.Shape = Opts.Scenario;
    Scen.Operations = Opts.TraceOps;
    Scen.VolumeBlocks = VolConfig.BlockCount;
    Scen.Seed = Opts.Seed;
    Log = synthesizeScenario(Scen);
  }

  ReplayConfig Replay;
  Replay.RawWrites = Opts.RawWrites;
  Replay.GcEveryOps = Opts.GcEvery;
  const TimedReplayReport Report = replayTraceTimed(Vol, Log, Replay);
  const TraceRunStats &Stats = Report.Stats;

  std::printf("replayed %zu records (%s writes): %llu writes, %llu "
              "reads, %llu trims (%llu out of range)\n",
              Log.Records.size(), Opts.RawWrites ? "raw" : "reduced",
              static_cast<unsigned long long>(Stats.Writes),
              static_cast<unsigned long long>(Stats.Reads),
              static_cast<unsigned long long>(Stats.Trims),
              static_cast<unsigned long long>(Stats.OutOfRange));
  std::printf("verification: %llu read failures, %llu content "
              "mismatches\n",
              static_cast<unsigned long long>(Stats.ReadFailures),
              static_cast<unsigned long long>(Stats.VerifyFailures));
  if (Report.GcRuns)
    std::printf("volume GC: %llu passes collected %llu chunks\n",
                static_cast<unsigned long long>(Report.GcRuns),
                static_cast<unsigned long long>(Report.ChunksCollected));
  std::printf("latency (modelled, open-loop): p50 %.1f us, p95 %.1f us, "
              "p99 %.1f us, mean %.1f us, max %.1f us\n",
              Report.P50Us, Report.P95Us, Report.P99Us, Report.MeanUs,
              Report.MaxUs);
  std::printf("makespan %.2f ms over %.2f ms of arrivals (service %.2f "
              "ms)\n",
              Report.WallUs / 1000.0,
              Log.Records.empty()
                  ? 0.0
                  : static_cast<double>(Log.Records.back().ArrivalUs) /
                        1000.0,
              Report.ServiceUs / 1000.0);

  const SsdModel &Ssd = Pipeline.ssd();
  if (const ssd::Ftl *Ftl = Ssd.ftl()) {
    const ssd::Ftl::Counters &C = Ftl->counters();
    std::printf("ftl: measured WA %.3f (%llu host + %llu GC pages), "
                "%llu erases in %llu GC runs, %llu wear migrations\n",
                Ftl->measuredWaf(),
                static_cast<unsigned long long>(C.HostPages),
                static_cast<unsigned long long>(C.GcPages),
                static_cast<unsigned long long>(C.Erases),
                static_cast<unsigned long long>(C.GcRuns),
                static_cast<unsigned long long>(C.WearMigrations));
    std::printf("ftl: erase spread %llu (wear-level bound %u), %llu "
                "free blocks, %.2f%% of erase budget used\n",
                static_cast<unsigned long long>(Ftl->eraseSpread()),
                Ftl->config().WearDeltaLimit,
                static_cast<unsigned long long>(Ftl->freeBlocks()),
                Ftl->lifetimeFractionUsed() * 100.0);
    const double Used = Ftl->lifetimeFractionUsed();
    if (Used > 0.0)
      std::printf("ftl: device lifetime ~%.0fx this workload\n",
                  1.0 / Used);
    std::string Why;
    if (!Ftl->checkInvariants(&Why)) {
      std::fprintf(stderr, "error: FTL invariant violated: %s\n",
                   Why.c_str());
      return 1;
    }
  } else {
    std::printf("ssd: constant-WA model, %s NAND written (endurance "
                "ratio %.3f)\n",
                formatSize(Ssd.nandBytesWritten()).c_str(),
                Ssd.enduranceRatio());
  }
  Faults.summary();
  if (!Obs.write(Opts))
    return 1;
  return Stats.clean() ? 0 : 1;
}

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage();
    return 2;
  }
  if (Opts.Command == "info")
    return commandInfo();
  if (Opts.Command == "calibrate")
    return commandCalibrate(Opts);
  if (Opts.Command == "run")
    return commandRun(Opts);
  if (Opts.Command == "volume")
    return commandVolume(Opts);
  if (Opts.Command == "trace")
    return commandTrace(Opts);
  if (Opts.Command == "replay")
    return commandReplay(Opts);
  if (Opts.Command == "restore")
    return commandRestore(Opts);
  if (Opts.Command == "recover")
    return commandRecover(Opts);
  if (Opts.Command == "serve")
    return commandServe(Opts);
  if (Opts.Command == "tenant")
    return commandTenant(Opts);
  std::fprintf(stderr, "error: unknown command '%s'\n",
               Opts.Command.c_str());
  usage();
  return 2;
}
