#!/usr/bin/env python3
"""Docs link checker: fail CI on dead relative links or anchors.

Scans every Markdown file in the repository (skipping build trees and
.git) for inline links `[text](target)` outside fenced code blocks and
verifies that

* a relative path target resolves to an existing file or directory,
* a `path#anchor` target's anchor matches a heading in that file,
* a bare `#anchor` target matches a heading in the same file.

External schemes (http/https/mailto) are ignored. Anchors are compared
against GitHub-style heading slugs (lowercased, punctuation stripped,
spaces to hyphens, duplicate slugs suffixed -1, -2, ...).

Usage: python3 tools/check_doc_links.py [repo-root]
Exit status: 0 if every link resolves, 1 otherwise (each dead link is
reported as file:line).
"""

import os
import re
import sys

SKIP_DIRS = {".git", ".github"} | {d for d in ("build",)}
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d
            for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def slugify(heading):
    # GitHub's algorithm: strip markdown emphasis/code ticks, lowercase,
    # delete everything but word characters, spaces and hyphens, then
    # turn spaces into hyphens.
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path):
    slugs = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = slugify(m.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path, root):
    errors = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            # Drop inline code spans before matching links.
            stripped = re.sub(r"`[^`]*`", "", line)
            for target in LINK_RE.findall(stripped):
                if EXTERNAL_RE.match(target):
                    continue
                base, _, anchor = target.partition("#")
                if base:
                    dest = os.path.normpath(
                        os.path.join(os.path.dirname(path), base)
                    )
                    if not os.path.exists(dest):
                        errors.append(
                            f"{os.path.relpath(path, root)}:{lineno}: "
                            f"dead link target '{base}'"
                        )
                        continue
                else:
                    dest = path
                if anchor:
                    if not dest.endswith(".md") or not os.path.isfile(dest):
                        errors.append(
                            f"{os.path.relpath(path, root)}:{lineno}: "
                            f"anchor on non-markdown target '{target}'"
                        )
                        continue
                    if anchor.lower() not in heading_slugs(dest):
                        errors.append(
                            f"{os.path.relpath(path, root)}:{lineno}: "
                            f"dead anchor '#{anchor}' in '{base or path}'"
                        )
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    checked = 0
    for path in sorted(markdown_files(root)):
        checked += 1
        errors.extend(check_file(path, root))
    for err in errors:
        print(err)
    print(
        f"check_doc_links: {checked} markdown files, "
        f"{len(errors)} dead link(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
