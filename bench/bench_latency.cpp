//===----------------------------------------------------------------------===//
///
/// \file
/// L1 — inline service latency (extension; the paper reports only
/// throughput, but an *inline* reduction pipeline sits on the write
/// path, so its latency is what clients feel). Two views:
///
///   1. latency percentiles per integration mode at equal workload —
///      GPU offloads buy throughput at a latency cost (kernel batching
///      and round trips);
///   2. the GPU compression batch-depth sweep — deeper batches amortize
///      launches (throughput up) while every chunk waits for its whole
///      kernel (latency up): the knob a deployment must tune.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

int main() {
  banner("L1", "inline service latency vs throughput (extension)");

  std::printf("per-mode latency (dedup 2.0 / comp 2.0):\n");
  std::printf("%-14s %12s %10s %10s %10s\n", "mode", "IOPS (K)",
              "p50 (us)", "p95 (us)", "p99 (us)");
  for (unsigned I = 0; I < PipelineModeCount; ++I) {
    RunSpec Spec;
    Spec.Mode = static_cast<PipelineMode>(I);
    const PipelineReport Report = runSpec(Platform::paper(), Spec);
    std::printf("%-14s %12.1f %10.0f %10.0f %10.0f\n",
                pipelineModeName(Spec.Mode), Report.ThroughputIops / 1e3,
                Report.LatencyP50Us, Report.LatencyP95Us,
                Report.LatencyP99Us);
  }

  std::printf("\nGPU compression batch-depth sweep (gpu-compress, "
              "comp 2.0):\n");
  std::printf("%10s %12s %10s %10s\n", "batch", "IOPS (K)", "p50 (us)",
              "p99 (us)");
  for (unsigned Batch : {16u, 32u, 64u, 128u, 256u, 512u}) {
    Platform Plat = Platform::paper();
    Plat.Model.Gpu.CompressBatchChunks = Batch;
    RunSpec Spec;
    Spec.Mode = PipelineMode::GpuCompress;
    Spec.DedupEnabled = false;
    Spec.BatchChunks = 512; // pipeline hands the engine 512 at a time
    const PipelineReport Report = runSpec(Plat, Spec);
    std::printf("%10u %12.1f %10.0f %10.0f\n", Batch,
                Report.ThroughputIops / 1e3, Report.LatencyP50Us,
                Report.LatencyP99Us);
  }

  std::printf("\nexpected shape: cpu-only has the lowest tail latency; "
              "gpu modes trade\nlatency for throughput; latency grows "
              "with kernel batch depth while\nthroughput saturates once "
              "launches are amortized.\n");
  return 0;
}
