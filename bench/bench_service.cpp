//===----------------------------------------------------------------------===//
///
/// \file
/// E8 — multi-tenant service (extension): what the shared fingerprint
/// index buys under an inline memory budget, and how the sharded
/// global index scales.
///
///   1. cache-tier quality: one hot tenant (tight working set,
///      rewritten every round) interferes with three cold tenants
///      (fresh blocks every round) under a fixed index budget. The
///      HPDedup-style prioritized policy must keep the hot tenant
///      inline-resident and beat the LRU baseline on dedup ratio per
///      MB of index memory; demoted streams fall back to deferred
///      dedup (BackgroundReducer sweeps).
///   2. shard scaling: the same three-tenant workload through the
///      global index at several shard counts. Outcomes must be
///      bit-identical at every count (bins are disjoint across
///      shards), and per-shard occupancy must roughly balance.
///
/// Emits BENCH_service.json. `--smoke` runs reduced sweeps and only
/// the hard gates (CI).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "service/VolumeService.h"
#include "util/Random.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

using namespace padre;
using namespace padre::bench;

namespace {

constexpr std::size_t BlockSize = 4096;
constexpr std::uint64_t RunBlocks = 8;
constexpr unsigned ColdTenants = 3;

ByteVector blockOf(std::uint64_t Tag) {
  ByteVector Data(BlockSize);
  Random Rng(Tag * 7919 + 3);
  Rng.fillBytes(Data.data(), Data.size());
  return Data;
}

/// A run of \p RunBlocks blocks whose contents are Tag, Tag+1, ...
ByteVector runOf(std::uint64_t Tag) {
  ByteVector Data;
  Data.reserve(RunBlocks * BlockSize);
  for (std::uint64_t I = 0; I < RunBlocks; ++I) {
    const ByteVector Block = blockOf(Tag + I);
    Data.insert(Data.end(), Block.begin(), Block.end());
  }
  return Data;
}

std::unique_ptr<VolumeService> makeService(CachePolicy Policy,
                                           std::size_t BudgetBytes,
                                           unsigned Shards) {
  ServiceConfig Config;
  Config.Pipeline.Mode = PipelineMode::CpuOnly;
  Config.Pipeline.Dedup.Index.BinBits = 8;
  Config.Pipeline.Dedup.Index.Shards = Shards;
  Config.IndexMemoryBudget = BudgetBytes;
  Config.Policy = Policy;
  return std::make_unique<VolumeService>(Platform::paper(), Config);
}

//===--------------------------------------------------------------===//
// 1. Cache-tier quality: prioritized vs LRU under a budget.
//===--------------------------------------------------------------===//

struct CacheRow {
  const char *Policy = "";
  std::size_t BudgetBytes = 0;
  double DedupRatio = 0.0;
  double RatioPerMb = 0.0;       ///< dedup ratio / (budget in MiB)
  std::uint64_t HotDeferred = 0; ///< hot tenant's raw-dispatched bytes
  std::uint64_t DeferredBytes = 0;
  std::uint64_t SweptBlocks = 0;
  std::uint64_t ExpiredEntries = 0;
};

/// One hot + ColdTenants cold tenants for \p Rounds dispatch rounds.
/// The hot tenant rewrites the same RunBlocks-block working set every
/// round (duplicate fraction ~1 once warm); each cold tenant writes
/// fresh content every round (duplicate fraction 0).
CacheRow runCacheTier(CachePolicy Policy, std::size_t BudgetBytes,
                      std::uint64_t Rounds) {
  auto Service = makeService(Policy, BudgetBytes, /*Shards=*/1);
  const auto Hot = Service->addTenant("hot", TenantConfig{});
  std::vector<VolumeService::TenantId> Cold;
  for (unsigned I = 0; I < ColdTenants; ++I)
    Cold.push_back(
        Service->addTenant("cold" + std::to_string(I), TenantConfig{}));

  const ByteVector HotRun = runOf(1000);
  for (std::uint64_t Round = 0; Round < Rounds; ++Round) {
    bool Ok = Service->submitWrite(
        Hot, 0, ByteSpan(HotRun.data(), HotRun.size()));
    for (unsigned I = 0; I < ColdTenants; ++I) {
      const ByteVector Run =
          runOf(1'000'000 * (I + 1) + Round * RunBlocks);
      Ok = Service->submitWrite(Cold[I], Round * RunBlocks,
                                ByteSpan(Run.data(), Run.size())) &&
           Ok;
    }
    if (!Ok) {
      std::fprintf(stderr, "FATAL: admission rejected an in-range "
                           "write\n");
      std::exit(1);
    }
    Service->pump();
  }
  Service->finish();

  CacheRow Row;
  Row.Policy = Policy == CachePolicy::Prioritized ? "prioritized" : "lru";
  Row.BudgetBytes = BudgetBytes;
  const PipelineReport Report = Service->pipeline().report();
  Row.DedupRatio = Report.DedupRatio;
  Row.RatioPerMb = BudgetBytes == 0
                       ? 0.0
                       : Report.DedupRatio /
                             (static_cast<double>(BudgetBytes) /
                              (1024.0 * 1024.0));
  Row.HotDeferred = Service->tenantStats(Hot).DeferredBytes;
  for (unsigned T = 0; T < Service->tenantCount(); ++T)
    Row.DeferredBytes +=
        Service->tenantStats(static_cast<VolumeService::TenantId>(T))
            .DeferredBytes;
  const ServiceSweepStats Sweep = Service->sweepDeferred();
  Row.SweptBlocks = Sweep.BlocksProcessed;
  Row.ExpiredEntries = Sweep.EntriesExpired;
  return Row;
}

//===--------------------------------------------------------------===//
// 2. Shard scaling of the global index.
//===--------------------------------------------------------------===//

struct ShardRow {
  unsigned Shards = 0;
  std::uint64_t UniqueChunks = 0;
  std::uint64_t DupChunks = 0;
  std::uint64_t StoredBytes = 0;
  std::uint64_t MinShardEntries = 0;
  std::uint64_t MaxShardEntries = 0;
};

/// Three tenants with mixed (partially shared) content through the
/// pass-through service (no budget) at \p Shards index shards.
ShardRow runShardScaling(unsigned Shards, std::uint64_t Rounds) {
  auto Service =
      makeService(CachePolicy::Prioritized, /*BudgetBytes=*/0, Shards);
  std::vector<VolumeService::TenantId> Ids;
  for (unsigned I = 0; I < 3; ++I)
    Ids.push_back(
        Service->addTenant("t" + std::to_string(I), TenantConfig{}));
  for (std::uint64_t Round = 0; Round < Rounds; ++Round) {
    for (unsigned I = 0; I < 3; ++I) {
      // Even rounds write a shared image (cross-tenant duplicates);
      // odd rounds write tenant-private content.
      const std::uint64_t Tag = Round % 2 == 0
                                    ? 5'000'000 + Round * RunBlocks
                                    : 6'000'000 * (I + 1) +
                                          Round * RunBlocks;
      const ByteVector Run = runOf(Tag);
      if (!Service->submitWrite(Ids[I], Round * RunBlocks,
                                ByteSpan(Run.data(), Run.size()))) {
        std::fprintf(stderr, "FATAL: shard-scaling write rejected\n");
        std::exit(1);
      }
    }
    Service->pump();
  }
  Service->finish();

  ShardRow Row;
  Row.Shards = Shards;
  const PipelineReport Report = Service->pipeline().report();
  Row.UniqueChunks = Report.UniqueChunks;
  Row.DupChunks = Report.DupChunks;
  Row.StoredBytes = Report.StoredBytes;
  const DedupEngine *Engine = Service->pipeline().dedupEngine();
  const FingerprintIndex &Index = Engine->index();
  Row.MinShardEntries = ~0ull;
  for (unsigned S = 0; S < Index.shardCount(); ++S) {
    const IndexShardStats Stats = Index.shardStats(S);
    Row.MinShardEntries = std::min(Row.MinShardEntries, Stats.TreeEntries);
    Row.MaxShardEntries = std::max(Row.MaxShardEntries, Stats.TreeEntries);
  }
  return Row;
}

bool writeJson(const char *Path, const std::vector<CacheRow> &Cache,
               const std::vector<ShardRow> &Shards) {
  std::FILE *File = std::fopen(Path, "w");
  if (!File)
    return false;
  std::fprintf(File, "{\n  \"experiment\": \"E8-service\",\n");
  std::fprintf(File, "  \"cache_tier\": [\n");
  for (std::size_t I = 0; I < Cache.size(); ++I)
    std::fprintf(
        File,
        "    {\"policy\": \"%s\", \"budget_bytes\": %zu, "
        "\"dedup_ratio\": %.4f, \"ratio_per_mb\": %.2f, "
        "\"hot_deferred_bytes\": %llu, \"deferred_bytes\": %llu, "
        "\"swept_blocks\": %llu, \"expired_entries\": %llu}%s\n",
        Cache[I].Policy, Cache[I].BudgetBytes, Cache[I].DedupRatio,
        Cache[I].RatioPerMb,
        static_cast<unsigned long long>(Cache[I].HotDeferred),
        static_cast<unsigned long long>(Cache[I].DeferredBytes),
        static_cast<unsigned long long>(Cache[I].SweptBlocks),
        static_cast<unsigned long long>(Cache[I].ExpiredEntries),
        I + 1 < Cache.size() ? "," : "");
  std::fprintf(File, "  ],\n  \"shard_scaling\": [\n");
  for (std::size_t I = 0; I < Shards.size(); ++I)
    std::fprintf(
        File,
        "    {\"shards\": %u, \"unique_chunks\": %llu, "
        "\"dup_chunks\": %llu, \"stored_bytes\": %llu, "
        "\"min_shard_entries\": %llu, \"max_shard_entries\": %llu}%s\n",
        Shards[I].Shards,
        static_cast<unsigned long long>(Shards[I].UniqueChunks),
        static_cast<unsigned long long>(Shards[I].DupChunks),
        static_cast<unsigned long long>(Shards[I].StoredBytes),
        static_cast<unsigned long long>(Shards[I].MinShardEntries),
        static_cast<unsigned long long>(Shards[I].MaxShardEntries),
        I + 1 < Shards.size() ? "," : "");
  std::fprintf(File, "  ]\n}\n");
  std::fclose(File);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  banner("E8", Smoke ? "multi-tenant service (smoke)"
                     : "multi-tenant service — prioritized cache tier "
                       "and sharded-index scaling");

  //===------------------------------------------------------------===//
  // 1. Cache-tier quality.
  //===------------------------------------------------------------===//
  const std::uint64_t Rounds = Smoke ? 8 : 24;
  // 48 and 512 index entries' worth of budget (~32 B/entry): the tight
  // budget forces a choice almost immediately, the loose one only
  // after the cold tenants accumulate.
  const std::vector<std::size_t> Budgets = {48 * 32, 512 * 32};
  std::vector<CacheRow> Cache;
  for (const std::size_t Budget : Budgets)
    for (const CachePolicy Policy :
         {CachePolicy::Prioritized, CachePolicy::Lru})
      Cache.push_back(runCacheTier(Policy, Budget, Rounds));
  std::printf("\ncache tier (1 hot + %u cold tenants, %llu rounds):\n"
              "%13s %13s %12s %14s %15s %13s\n",
              ColdTenants, static_cast<unsigned long long>(Rounds),
              "policy", "budget (B)", "dedup ratio", "ratio per MB",
              "hot deferred", "swept blks");
  for (const CacheRow &Row : Cache)
    std::printf("%13s %13zu %12.3f %14.1f %15llu %13llu\n", Row.Policy,
                Row.BudgetBytes, Row.DedupRatio, Row.RatioPerMb,
                static_cast<unsigned long long>(Row.HotDeferred),
                static_cast<unsigned long long>(Row.SweptBlocks));
  std::printf("expected shape: prioritized protects the hot tenant's "
              "fingerprints (locality\nscore), so its duplicates stay "
              "inline; LRU's recency ranking evicts the hot\ntenant and "
              "pays for it in raw writes + deferred sweeps.\n");

  //===------------------------------------------------------------===//
  // 2. Shard scaling.
  //===------------------------------------------------------------===//
  const std::uint64_t ShardRounds = Smoke ? 6 : 16;
  const std::vector<unsigned> ShardCounts =
      Smoke ? std::vector<unsigned>{1, 4}
            : std::vector<unsigned>{1, 2, 4, 8};
  std::vector<ShardRow> Shards;
  for (const unsigned Count : ShardCounts)
    Shards.push_back(runShardScaling(Count, ShardRounds));
  std::printf("\nshard scaling (3 tenants, %llu rounds, shared + "
              "private content):\n%8s %10s %10s %14s %12s %12s\n",
              static_cast<unsigned long long>(ShardRounds), "shards",
              "unique", "dup", "stored (B)", "min entries",
              "max entries");
  for (const ShardRow &Row : Shards)
    std::printf("%8u %10llu %10llu %14llu %12llu %12llu\n", Row.Shards,
                static_cast<unsigned long long>(Row.UniqueChunks),
                static_cast<unsigned long long>(Row.DupChunks),
                static_cast<unsigned long long>(Row.StoredBytes),
                static_cast<unsigned long long>(Row.MinShardEntries),
                static_cast<unsigned long long>(Row.MaxShardEntries));
  std::printf("expected shape: identical outcomes at every shard count "
              "(bins are disjoint\nacross shards); occupancy balances "
              "because the digest prefix is uniform.\n");

  const char *JsonPath = "BENCH_service.json";
  if (!writeJson(JsonPath, Cache, Shards))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath);
  else
    std::printf("\njson: %s\n", JsonPath);

  //===------------------------------------------------------------===//
  // Acceptance gates.
  //===------------------------------------------------------------===//
  bool Pass = true;
  // At equal budgets the per-MB factor cancels, so "dedup ratio per MB
  // of index memory" reduces to the dedup ratio: prioritized must never
  // lose, and must win strictly at the tight budget.
  for (std::size_t I = 0; I + 1 < Cache.size(); I += 2) {
    const CacheRow &P = Cache[I];
    const CacheRow &L = Cache[I + 1];
    if (P.DedupRatio < L.DedupRatio) {
      std::fprintf(stderr,
                   "FAIL: prioritized (%.3f) below lru (%.3f) at "
                   "budget %zu\n",
                   P.DedupRatio, L.DedupRatio, P.BudgetBytes);
      Pass = false;
    }
  }
  if (Cache[0].DedupRatio <= Cache[1].DedupRatio) {
    std::fprintf(stderr,
                 "FAIL: prioritized (%.3f per-MB %.1f) does not beat "
                 "lru (%.3f per-MB %.1f) at the tight budget\n",
                 Cache[0].DedupRatio, Cache[0].RatioPerMb,
                 Cache[1].DedupRatio, Cache[1].RatioPerMb);
    Pass = false;
  }
  // LRU's demotions must show up as deferred work (the raw fallback is
  // real), and the sweeps must expire the transient entries.
  if (Cache[1].HotDeferred == 0 || Cache[1].ExpiredEntries == 0) {
    std::fprintf(stderr, "FAIL: lru run deferred nothing (hot %llu, "
                         "expired %llu)\n",
                 static_cast<unsigned long long>(Cache[1].HotDeferred),
                 static_cast<unsigned long long>(Cache[1].ExpiredEntries));
    Pass = false;
  }
  // Shard-count invariance: bins are disjoint across shards, so every
  // count must reproduce the same outcome bit-for-bit.
  for (std::size_t I = 1; I < Shards.size(); ++I)
    if (Shards[I].UniqueChunks != Shards[0].UniqueChunks ||
        Shards[I].DupChunks != Shards[0].DupChunks ||
        Shards[I].StoredBytes != Shards[0].StoredBytes) {
      std::fprintf(stderr,
                   "FAIL: shard count %u diverged from unsharded "
                   "outcomes\n",
                   Shards[I].Shards);
      Pass = false;
    }
  if (!Pass)
    return 1;
  std::printf("\nPASS: prioritized cache beats LRU per MB of index "
              "memory; sharding is outcome-invariant\n");
  return 0;
}
