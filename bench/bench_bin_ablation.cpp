//===----------------------------------------------------------------------===//
///
/// \file
/// A1 — ablation of the bin-based index design (§3.1(1), §3.3): bin
/// count sweep and bin-buffer capacity sweep on the dedup-only
/// pipeline. Reports throughput, hit-stage breakdown and flush-write
/// volume: more bins = finer parallelism but emptier buffers; larger
/// buffers = more temporal-locality hits and fewer (bigger) flushes.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

int main() {
  banner("A1", "ablation: bin count and bin-buffer capacity "
               "(dedup-only, dedup 2.0)");

  std::printf("bin-count sweep (buffer capacity 8):\n");
  std::printf("%10s %12s %14s %14s %14s\n", "bins", "IOPS (K)",
              "buffer hits", "tree hits", "gpu hits");
  for (unsigned BinBits : {4u, 6u, 8u, 10u, 12u}) {
    RunSpec Spec;
    Spec.CompressEnabled = false;
    Spec.Mode = PipelineMode::GpuDedup;
    Spec.BinBits = BinBits;
    const PipelineReport Report = runSpec(Platform::paper(), Spec);
    std::printf("%10u %12.1f %14llu %14llu %14llu\n", 1u << BinBits,
                Report.ThroughputIops / 1e3,
                static_cast<unsigned long long>(Report.DupFromBuffer),
                static_cast<unsigned long long>(Report.DupFromTree),
                static_cast<unsigned long long>(Report.DupFromGpu));
  }

  std::printf("\nbin-buffer capacity sweep (256 bins):\n");
  std::printf("%10s %12s %14s %14s %14s\n", "capacity", "IOPS (K)",
              "buffer hits", "tree hits", "gpu hits");
  for (std::size_t Capacity : {2u, 4u, 8u, 16u, 32u, 64u}) {
    RunSpec Spec;
    Spec.CompressEnabled = false;
    Spec.Mode = PipelineMode::GpuDedup;
    Spec.BufferCapacityPerBin = Capacity;
    const PipelineReport Report = runSpec(Platform::paper(), Spec);
    std::printf("%10zu %12.1f %14llu %14llu %14llu\n", Capacity,
                Report.ThroughputIops / 1e3,
                static_cast<unsigned long long>(Report.DupFromBuffer),
                static_cast<unsigned long long>(Report.DupFromTree),
                static_cast<unsigned long long>(Report.DupFromGpu));
  }

  // Design decision 1's counterfactual: one shared hash map behind a
  // lock instead of bin partitioning. Index work (probe + insert
  // share) serializes through the lock, so the dedup stage's
  // throughput is min(parallel-work bound, lock bound) — computed here
  // from the same calibrated per-op costs the pipeline charges.
  std::printf("\nlock-free bins vs a single locked map (modelled, dedup "
              "2.0):\n");
  std::printf("%10s %18s %18s %10s\n", "threads", "bin-based (K)",
              "locked map (K)", "speedup");
  const CostModel Model;
  // Per-chunk costs in the dedup-only pipeline (see EXPERIMENTS.md §3).
  const double ProbeUs = 0.5 * Model.Cpu.IndexProbeBufferUs +
                         0.5 * Model.Cpu.IndexProbeUs; // dup/unique mix
  const double MaintainUs = 0.5 * Model.Cpu.IndexMaintainUs;
  const double LockOverheadUs = 0.3; // acquire/release + line bounce
  const double ParallelWorkUs = Model.Cpu.RequestOverheadUs +
                                Model.cpuHashUs(4096) +
                                Model.Cpu.ChunkingPerByteNs * 4.096;
  for (unsigned Threads : {4u, 8u, 16u, 32u, 64u}) {
    const double BinBased =
        (ParallelWorkUs + ProbeUs + MaintainUs) /
        static_cast<double>(Threads); // everything scales
    const double LockSerial = ProbeUs + MaintainUs + LockOverheadUs;
    const double LockedMap = std::max(
        (ParallelWorkUs + ProbeUs + MaintainUs + LockOverheadUs) /
            static_cast<double>(Threads),
        LockSerial); // the lock is a capacity-one resource
    std::printf("%10u %18.1f %18.1f %9.2fx\n", Threads, 1e3 / BinBased,
                1e3 / LockedMap, LockedMap / BinBased);
  }

  std::printf("\nexpected shape: buffer hits grow with capacity (temporal "
              "locality, §3.3);\n"
              "throughput is stable across bin counts (lock-free "
              "partitioning works at any granularity);\n"
              "the locked-map counterfactual saturates at the lock's "
              "serial capacity while bin\npartitioning keeps scaling — "
              "the gap opens as cores grow (§3.1(1)).\n");
  return 0;
}
