//===----------------------------------------------------------------------===//
///
/// \file
/// E4 — §4(3) Fig. 2: throughput of the four integration options for
/// the combined dedup+compression pipeline (dedup ratio 2.0,
/// compression ratio 2.0). Paper: allocating the GPU to compression is
/// the best choice; the GPU-supported integration improves throughput
/// by 89.7% over the CPU-only parallel pipeline.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace padre;
using namespace padre::bench;

int main() {
  banner("E4", "Fig. 2 — throughput of integration methods "
               "(dedup 2.0, compression 2.0)");

  // Optional observability capture: PADRE_OBS_PREFIX=/tmp/e4 writes
  // /tmp/e4-<mode>.json (Chrome trace) and /tmp/e4-<mode>.prom
  // (Prometheus text) for each integration mode. See OBSERVABILITY.md.
  const char *ObsPrefix = std::getenv("PADRE_OBS_PREFIX");

  PipelineReport Reports[PipelineModeCount];
  for (unsigned I = 0; I < PipelineModeCount; ++I) {
    RunSpec Spec;
    Spec.Mode = static_cast<PipelineMode>(I);
    if (ObsPrefix) {
      obs::TraceRecorder Trace;
      obs::MetricsRegistry Metrics;
      Spec.Trace = &Trace;
      Spec.Metrics = &Metrics;
      Reports[I] = runSpec(Platform::paper(), Spec);
      const std::string Stem = std::string(ObsPrefix) + "-" +
                               pipelineModeName(Spec.Mode);
      if (!Trace.writeChromeJson(Stem + ".json") ||
          !Metrics.writePrometheus(Stem + ".prom"))
        std::fprintf(stderr, "warning: failed to write %s.{json,prom}\n",
                     Stem.c_str());
      else
        std::printf("obs: wrote %s.json / %s.prom\n", Stem.c_str(),
                    Stem.c_str());
    } else {
      Reports[I] = runSpec(Platform::paper(), Spec);
    }
  }

  std::printf("%-14s %12s %12s %10s %10s %12s\n", "mode", "IOPS (K)",
              "MB/s", "gpu busy", "offload", "bottleneck");
  for (unsigned I = 0; I < PipelineModeCount; ++I) {
    const PipelineReport &Report = Reports[I];
    std::printf("%-14s %12.1f %12.1f %9.1f%% %10.2f %12s\n",
                pipelineModeName(static_cast<PipelineMode>(I)),
                Report.ThroughputIops / 1e3, Report.ThroughputMBps,
                Report.MakespanSec > 0.0
                    ? Report.GpuBusySec / Report.MakespanSec * 100.0
                    : 0.0,
                Report.OffloadFraction, resourceName(Report.Bottleneck));
  }

  // ASCII rendition of Fig. 2.
  std::printf("\nFig. 2 (modelled):\n");
  double Max = 0.0;
  for (const PipelineReport &Report : Reports)
    Max = std::max(Max, Report.ThroughputIops);
  for (unsigned I = 0; I < PipelineModeCount; ++I) {
    const int Width =
        static_cast<int>(Reports[I].ThroughputIops / Max * 52.0);
    std::printf("  %-14s |", pipelineModeName(static_cast<PipelineMode>(I)));
    for (int J = 0; J < Width; ++J)
      std::printf("#");
    std::printf(" %.1fK\n", Reports[I].ThroughputIops / 1e3);
  }

  const double CpuOnly =
      Reports[static_cast<unsigned>(PipelineMode::CpuOnly)].ThroughputIops;
  const double Best =
      Reports[static_cast<unsigned>(PipelineMode::GpuCompress)]
          .ThroughputIops;
  std::printf("\n");
  char Measured[64];
  std::snprintf(Measured, sizeof(Measured), "+%.1f%%",
                (Best / CpuOnly - 1.0) * 100.0);
  paperRow("best integration vs CPU-only", "+89.7%", Measured);

  unsigned BestIdx = 0;
  for (unsigned I = 1; I < PipelineModeCount; ++I)
    if (Reports[I].ThroughputIops > Reports[BestIdx].ThroughputIops)
      BestIdx = I;
  paperRow("best integration method", "gpu-compress",
           pipelineModeName(static_cast<PipelineMode>(BestIdx)));
  return 0;
}
