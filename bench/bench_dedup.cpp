//===----------------------------------------------------------------------===//
///
/// \file
/// E2 — §4(1) parallel data deduplication: throughput of the
/// dedup-only pipeline, CPU-only vs CPU+GPU, against the SSD baseline.
/// Paper: GPU support improves throughput by 15.0% over CPU-only and
/// reaches 3x the SSD's throughput.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

int main() {
  banner("E2", "parallel data deduplication throughput (paper §4(1))");

  RunSpec Spec;
  Spec.CompressEnabled = false;
  Spec.DedupRatio = 2.0; // the paper's primary-storage setting

  Spec.Mode = PipelineMode::CpuOnly;
  const PipelineReport Cpu = runSpec(Platform::paper(), Spec);
  Spec.Mode = PipelineMode::GpuDedup;
  const PipelineReport Gpu = runSpec(Platform::paper(), Spec);

  ResourceLedger Scratch;
  const SsdModel Ssd(Platform::paper().Model, Scratch);
  const double SsdIops = Ssd.baselineWriteIops4K();

  std::printf("%-22s %12s %12s %10s %12s\n", "configuration", "IOPS (K)",
              "MB/s", "offload", "bottleneck");
  std::printf("%-22s %12.1f %12.1f %10s %12s\n", "cpu-only dedup",
              Cpu.ThroughputIops / 1e3, Cpu.ThroughputMBps, "-",
              resourceName(Cpu.Bottleneck));
  std::printf("%-22s %12.1f %12.1f %9.2f %12s\n", "cpu+gpu dedup",
              Gpu.ThroughputIops / 1e3, Gpu.ThroughputMBps,
              Gpu.OffloadFraction, resourceName(Gpu.Bottleneck));
  std::printf("%-22s %12.1f %12.1f %10s %12s\n", "ssd 830 baseline",
              SsdIops / 1e3, SsdIops * 4096 / 1e6, "-", "ssd");

  std::printf("\ndedup hits: buffer=%llu tree=%llu gpu=%llu "
              "(dedup ratio %.2fx)\n",
              static_cast<unsigned long long>(Gpu.DupFromBuffer),
              static_cast<unsigned long long>(Gpu.DupFromTree),
              static_cast<unsigned long long>(Gpu.DupFromGpu),
              Gpu.DedupRatio);

  std::printf("\n");
  char Measured[64];
  std::snprintf(Measured, sizeof(Measured), "+%.1f%%",
                (Gpu.ThroughputIops / Cpu.ThroughputIops - 1.0) * 100.0);
  paperRow("GPU-supported gain over CPU-only", "+15.0%", Measured);
  std::snprintf(Measured, sizeof(Measured), "%.2fx",
                Gpu.ThroughputIops / SsdIops);
  paperRow("GPU-supported dedup vs SSD", "3.0x", Measured);
  return 0;
}
