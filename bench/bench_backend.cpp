//===----------------------------------------------------------------------===//
///
/// \file
/// E12 — portable multi-backend reduction framework: the HPDR-style
/// auto-tuning splitter vs the static single-backend modes across a
/// mixed-workload sweep (the E6 workload grid), plus modelled
/// multi-GPU scaling of the device backend.
///
/// Every sweep point runs four ways over the same stream: the classic
/// single-engine pipeline (the oracle), the backend framework forced
/// to CPU-only, forced to GPU-only, and the auto-tuned split. The
/// gates are the subsystem's acceptance bars:
///
///   * outcomes (chunks, recipes, stored bytes) are bit-identical
///     across every row of a point — the splitter never changes what
///     is stored, only who computes it;
///   * the forced splits are exact pass-throughs: per-lane ledger
///     charges and wall time equal the classic engine's to the bit;
///   * the auto split's wall throughput is >= the best static mode on
///     EVERY sweep point (2% modelling tolerance);
///   * the device backend's compute makespan scales >= 1.8x from one
///     modelled GPU to two on a GPU-bound stream, with busy charges
///     invariant across the device count.
///
/// Emits BENCH_backend.json. `--smoke` runs a reduced stream over a
/// two-point sweep — the CI variant.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "backend/AutoSplitter.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

using namespace padre;
using namespace padre::bench;

namespace {

/// One workload corner of the sweep (the E6 grid's mixed points).
struct SweepPoint {
  const char *Name;
  double DedupRatio;
  double CompressRatio;
};

/// How a point is executed.
enum class RunKind {
  Classic,    ///< single-engine pipeline, Backend.Enabled = false
  ClassicGpu, ///< classic GpuCompress mode (the GPU oracle)
  BackCpu,    ///< backend framework, forced CPU-only split
  BackGpu,    ///< backend framework, forced GPU-only split
  BackAuto,   ///< backend framework, auto-tuned split
};

const char *runKindName(RunKind Kind) {
  switch (Kind) {
  case RunKind::Classic:
    return "classic-cpu";
  case RunKind::ClassicGpu:
    return "classic-gpu";
  case RunKind::BackCpu:
    return "backend-cpu";
  case RunKind::BackGpu:
    return "backend-gpu";
  case RunKind::BackAuto:
    return "backend-auto";
  }
  return "?";
}

struct RunResult {
  PipelineReport Report;
  /// Order-sensitive checksum over the recipe (locations + sizes).
  std::uint64_t RecipeSum = 0;
  /// Raw per-lane busy micros (full run, not baselined).
  double BusyUs[ResourceCount] = {};
  double SchedWallUs = 0.0;
  backend::SplitterStats Split;
};

struct Row {
  const char *Point;
  RunKind Kind;
  RunResult R;
};

std::uint64_t recipeChecksum(const StreamRecipe &Recipe) {
  std::uint64_t Sum = 0xcbf29ce484222325ull;
  for (std::size_t I = 0; I < Recipe.ChunkLocations.size(); ++I) {
    Sum = (Sum ^ Recipe.ChunkLocations[I]) * 0x100000001b3ull;
    Sum = (Sum ^ Recipe.ChunkSizes[I]) * 0x100000001b3ull;
  }
  return Sum;
}

RunResult runPoint(const SweepPoint &Point, RunKind Kind, bool Smoke,
                   unsigned GpuDevices = 1, bool ScalingStream = false) {
  PipelineConfig Config;
  Config.Mode = Kind == RunKind::ClassicGpu ? PipelineMode::GpuCompress
                                            : PipelineMode::CpuOnly;
  Config.Dedup.Index.BinBits = 8;
  Config.Dedup.Index.BufferCapacityPerBin = 8;
  Config.PipelineDepth = 4;
  if (Kind == RunKind::BackCpu || Kind == RunKind::BackGpu ||
      Kind == RunKind::BackAuto) {
    Config.Backend.Enabled = true;
    Config.Backend.GpuDevices = GpuDevices;
    Config.Backend.Split = Kind == RunKind::BackCpu
                               ? backend::SplitMode::CpuOnly
                               : Kind == RunKind::BackGpu
                                     ? backend::SplitMode::GpuOnly
                                     : backend::SplitMode::Auto;
  }
  if (ScalingStream) {
    // The multi-GPU rows: a GPU-bound stream — dedup off so compression
    // dominates, deep batches so each one spans several device
    // sub-batches worth of round-robin work.
    Config.DedupEnabled = false;
    Config.BatchChunks = 2048;
  }

  WorkloadConfig Load;
  Load.BlockSize = 4096;
  Load.TotalBytes = Smoke ? (ScalingStream ? 8ull << 20 : 8ull << 20)
                          : (ScalingStream ? 16ull << 20 : 20ull << 20);
  Load.DedupRatio = ScalingStream ? 1.0 : Point.DedupRatio;
  Load.CompressRatio = Point.CompressRatio;
  Load.Seed = ScalingStream ? 92 : 1234;
  const ByteVector Data = VdbenchStream(Load).generateAll();
  // The sweep's warmup covers the tuner's convergence (a handful of
  // batches): the measured phase reports the steady-state split.
  const std::uint64_t Warmup =
      ScalingStream ? 0 : (Smoke ? 3ull << 20 : 4ull << 20);

  ReductionPipeline Pipeline(Platform::paper(), Config);
  if (Warmup)
    Pipeline.write(ByteSpan(Data.data(), Warmup));
  Pipeline.resetMeasurement();
  Pipeline.write(ByteSpan(Data.data() + Warmup, Data.size() - Warmup));
  Pipeline.finish();

  RunResult Result;
  Result.Report = Pipeline.report();
  Result.RecipeSum = recipeChecksum(Pipeline.recipe());
  for (unsigned R = 0; R < ResourceCount; ++R)
    Result.BusyUs[R] =
        Pipeline.ledger().busyMicros(static_cast<Resource>(R));
  Result.SchedWallUs = Pipeline.scheduler().wallMicros();
  if (const backend::AutoSplitter *Splitter = Pipeline.splitter())
    Result.Split = Splitter->stats();
  return Result;
}

bool writeJson(const char *Path, const std::vector<Row> &Rows,
               double ScaleX) {
  std::FILE *File = std::fopen(Path, "w");
  if (!File)
    return false;
  std::fprintf(File, "{\n  \"bench\": \"backend\",\n"
                     "  \"multi_gpu_makespan_scale_1to2\": %.3f,\n"
                     "  \"rows\": [\n",
               ScaleX);
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(
        File,
        "    {\"point\": \"%s\", \"run\": \"%s\", \"wall_mbps\": %.3f, "
        "\"makespan_sec\": %.9f, \"busy_mbps\": %.3f, "
        "\"stored_bytes\": %llu, \"unique_chunks\": %llu, "
        "\"split_fraction\": %.4f, \"cpu_rate_bpus\": %.3f, "
        "\"gpu_rate_bpus\": %.3f}%s\n",
        R.Point, runKindName(R.Kind), R.R.Report.WallThroughputMBps,
        R.R.Report.MakespanSec, R.R.Report.ThroughputMBps,
        static_cast<unsigned long long>(R.R.Report.StoredBytes),
        static_cast<unsigned long long>(R.R.Report.UniqueChunks),
        R.R.Split.Fraction, R.R.Split.CpuRateBytesPerUs,
        R.R.Split.GpuRateBytesPerUs, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(File, "  ]\n}\n");
  std::fclose(File);
  return true;
}

/// Functional identity: the splitter never changes WHAT is stored —
/// recipes and dedup outcomes match the oracle exactly. (Stored bytes
/// are engine-specific: the GPU codec's token stream differs from the
/// CPU's by a fraction of a percent; the pass-through gate below pins
/// them where the engines match.)
bool expectOutcomeIdentical(const char *Point, const RunResult &A,
                            const RunResult &B, const char *What) {
  if (A.RecipeSum == B.RecipeSum &&
      A.Report.LogicalChunks == B.Report.LogicalChunks &&
      A.Report.UniqueChunks == B.Report.UniqueChunks &&
      A.Report.DupChunks == B.Report.DupChunks)
    return true;
  std::fprintf(stderr, "FAIL: %s/%s outcomes differ from the oracle\n",
               Point, What);
  return false;
}

/// Pass-through identity: same engine on both sides, so stored bytes,
/// every lane's busy charges and the scheduled wall match to the bit.
bool expectPassThrough(const char *Point, const RunResult &A,
                       const RunResult &B, const char *What) {
  bool Ok = A.SchedWallUs == B.SchedWallUs &&
            A.Report.StoredBytes == B.Report.StoredBytes;
  for (unsigned R = 0; R < ResourceCount; ++R)
    Ok = Ok && A.BusyUs[R] == B.BusyUs[R];
  if (!Ok)
    std::fprintf(stderr,
                 "FAIL: %s/%s charges differ from the pass-through "
                 "oracle\n",
                 Point, What);
  return Ok;
}

/// Device-count invariance: the aux lanes only redistribute capacity —
/// busy charges and stored bytes match to the bit (the wall is MEANT
/// to move).
bool expectBusyIdentical(const char *Point, const RunResult &A,
                         const RunResult &B, const char *What) {
  bool Ok = A.Report.StoredBytes == B.Report.StoredBytes;
  for (unsigned R = 0; R < ResourceCount; ++R)
    Ok = Ok && A.BusyUs[R] == B.BusyUs[R];
  if (!Ok)
    std::fprintf(stderr,
                 "FAIL: %s/%s busy charges vary with the device count\n",
                 Point, What);
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  banner("E12", Smoke ? "multi-backend splitter (smoke sweep)"
                      : "multi-backend splitter — auto split vs static "
                        "modes, multi-GPU scaling");

  const SweepPoint FullSweep[] = {
      {"dup-heavy", 4.0, 2.0},    {"balanced", 2.0, 2.0},
      {"compress-heavy", 1.2, 3.0}, {"low-reduction", 1.2, 1.3},
  };
  const SweepPoint SmokeSweep[] = {
      {"balanced", 2.0, 2.0},
      {"low-reduction", 1.2, 1.3},
  };
  const std::span<const SweepPoint> Sweep =
      Smoke ? std::span<const SweepPoint>(SmokeSweep)
            : std::span<const SweepPoint>(FullSweep);

  std::vector<Row> Rows;
  bool Pass = true;

  std::printf("%-14s %-12s %10s %10s %8s %9s %9s\n", "point", "run",
              "wall MB/s", "busy MB/s", "frac", "cpu B/us", "gpu B/us");
  for (const SweepPoint &Point : Sweep) {
    const RunResult Classic = runPoint(Point, RunKind::Classic, Smoke);
    const RunResult ClassicGpu =
        runPoint(Point, RunKind::ClassicGpu, Smoke);
    const RunResult Cpu = runPoint(Point, RunKind::BackCpu, Smoke);
    const RunResult Gpu = runPoint(Point, RunKind::BackGpu, Smoke);
    const RunResult Auto = runPoint(Point, RunKind::BackAuto, Smoke);
    Rows.push_back({Point.Name, RunKind::Classic, Classic});
    Rows.push_back({Point.Name, RunKind::ClassicGpu, ClassicGpu});
    Rows.push_back({Point.Name, RunKind::BackCpu, Cpu});
    Rows.push_back({Point.Name, RunKind::BackGpu, Gpu});
    Rows.push_back({Point.Name, RunKind::BackAuto, Auto});

    for (const Row &R : {Row{Point.Name, RunKind::Classic, Classic},
                         Row{Point.Name, RunKind::ClassicGpu, ClassicGpu},
                         Row{Point.Name, RunKind::BackCpu, Cpu},
                         Row{Point.Name, RunKind::BackGpu, Gpu},
                         Row{Point.Name, RunKind::BackAuto, Auto}})
      std::printf("%-14s %-12s %10.1f %10.1f %8.2f %9.1f %9.1f\n",
                  R.Point, runKindName(R.Kind),
                  R.R.Report.WallThroughputMBps,
                  R.R.Report.ThroughputMBps, R.R.Split.Fraction,
                  R.R.Split.CpuRateBytesPerUs,
                  R.R.Split.GpuRateBytesPerUs);

    // Gate 1: every run of a point stores the same thing.
    Pass &= expectOutcomeIdentical(Point.Name, Classic, Cpu, "backend-cpu");
    Pass &= expectOutcomeIdentical(Point.Name, Classic, Gpu, "backend-gpu");
    Pass &=
        expectOutcomeIdentical(Point.Name, Classic, Auto, "backend-auto");

    // Gate 2: forced splits are exact pass-throughs of the classic
    // engines — charges and wall to the bit.
    Pass &= expectPassThrough(Point.Name, Classic, Cpu, "backend-cpu");
    Pass &= expectPassThrough(Point.Name, ClassicGpu, Gpu, "backend-gpu");

    // Gate 3: the auto split beats (or matches, within the 2% model
    // tolerance) the best static mode at every sweep point.
    const double BestStatic = std::max(Cpu.Report.WallThroughputMBps,
                                       Gpu.Report.WallThroughputMBps);
    if (Auto.Report.WallThroughputMBps < BestStatic * 0.98) {
      std::fprintf(stderr,
                   "FAIL: %s auto %.1f MB/s below best static %.1f MB/s\n",
                   Point.Name, Auto.Report.WallThroughputMBps, BestStatic);
      Pass = false;
    }
  }

  // Multi-GPU scaling: the GPU-only backend on a GPU-bound stream,
  // one modelled device vs two. Compute makespan must scale >= 1.8x
  // while the busy charges stay bit-identical (the aux lanes only
  // redistribute capacity, never the work).
  const SweepPoint ScalePoint{"gpu-bound", 1.0, 4.0};
  const RunResult Gpu1 =
      runPoint(ScalePoint, RunKind::BackGpu, Smoke, /*GpuDevices=*/1,
               /*ScalingStream=*/true);
  const RunResult Gpu2 =
      runPoint(ScalePoint, RunKind::BackGpu, Smoke, /*GpuDevices=*/2,
               /*ScalingStream=*/true);
  Rows.push_back({ScalePoint.Name, RunKind::BackGpu, Gpu1});
  Rows.push_back({ScalePoint.Name, RunKind::BackGpu, Gpu2});
  const double ScaleX = Gpu2.Report.MakespanSec > 0.0
                            ? Gpu1.Report.MakespanSec /
                                  Gpu2.Report.MakespanSec
                            : 0.0;
  std::printf("\nmulti-GPU compute makespan, 1 -> 2 devices: %.2fx\n",
              ScaleX);
  Pass &= expectOutcomeIdentical("gpu-bound", Gpu1, Gpu2, "2-gpu");
  Pass &= expectBusyIdentical("gpu-bound", Gpu1, Gpu2, "2-gpu");
  if (ScaleX < 1.8) {
    std::fprintf(stderr,
                 "FAIL: multi-GPU makespan scaling %.2fx below the 1.8x "
                 "acceptance bar\n",
                 ScaleX);
    Pass = false;
  }

  const char *JsonPath = "BENCH_backend.json";
  if (!writeJson(JsonPath, Rows, ScaleX))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath);
  else
    std::printf("json: %s (%zu rows)\n", JsonPath, Rows.size());

  std::printf(Pass ? "PASS: backend gates met\n"
                   : "FAIL: backend gates not met\n");
  return Pass ? 0 : 1;
}
