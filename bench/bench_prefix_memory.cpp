//===----------------------------------------------------------------------===//
///
/// \file
/// A3 — the prefix-removal memory optimization (§3.1(1)): "Assuming
/// that the storage capacity is 4 TB, the chunk size is 8 KB, and the
/// index size is 32 bytes … the storage system requires 16 GB of
/// memory for the index. … If the storage system uses a 2-byte prefix
/// value, we can save 1 GB of memory in this way."
///
/// This bench verifies the arithmetic analytically for a prefix sweep
/// and then measures the real per-entry memory of the CpuBinStore to
/// confirm the implementation realizes the saving.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "index/CpuBinStore.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

int main() {
  banner("A3", "prefix-removal index memory (paper §3.1(1))");

  // Analytic reproduction of the §2/§3.1 sizing example.
  const std::uint64_t Capacity = 4ull << 40; // 4 TB
  const std::uint64_t ChunkSize = 8192;      // 8 KiB
  const std::uint64_t Entries = Capacity / ChunkSize;
  const double FullIndexGiB =
      static_cast<double>(Entries) * 32.0 / (1ull << 30);
  std::printf("4 TB / 8 KiB chunks -> %llu Mi entries; 32 B entries -> "
              "%.0f GiB index\n\n",
              static_cast<unsigned long long>(Entries >> 20),
              FullIndexGiB);

  std::printf("%12s %10s %14s %16s %14s\n", "prefix", "bins",
              "entry bytes", "index size", "saved");
  for (unsigned PrefixBytes : {0u, 1u, 2u, 3u, 4u}) {
    const unsigned BinBits = PrefixBytes * 8;
    const unsigned SuffixBytes = 20 - PrefixBytes;
    const unsigned EntryBytes = SuffixBytes + 12; // metadata per §2
    const double IndexGiB =
        static_cast<double>(Entries) * EntryBytes / (1ull << 30);
    const double SavedGiB =
        static_cast<double>(Entries) * PrefixBytes / (1ull << 30);
    std::printf("%9u B %10llu %11u B %13.2f GiB %11.2f GiB\n", PrefixBytes,
                static_cast<unsigned long long>(
                    BinBits == 0 ? 1 : (1ull << BinBits)),
                EntryBytes, IndexGiB, SavedGiB);
  }

  // Measured: real store memory for the same entries at two layouts.
  const std::size_t Count = 50000;
  std::size_t Memory[2];
  const unsigned Layouts[2] = {8, 16}; // 1-byte vs 2-byte prefix
  for (int L = 0; L < 2; ++L) {
    const BinLayout Layout(Layouts[L]);
    CpuBinStore Store(Layout, 0, 1);
    for (std::size_t I = 0; I < Count; ++I) {
      std::uint8_t Data[8];
      storeLe64(Data, I);
      const Fingerprint Fp = Fingerprint::ofData(ByteSpan(Data, 8));
      std::uint8_t Suffix[Fingerprint::Size];
      Layout.extractSuffix(Fp, Suffix);
      ByteVector Suffixes(Suffix, Suffix + Layout.suffixBytes());
      Store.mergeRun(Layout.binOf(Fp),
                     ByteSpan(Suffixes.data(), Suffixes.size()), {I});
    }
    Memory[L] = Store.memoryBytes();
  }
  std::printf("\nmeasured store memory for %zu entries: 1-byte prefix "
              "%zu B, 2-byte prefix %zu B\n",
              Count, Memory[0], Memory[1]);

  std::printf("\n");
  char Measured[64];
  std::snprintf(Measured, sizeof(Measured), "%.2f GiB",
                static_cast<double>(Entries) * 2.0 / (1ull << 30));
  paperRow("2-byte prefix saving at 4 TB / 8 KiB", "1 GB", Measured);
  std::snprintf(Measured, sizeof(Measured), "%zu B",
                (Memory[0] - Memory[1]) / Count);
  paperRow("measured per-entry saving (2B vs 1B prefix)", "1 B", Measured);
  return 0;
}
