//===----------------------------------------------------------------------===//
///
/// \file
/// A6 — chunking-strategy ablation (extension): fixed-size vs
/// content-defined chunking on shift-prone data. Primary storage
/// writes arrive block-aligned (the paper's fixed 4 KiB is right
/// there), but file/backup ingest shifts data; CDC resynchronizes
/// chunk boundaries after insertions at a CPU cost.
///
/// Workload: a stream written twice, the second copy with bytes
/// inserted at the front — fixed chunking dedups nothing across the
/// shift, CDC re-finds almost everything.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

namespace {

struct CdcOutcome {
  double DedupRatio = 0.0;
  double Iops = 0.0;
  std::uint64_t Chunks = 0;
};

CdcOutcome run(ChunkingMode Mode, std::size_t ShiftBytes) {
  PipelineConfig Config;
  Config.Mode = PipelineMode::GpuCompress;
  Config.Chunking = Mode;
  Config.Dedup.Index.BinBits = 8;

  WorkloadConfig Load;
  Load.TotalBytes = 8ull << 20;
  Load.DedupRatio = 1.0; // all dedup must come from the shifted replay
  Load.CompressRatio = 2.0;
  Load.Seed = 77;
  const ByteVector Original = VdbenchStream(Load).generateAll();
  ByteVector Shifted(ShiftBytes, 0xEE);
  Shifted.insert(Shifted.end(), Original.begin(), Original.end());

  ReductionPipeline Pipeline(Platform::paper(), Config);
  Pipeline.write(ByteSpan(Original.data(), Original.size()));
  Pipeline.write(ByteSpan(Shifted.data(), Shifted.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  CdcOutcome Outcome;
  Outcome.DedupRatio = Report.DedupRatio;
  Outcome.Iops = Report.ThroughputIops;
  Outcome.Chunks = Report.LogicalChunks;
  return Outcome;
}

const char *modeName(ChunkingMode Mode) {
  switch (Mode) {
  case ChunkingMode::Fixed:
    return "fixed-4KiB";
  case ChunkingMode::Rabin:
    return "rabin-cdc";
  default:
    return "fastcdc";
  }
}

} // namespace

int main() {
  banner("A6", "fixed vs content-defined chunking on shifted data "
               "(extension)");

  std::printf("stream written twice, second copy shifted by N bytes:\n");
  std::printf("%12s %12s %12s %12s %12s\n", "chunking", "shift", "dedup",
              "IOPS (K)", "chunks");
  for (ChunkingMode Mode :
       {ChunkingMode::Fixed, ChunkingMode::Rabin, ChunkingMode::FastCdc}) {
    for (std::size_t Shift : {0u, 1u, 100u, 4096u}) {
      const CdcOutcome Outcome = run(Mode, Shift);
      std::printf("%12s %11zuB %11.2fx %12.1f %12llu\n", modeName(Mode),
                  Shift, Outcome.DedupRatio, Outcome.Iops / 1e3,
                  static_cast<unsigned long long>(Outcome.Chunks));
    }
  }

  std::printf("\nexpected shape: at shift 0 every strategy dedups the "
              "replay (~2x); any\nnonzero shift collapses fixed-size "
              "dedup to ~1x while CDC holds near 2x,\npaying ~CDC scan "
              "cost in IOPS. Note shift=4096 realigns fixed chunking\n"
              "(a block-multiple shift), which is exactly why block "
              "storage can use it.\n");
  return 0;
}
