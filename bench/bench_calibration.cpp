//===----------------------------------------------------------------------===//
///
/// \file
/// E5 — §4(3)/§3.3: the dummy-I/O calibration step. "Because hardware
/// specifications may be different on different platforms, we cannot
/// guarantee that this integration is always right. Therefore … the
/// performance of these integration methods is compared using dummy
/// I/O to determine the best fit." This bench runs the calibrator on
/// each platform profile and prints the per-mode probes and verdicts.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Calibrator.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

int main() {
  banner("E5", "dummy-I/O calibration across platform profiles "
               "(paper §4(3))");

  for (const Platform &Plat : Platform::allProfiles()) {
    CalibratorConfig Config;
    Config.Base.Dedup.Index.BinBits = 8;
    Config.Base.Dedup.Index.BufferCapacityPerBin = 8;
    const CalibrationResult Result = calibrate(Plat, Config);
    std::printf("\nplatform: %s\n", Plat.Name.c_str());
    std::printf("%s", Result.summary().c_str());
  }

  std::printf("\n");
  CalibratorConfig Config;
  Config.Base.Dedup.Index.BinBits = 8;
  Config.Base.Dedup.Index.BufferCapacityPerBin = 8;
  paperRow("choice on the paper's platform", "gpu-compress",
           pipelineModeName(calibrate(Platform::paper(), Config).BestMode));
  paperRow("choice without a GPU", "cpu-only",
           pipelineModeName(calibrate(Platform::noGpu(), Config).BestMode));
  return 0;
}
