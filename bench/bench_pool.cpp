//===----------------------------------------------------------------------===//
///
/// \file
/// X3 — cross-volume deduplication in a storage pool (extension): the
/// VDI golden-image pattern. N clone volumes are provisioned from one
/// template and then diverge by a per-clone edit fraction; the pool's
/// shared dedup domain stores the common chunks once, so total
/// reduction grows with the clone count while per-clone divergence
/// prices the rest.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/StoragePool.h"
#include "util/Random.h"
#include "workload/Trace.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

namespace {

constexpr std::size_t BlockSize = 4096;
constexpr std::uint64_t ImageBlocks = 512; // 2 MiB golden image

/// Provisions `CloneCount` clones and diverges each by `EditFraction`.
PoolStats provision(unsigned CloneCount, double EditFraction) {
  PipelineConfig Config;
  Config.Mode = PipelineMode::GpuCompress;
  Config.Dedup.Index.BinBits = 10;
  StoragePool Pool(Platform::paper(), Config);
  Random Rng(7);

  for (unsigned Clone = 0; Clone < CloneCount; ++Clone) {
    Volume &Vol = Pool.createVolume(ImageBlocks);
    // The golden image: identical across clones.
    ByteVector Image(ImageBlocks * BlockSize);
    for (std::uint64_t I = 0; I < ImageBlocks; ++I)
      fillTraceBlock(I, MutableByteSpan(Image.data() + I * BlockSize,
                                        BlockSize));
    if (!Vol.writeBlocks(0, ByteSpan(Image.data(), Image.size())))
      std::abort();
    // Per-clone divergence: rewrite a fraction of blocks with
    // clone-unique content.
    for (std::uint64_t I = 0; I < ImageBlocks; ++I) {
      if (!Rng.nextBool(EditFraction))
        continue;
      ByteVector Block(BlockSize);
      fillTraceBlock(1000000ull * (Clone + 1) + I,
                     MutableByteSpan(Block.data(), BlockSize));
      Vol.writeBlocks(I, ByteSpan(Block.data(), Block.size()));
    }
  }
  Pool.collectGarbage();
  Pool.flush();
  return Pool.stats();
}

} // namespace

int main() {
  banner("X3", "cross-volume dedup: VDI clone farm on one pool "
               "(extension)");

  std::printf("clone-count sweep (5%% divergence per clone):\n");
  std::printf("%8s %14s %14s %14s %12s\n", "clones", "logical MiB",
              "physical MiB", "live chunks", "reduction");
  for (unsigned Clones : {1u, 2u, 4u, 8u, 16u}) {
    const PoolStats Stats = provision(Clones, 0.05);
    std::printf("%8u %14.1f %14.2f %14llu %11.1fx\n", Clones,
                static_cast<double>(Stats.LogicalBytes) / (1 << 20),
                static_cast<double>(Stats.PhysicalBytes) / (1 << 20),
                static_cast<unsigned long long>(Stats.LiveChunks),
                Stats.reductionRatio());
  }

  std::printf("\ndivergence sweep (8 clones):\n");
  std::printf("%12s %14s %14s %12s\n", "divergence", "logical MiB",
              "physical MiB", "reduction");
  for (double Edit : {0.0, 0.05, 0.2, 0.5, 1.0}) {
    const PoolStats Stats = provision(8, Edit);
    std::printf("%11.0f%% %14.1f %14.2f %11.1fx\n", Edit * 100.0,
                static_cast<double>(Stats.LogicalBytes) / (1 << 20),
                static_cast<double>(Stats.PhysicalBytes) / (1 << 20),
                Stats.reductionRatio());
  }

  std::printf("\nexpected shape: reduction grows ~linearly with the clone "
              "count at low\ndivergence (the image is stored once) and "
              "collapses toward the pure\ncompression ratio as clones "
              "fully diverge.\n");
  return 0;
}
