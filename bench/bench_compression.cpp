//===----------------------------------------------------------------------===//
///
/// \file
/// E3 — §4(2) parallel data compression: IOPS of the compression-only
/// pipeline as a function of the workload's compression ratio, CPU vs
/// GPU vs the SSD baseline. Paper: CPU ≈ 50 K IOPS at low ratio (below
/// the SSD's ≈ 80 K), GPU ≈ 100 K even at low ratio (always above the
/// SSD); GPU is 88.3% faster than parallel QuickLZ on average.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>
#include <vector>

using namespace padre;
using namespace padre::bench;

int main() {
  banner("E3", "parallel data compression IOPS vs compression ratio "
               "(paper §4(2))");

  ResourceLedger Scratch;
  const SsdModel Ssd(Platform::paper().Model, Scratch);
  const double SsdIops = Ssd.baselineWriteIops4K();

  std::printf("%12s %14s %14s %14s %10s\n", "comp ratio", "cpu IOPS (K)",
              "gpu IOPS (K)", "ssd IOPS (K)", "gpu/cpu");

  const std::vector<double> Ratios = {1.0, 1.33, 2.0, 3.0, 4.0};
  double GainSum = 0.0;
  double LowRatioCpu = 0.0, LowRatioGpu = 0.0;
  for (double Ratio : Ratios) {
    RunSpec Spec;
    Spec.DedupEnabled = false;
    Spec.CompressRatio = Ratio;
    Spec.DedupRatio = 1.0;
    Spec.MeasureBytes = 8ull << 20;
    Spec.WarmupBytes = 2ull << 20;

    Spec.Mode = PipelineMode::CpuOnly;
    const PipelineReport Cpu = runSpec(Platform::paper(), Spec);
    Spec.Mode = PipelineMode::GpuCompress;
    const PipelineReport Gpu = runSpec(Platform::paper(), Spec);

    if (Ratio == 1.0) {
      LowRatioCpu = Cpu.ThroughputIops;
      LowRatioGpu = Gpu.ThroughputIops;
    }
    GainSum += Gpu.ThroughputIops / Cpu.ThroughputIops;
    std::printf("%12.2f %14.1f %14.1f %14.1f %9.2fx\n", Ratio,
                Cpu.ThroughputIops / 1e3, Gpu.ThroughputIops / 1e3,
                SsdIops / 1e3, Gpu.ThroughputIops / Cpu.ThroughputIops);
  }

  std::printf("\n");
  char Measured[64];
  std::snprintf(Measured, sizeof(Measured), "%.1fK IOPS",
                LowRatioCpu / 1e3);
  paperRow("CPU compression at low ratio", "~50K IOPS (< SSD)", Measured);
  std::snprintf(Measured, sizeof(Measured), "%.1fK IOPS",
                LowRatioGpu / 1e3);
  paperRow("GPU compression at low ratio", "~100K IOPS (> SSD)", Measured);
  std::snprintf(Measured, sizeof(Measured), "+%.1f%%",
                (GainSum / static_cast<double>(Ratios.size()) - 1.0) *
                    100.0);
  paperRow("GPU gain over parallel QuickLZ (avg)", "+88.3%", Measured);
  return 0;
}
