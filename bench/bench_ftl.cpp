//===----------------------------------------------------------------------===//
///
/// \file
/// E9 — the FTL under shaped workloads: measured write amplification
/// replaces the cost model's constant when the page-level FTL runs
/// beneath the SSD model. Three questions, each a gate:
///
///   1. Does workload shape drive WA the way NAND folklore says?
///      Sequential overwrite passes retire whole blocks (WA -> 1);
///      skewed-hot random overwrites leave mixed-validity blocks that
///      GC must copy out of (WA > sequential).
///   2. Does inline reduction extend device lifetime? The same shaped
///      stream with dedup+compression on must program fewer pages,
///      amplify less, and burn a smaller fraction of the erase budget.
///   3. Parity: with the FTL *disabled* the constant-WA accounting must
///      reproduce the pre-FTL NAND byte counts bit-exactly (golden
///      values captured before the FTL existed).
///
/// Emits BENCH_ftl.json. `--smoke` runs a reduced scenario sweep.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/TraceRunner.h"
#include "core/Volume.h"
#include "workload/Scenario.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

using namespace padre;
using namespace padre::bench;

namespace {

/// Pre-FTL golden NAND accounting (ops=3000, blocks=4096, seed=42,
/// default PipelineConfig on Platform::paper()). Captured from the
/// tree immediately before the FTL landed; the constant-WA path must
/// keep reproducing these bit-exactly.
constexpr std::uint64_t GoldenHostBytes = 33517568ull;
constexpr std::uint64_t GoldenReducedNand = 153074ull;
constexpr std::uint64_t GoldenRawNand = 35330106ull;

/// Shared geometry: a 2048-block volume over a 64-block/64-page FTL
/// (16 MiB raw NAND, ~13 MiB logical after 12% OP + reserve), so every
/// scenario wraps the device several times and GC must run.
constexpr std::uint64_t VolumeBlocks = 2048;

ssd::FtlConfig ftlGeometry() {
  ssd::FtlConfig Ftl;
  Ftl.Blocks = 64;
  Ftl.PagesPerBlock = 64;
  Ftl.OverprovisionPct = 12.0;
  return Ftl;
}

struct ScenarioOutcome {
  const char *Shape = "";
  double Waf = 0.0;
  double P50Us = 0.0;
  double P99Us = 0.0;
  std::uint64_t Erases = 0;
  std::uint64_t EraseSpread = 0;
  double LifetimeFraction = 0.0;
  /// Whole-device lifetime in units of "this workload" (host bytes /
  /// erase-budget fraction burned). Infinite when no erase happened.
  double LifetimeX = 0.0;
  bool Clean = false;
  bool InvariantsOk = false;
};

ScenarioOutcome runScenario(ScenarioShape Shape, std::uint64_t Operations,
                            bool Reduced) {
  PipelineConfig Config;
  Config.Mode = PipelineMode::CpuOnly;
  Config.Ftl = ftlGeometry();
  ReductionPipeline Pipeline(Platform::paper(), Config);
  Volume Vol(Pipeline, VolumeConfig{VolumeBlocks});

  ScenarioConfig Scen;
  Scen.Shape = Shape;
  Scen.Operations = Operations;
  Scen.VolumeBlocks = VolumeBlocks;
  Scen.Seed = 7;
  const TraceLog Log = synthesizeScenario(Scen);

  ReplayConfig Replay;
  Replay.RawWrites = !Reduced;
  Replay.GcEveryOps = 64; // invalidate dead chunks as the stream runs
  const TimedReplayReport Report = replayTraceTimed(Vol, Log, Replay);

  const ssd::Ftl *Ftl = Pipeline.ssd().ftl();
  ScenarioOutcome Out;
  Out.Shape = scenarioShapeName(Shape);
  Out.Waf = Ftl->measuredWaf();
  Out.P50Us = Report.P50Us;
  Out.P99Us = Report.P99Us;
  Out.Erases = Ftl->counters().Erases;
  Out.EraseSpread = Ftl->eraseSpread();
  Out.LifetimeFraction = Ftl->lifetimeFractionUsed();
  Out.LifetimeX = Out.LifetimeFraction > 0.0
                      ? 1.0 / Out.LifetimeFraction
                      : 0.0;
  Out.Clean = Report.Stats.clean();
  Out.InvariantsOk = Ftl->checkInvariants(nullptr);
  return Out;
}

/// Replays the pre-FTL golden harness byte-for-byte: default pipeline
/// (no FTL), synthesized trace, reduced then raw replay.
bool runParityGate() {
  bool Pass = true;
  // Reduced replay through replayTrace + flush.
  {
    ReductionPipeline Pipeline(Platform::paper(), PipelineConfig{});
    Volume Vol(Pipeline, VolumeConfig{4096});
    TraceSynthesisConfig T;
    T.Operations = 3000;
    T.VolumeBlocks = 4096;
    T.Seed = 42;
    const TraceLog Log = TraceLog::synthesize(T);
    const TraceRunStats Stats = replayTrace(Vol, Log);
    Vol.flush();
    const std::uint64_t Host = Pipeline.ssd().hostBytesWritten();
    const std::uint64_t Nand = Pipeline.ssd().nandBytesWritten();
    if (Host != GoldenHostBytes || Nand != GoldenReducedNand ||
        !Stats.clean()) {
      std::fprintf(stderr,
                   "FAIL: reduced parity host=%llu nand=%llu "
                   "(want %llu/%llu)\n",
                   static_cast<unsigned long long>(Host),
                   static_cast<unsigned long long>(Nand),
                   static_cast<unsigned long long>(GoldenHostBytes),
                   static_cast<unsigned long long>(GoldenReducedNand));
      Pass = false;
    }
  }
  // Raw replay: writes via writeBlocksRaw, trims applied, reads skipped.
  {
    ReductionPipeline Pipeline(Platform::paper(), PipelineConfig{});
    Volume Vol(Pipeline, VolumeConfig{4096});
    TraceSynthesisConfig T;
    T.Operations = 3000;
    T.VolumeBlocks = 4096;
    T.Seed = 42;
    const TraceLog Log = TraceLog::synthesize(T);
    ByteVector Buf;
    for (const TraceRecord &R : Log.Records) {
      if (R.Lba + R.Blocks > Vol.blockCount())
        continue;
      if (R.Op == TraceOp::Write) {
        Buf.resize(static_cast<std::size_t>(R.Blocks) * 4096);
        for (std::uint32_t I = 0; I < R.Blocks; ++I)
          fillTraceBlock(R.ContentTag,
                         MutableByteSpan(Buf.data() + I * 4096, 4096));
        Vol.writeBlocksRaw(R.Lba, ByteSpan(Buf.data(), Buf.size()));
      } else if (R.Op == TraceOp::Trim) {
        Vol.trim(R.Lba, R.Blocks);
      }
    }
    Vol.flush();
    const std::uint64_t Host = Pipeline.ssd().hostBytesWritten();
    const std::uint64_t Nand = Pipeline.ssd().nandBytesWritten();
    if (Host != GoldenHostBytes || Nand != GoldenRawNand) {
      std::fprintf(stderr,
                   "FAIL: raw parity host=%llu nand=%llu "
                   "(want %llu/%llu)\n",
                   static_cast<unsigned long long>(Host),
                   static_cast<unsigned long long>(Nand),
                   static_cast<unsigned long long>(GoldenHostBytes),
                   static_cast<unsigned long long>(GoldenRawNand));
      Pass = false;
    }
  }
  return Pass;
}

bool writeJson(const char *Path,
               const std::vector<ScenarioOutcome> &Shapes,
               const ScenarioOutcome &ReductionOff,
               const ScenarioOutcome &ReductionOn, bool ParityPass) {
  std::FILE *File = std::fopen(Path, "w");
  if (!File)
    return false;
  std::fprintf(File, "{\n  \"experiment\": \"E9\",\n  \"shapes\": [\n");
  for (std::size_t I = 0; I < Shapes.size(); ++I) {
    const ScenarioOutcome &S = Shapes[I];
    std::fprintf(File,
                 "    {\"shape\": \"%s\", \"waf\": %.4f, \"p50_us\": "
                 "%.1f, \"p99_us\": %.1f, \"erases\": %llu, "
                 "\"erase_spread\": %llu, \"lifetime_fraction\": "
                 "%.6f}%s\n",
                 S.Shape, S.Waf, S.P50Us, S.P99Us,
                 static_cast<unsigned long long>(S.Erases),
                 static_cast<unsigned long long>(S.EraseSpread),
                 S.LifetimeFraction, I + 1 < Shapes.size() ? "," : "");
  }
  std::fprintf(File,
               "  ],\n  \"reduction\": {\n"
               "    \"off\": {\"waf\": %.4f, \"lifetime_fraction\": "
               "%.6f},\n"
               "    \"on\": {\"waf\": %.4f, \"lifetime_fraction\": "
               "%.6f}\n  },\n"
               "  \"parity_pass\": %s\n}\n",
               ReductionOff.Waf, ReductionOff.LifetimeFraction,
               ReductionOn.Waf, ReductionOn.LifetimeFraction,
               ParityPass ? "true" : "false");
  std::fclose(File);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  banner("E9", Smoke ? "page-level FTL under shaped workloads (smoke)"
                     : "page-level FTL under shaped workloads — "
                       "measured WA, latency, device lifetime");

  //===------------------------------------------------------------===//
  // 1. Write amplification by workload shape (reduction off: the FTL
  //    sees every host block, so the shape's overwrite pattern is the
  //    only variable).
  //===------------------------------------------------------------===//
  // Ops stay at full scale even in smoke: below ~2 device wraps GC
  // never has to copy and every WA converges to 1.0, which would make
  // the shape gate vacuous. Smoke trims the shape sweep instead.
  const std::uint64_t Ops = 4000;
  const std::vector<ScenarioShape> Sweep =
      Smoke ? std::vector<ScenarioShape>{ScenarioShape::Sequential,
                                         ScenarioShape::SkewedHot}
            : std::vector<ScenarioShape>{
                  ScenarioShape::Sequential, ScenarioShape::UniformRandom,
                  ScenarioShape::SkewedHot, ScenarioShape::BurstyHot,
                  ScenarioShape::DayNight};
  std::vector<ScenarioOutcome> Shapes;
  std::printf("\nWA by shape (%llu ops, raw writes, 64-block FTL, "
              "12%% OP):\n%-14s %8s %10s %10s %8s %8s %10s\n",
              static_cast<unsigned long long>(Ops), "shape", "WA",
              "p50 (us)", "p99 (us)", "erases", "spread", "lifetime");
  for (const ScenarioShape Shape : Sweep) {
    Shapes.push_back(runScenario(Shape, Ops, /*Reduced=*/false));
    const ScenarioOutcome &S = Shapes.back();
    std::printf("%-14s %8.3f %10.1f %10.1f %8llu %8llu %9.0fx\n",
                S.Shape, S.Waf, S.P50Us, S.P99Us,
                static_cast<unsigned long long>(S.Erases),
                static_cast<unsigned long long>(S.EraseSpread),
                S.LifetimeX);
  }

  //===------------------------------------------------------------===//
  // 2. Reduction on vs off over the skewed-hot shape.
  //===------------------------------------------------------------===//
  const ScenarioOutcome Off =
      runScenario(ScenarioShape::SkewedHot, Ops, /*Reduced=*/false);
  const ScenarioOutcome On =
      runScenario(ScenarioShape::SkewedHot, Ops, /*Reduced=*/true);
  std::printf("\nreduction on vs off (skewed-hot):\n"
              "%-14s %8s %12s %14s\n", "pipeline", "WA", "erases",
              "budget used");
  std::printf("%-14s %8.3f %12llu %13.2f%%\n", "raw", Off.Waf,
              static_cast<unsigned long long>(Off.Erases),
              Off.LifetimeFraction * 100.0);
  std::printf("%-14s %8.3f %12llu %13.2f%%\n", "reduced", On.Waf,
              static_cast<unsigned long long>(On.Erases),
              On.LifetimeFraction * 100.0);

  //===------------------------------------------------------------===//
  // 3. Constant-WA parity (FTL disabled).
  //===------------------------------------------------------------===//
  const bool ParityPass = runParityGate();
  std::printf("\nconstant-WA parity (FTL off): %s\n",
              ParityPass ? "bit-exact with pre-FTL goldens" : "FAILED");

  const char *JsonPath = "BENCH_ftl.json";
  if (!writeJson(JsonPath, Shapes, Off, On, ParityPass))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath);
  else
    std::printf("json: %s\n", JsonPath);

  //===------------------------------------------------------------===//
  // Acceptance gates.
  //===------------------------------------------------------------===//
  bool Pass = ParityPass;
  const ScenarioOutcome &Seq = Shapes.front();
  for (const ScenarioOutcome &S : Shapes) {
    if (!S.Clean || !S.InvariantsOk) {
      std::fprintf(stderr, "FAIL: %s replay not clean or FTL "
                           "invariants broken\n",
                   S.Shape);
      Pass = false;
    }
  }
  // Gate 1: hot random overwrites must amplify more than sequential
  // overwrite passes.
  const ScenarioOutcome *Skewed = nullptr;
  for (const ScenarioOutcome &S : Shapes)
    if (std::strcmp(S.Shape, "skewed-hot") == 0)
      Skewed = &S;
  if (!Skewed || !(Skewed->Waf > Seq.Waf)) {
    std::fprintf(stderr, "FAIL: skewed-hot WA (%.3f) not above "
                         "sequential (%.3f)\n",
                 Skewed ? Skewed->Waf : 0.0, Seq.Waf);
    Pass = false;
  }
  // Gate 2: reduction must lower WA and burn less of the erase budget
  // (longer device lifetime) on the same stream.
  if (!(On.Waf < Off.Waf) ||
      !(On.LifetimeFraction < Off.LifetimeFraction)) {
    std::fprintf(stderr, "FAIL: reduction did not help: WA %.3f -> "
                         "%.3f, budget %.4f%% -> %.4f%%\n",
                 Off.Waf, On.Waf, Off.LifetimeFraction * 100.0,
                 On.LifetimeFraction * 100.0);
    Pass = false;
  }

  std::printf("\n");
  paperRow("WA vs workload shape", "skewed > sequential",
           Pass ? "reproduced" : "see FAIL lines");
  paperRow("inline reduction on endurance", "fewer NAND programs",
           On.LifetimeFraction < Off.LifetimeFraction ? "reproduced"
                                                      : "NOT reproduced");
  return Pass ? 0 : 1;
}
