//===----------------------------------------------------------------------===//
///
/// \file
/// E6 — pipelined batch scheduler: wall throughput vs in-flight window
/// depth for every integration mode (dedup 2.0, compression 2.0).
/// Depth 1 is the serial stage chain; deeper windows overlap batch N's
/// destage with batch N+1's compression and batch N+2's dedup
/// (Fig. 1's intra-batch overlap lifted across batches). The busy
/// charges and functional results are depth-invariant — only the
/// dependency-constrained wall time moves — so the speedup column
/// isolates the scheduling win.
///
/// Emits BENCH_pipeline.json (machine-readable rows) next to the
/// binary's working directory. Exit status is the acceptance gate:
/// nonzero unless depth 4 strictly beats depth 1 on gpu-compress wall
/// throughput (and, in the full run, by the >= 1.3x bar).
///
/// `bench_pipeline --smoke` runs a reduced stream and only the
/// gpu-compress depth {1,4} pair — the CI variant.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace padre;
using namespace padre::bench;

namespace {

struct Row {
  PipelineMode Mode;
  std::size_t Depth;
  PipelineReport Report;
};

bool writeJson(const char *Path, const std::vector<Row> &Rows) {
  std::FILE *File = std::fopen(Path, "w");
  if (!File)
    return false;
  std::fprintf(File, "{\n  \"bench\": \"pipeline\",\n  \"rows\": [\n");
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(
        File,
        "    {\"mode\": \"%s\", \"depth\": %zu, \"wall_sec\": %.9f, "
        "\"wall_mbps\": %.3f, \"wall_kiops\": %.3f, "
        "\"makespan_sec\": %.9f, \"busy_mbps\": %.3f, "
        "\"hidden_cpu_sec\": %.9f, \"hidden_gpu_sec\": %.9f, "
        "\"hidden_pcie_sec\": %.9f, \"hidden_ssd_sec\": %.9f}%s\n",
        pipelineModeName(R.Mode), R.Depth, R.Report.WallSec,
        R.Report.WallThroughputMBps, R.Report.WallThroughputIops / 1e3,
        R.Report.MakespanSec, R.Report.ThroughputMBps,
        R.Report.SchedHiddenSec[static_cast<unsigned>(Resource::CpuPool)],
        R.Report.SchedHiddenSec[static_cast<unsigned>(Resource::Gpu)],
        R.Report.SchedHiddenSec[static_cast<unsigned>(Resource::Pcie)],
        R.Report.SchedHiddenSec[static_cast<unsigned>(Resource::Ssd)],
        I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(File, "  ]\n}\n");
  std::fclose(File);
  return true;
}

const PipelineReport *find(const std::vector<Row> &Rows, PipelineMode Mode,
                           std::size_t Depth) {
  for (const Row &R : Rows)
    if (R.Mode == Mode && R.Depth == Depth)
      return &R.Report;
  return nullptr;
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  banner("E6", Smoke ? "pipelined batch scheduler (smoke: gpu-compress, "
                       "depth 1 vs 4)"
                     : "pipelined batch scheduler — wall throughput vs "
                       "window depth");

  const std::size_t Depths[] = {1, 2, 4, 8};
  std::vector<Row> Rows;
  for (unsigned M = 0; M < PipelineModeCount; ++M) {
    const auto Mode = static_cast<PipelineMode>(M);
    if (Smoke && Mode != PipelineMode::GpuCompress)
      continue;
    for (const std::size_t Depth : Depths) {
      if (Smoke && Depth != 1 && Depth != 4)
        continue;
      RunSpec Spec;
      Spec.Mode = Mode;
      Spec.PipelineDepth = Depth;
      if (Smoke) {
        Spec.WarmupBytes = 1ull << 20;
        Spec.MeasureBytes = 4ull << 20;
      }
      Rows.push_back({Mode, Depth, runSpec(Platform::paper(), Spec)});
    }
  }

  std::printf("%-14s %6s %12s %12s %12s %10s\n", "mode", "depth",
              "wall (s)", "wall MB/s", "busy MB/s", "speedup");
  for (const Row &R : Rows) {
    const PipelineReport *Serial = find(Rows, R.Mode, 1);
    const double Speedup =
        Serial && R.Report.WallSec > 0.0
            ? Serial->WallSec / R.Report.WallSec
            : 0.0;
    std::printf("%-14s %6zu %12.4f %12.1f %12.1f %9.2fx\n",
                pipelineModeName(R.Mode), R.Depth, R.Report.WallSec,
                R.Report.WallThroughputMBps, R.Report.ThroughputMBps,
                Speedup);
  }

  const char *JsonPath = "BENCH_pipeline.json";
  if (!writeJson(JsonPath, Rows))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath);
  else
    std::printf("\njson: %s (%zu rows)\n", JsonPath, Rows.size());

  // Acceptance gate: the window must actually buy wall throughput on
  // the paper's best integration mode.
  const PipelineReport *D1 = find(Rows, PipelineMode::GpuCompress, 1);
  const PipelineReport *D4 = find(Rows, PipelineMode::GpuCompress, 4);
  if (!D1 || !D4 || D1->WallSec <= 0.0 || D4->WallSec <= 0.0) {
    std::fprintf(stderr, "error: missing gpu-compress depth 1/4 rows\n");
    return 1;
  }
  const double Gain = D1->WallSec / D4->WallSec;
  std::printf("\ngpu-compress depth 4 vs 1: %.2fx wall throughput\n", Gain);
  if (D4->WallThroughputMBps <= D1->WallThroughputMBps) {
    std::fprintf(stderr,
                 "FAIL: depth 4 does not beat depth 1 on gpu-compress\n");
    return 1;
  }
  if (!Smoke && Gain < 1.3) {
    std::fprintf(stderr, "FAIL: depth 4 speedup %.2fx below the 1.3x "
                         "acceptance bar\n",
                 Gain);
    return 1;
  }
  std::printf("PASS: pipelining gate met\n");
  return 0;
}
