//===----------------------------------------------------------------------===//
///
/// \file
/// B1 — related-work baselines (§5): the two prior designs the paper
/// positions against, run on the same dedup-only workload as E2.
///
///   * P-Dedupe-style (Xia et al.): multicore-parallel hashing but
///     indexing through one shared structure — "they did not consider
///     the operation of indexing which is known as main bottleneck".
///     Modelled by charging index work to a capacity-one lock resource
///     alongside the CPU.
///   * GHOST-style (Kim et al.): indexing offloaded to the GPU for
///     every chunk — "they did not consider utilizing CPU that
///     performs better than GPU for indexing". Modelled by pinning the
///     offload fraction at 1.0.
///
/// The paper's bin-based CPU indexing with an adaptive GPU co-processor
/// must beat both, and the gaps must widen as cores grow (P-Dedupe) or
/// as the workload grows (GHOST pays launch latency per sub-batch).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

namespace {

enum class Baseline { Ours, PDedupe, Ghost, CpuOnly };

PipelineReport run(Baseline Kind, unsigned Threads) {
  Platform Plat = Platform::paper();
  Plat.Model.Cpu.Threads = Threads;

  PipelineConfig Config;
  Config.CompressEnabled = false;
  Config.Dedup.Index.BinBits = 8;
  Config.Dedup.Index.BufferCapacityPerBin = 8;
  switch (Kind) {
  case Baseline::Ours:
    Config.Mode = PipelineMode::GpuDedup;
    break;
  case Baseline::PDedupe:
    Config.Mode = PipelineMode::CpuOnly;
    Config.Dedup.SerialIndexing = true;
    break;
  case Baseline::Ghost:
    Config.Mode = PipelineMode::GpuDedup;
    Config.Dedup.OffloadInitial = 1.0;
    Config.Dedup.OffloadFloor = 1.0;
    Config.Dedup.OffloadCeiling = 1.0;
    break;
  case Baseline::CpuOnly:
    Config.Mode = PipelineMode::CpuOnly;
    break;
  }

  WorkloadConfig Load;
  Load.TotalBytes = 16ull << 20;
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  Load.Seed = 1234;
  const ByteVector Data = VdbenchStream(Load).generateAll();

  ReductionPipeline Pipeline(Plat, Config);
  Pipeline.write(ByteSpan(Data.data(), Data.size() / 4)); // warmup
  Pipeline.resetMeasurement();
  Pipeline.write(ByteSpan(Data.data() + Data.size() / 4,
                          Data.size() - Data.size() / 4));
  return Pipeline.report();
}

} // namespace

int main() {
  banner("B1", "related-work baselines: P-Dedupe-style and GHOST-style "
               "dedup (paper §5)");

  std::printf("dedup-only throughput at the paper's 8 threads:\n");
  std::printf("%-34s %12s %12s\n", "design", "IOPS (K)", "bottleneck");
  static const char *Names[] = {
      "bin-based + adaptive GPU (ours)",
      "P-Dedupe-style (serial indexing)",
      "GHOST-style (GPU-only indexing)",
      "bin-based, CPU only",
  };
  const Baseline Kinds[] = {Baseline::Ours, Baseline::PDedupe,
                            Baseline::Ghost, Baseline::CpuOnly};
  double Iops8[4];
  for (int I = 0; I < 4; ++I) {
    const PipelineReport Report = run(Kinds[I], 8);
    Iops8[I] = Report.ThroughputIops;
    std::printf("%-34s %12.1f %12s\n", Names[I],
                Report.ThroughputIops / 1e3,
                resourceName(Report.Bottleneck));
  }

  std::printf("\ncore-count scaling (the P-Dedupe criticism):\n");
  std::printf("%10s %16s %18s %14s\n", "threads", "bin-based (K)",
              "serial index (K)", "ours/serial");
  for (unsigned Threads : {8u, 16u, 32u}) {
    const double Ours = run(Baseline::CpuOnly, Threads).ThroughputIops;
    const double Serial = run(Baseline::PDedupe, Threads).ThroughputIops;
    std::printf("%10u %16.1f %18.1f %13.2fx\n", Threads, Ours / 1e3,
                Serial / 1e3, Ours / Serial);
  }

  std::printf("\n");
  char Measured[96];
  std::snprintf(Measured, sizeof(Measured),
                "ours %.0fK vs GHOST-style %.0fK (+%.0f%%)", Iops8[0] / 1e3,
                Iops8[2] / 1e3, (Iops8[0] / Iops8[2] - 1.0) * 100.0);
  paperRow("adaptive co-processor vs GPU-only", "ours wins (§5)",
           Measured);
  std::snprintf(Measured, sizeof(Measured),
                "equal at 8 threads; gap opens with cores");
  paperRow("bin-parallel vs serial indexing", "ours scales (§5)",
           Measured);
  return 0;
}
