//===----------------------------------------------------------------------===//
///
/// \file
/// E7 — crash-consistency cost (extension): what the metadata
/// write-ahead log charges the write path, and what recovery costs
/// after a crash.
///
///   1. journal overhead: the same stream written plain vs journaled
///      at several group-commit depths. Commits charge only metadata
///      bytes (chunk payloads were already destaged), so the modelled
///      SSD overhead must be small and shrink as commits batch.
///   2. recovery vs log length: fixed volume, growing number of ops
///      since the last checkpoint. Recovery's modelled time must grow
///      with the log.
///   3. recovery vs volume size: fixed data and log, growing address
///      space. Recovery must stay ~flat — it is bounded by the log and
///      the mapped set, not by how large the volume could be.
///
/// Emits BENCH_recovery.json. `--smoke` runs reduced sweeps and only
/// the hard gates (CI).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Volume.h"
#include "journal/JournaledVolume.h"
#include "journal/Recovery.h"
#include "util/Random.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

using namespace padre;
using namespace padre::bench;
using namespace padre::journal;

namespace {

constexpr std::size_t BlockSize = 4096;
const char *WalPath = "bench_recovery.wal";
const char *CkptPath = "bench_recovery.ckpt";

std::unique_ptr<ReductionPipeline> makePipeline() {
  PipelineConfig Config;
  Config.Mode = PipelineMode::CpuOnly;
  Config.Dedup.Index.BinBits = 10;
  return std::make_unique<ReductionPipeline>(Platform::paper(), Config);
}

ByteVector blockOf(std::uint64_t Tag) {
  ByteVector Data(BlockSize);
  Random Rng(Tag * 7919 + 3);
  Rng.fillBytes(Data.data(), Data.size());
  return Data;
}

void removeArtefacts() {
  std::remove(WalPath);
  std::remove(CkptPath);
  std::remove((std::string(CkptPath) + ".tmp").c_str());
}

//===--------------------------------------------------------------===//
// 1. Journal overhead on the write path.
//===--------------------------------------------------------------===//

struct OverheadRow {
  std::size_t GroupCommitOps = 0; ///< 0 = journal off
  double SsdUs = 0.0;
  double OverheadPct = 0.0;
};

double writeStream(Volume &Vol, JournaledVolume *Jv, std::uint64_t Ops,
                   ReductionPipeline &Pipeline) {
  for (std::uint64_t Op = 0; Op < Ops; ++Op) {
    const ByteVector Data = blockOf(Op);
    const std::uint64_t Lba = Op % Vol.blockCount();
    bool Ok;
    if (Jv)
      Ok = Jv->writeBlocks(Lba, ByteSpan(Data.data(), Data.size())).ok();
    else
      Ok = Vol.writeBlocks(Lba, ByteSpan(Data.data(), Data.size()));
    if (!Ok) {
      std::fprintf(stderr, "FATAL: write op %llu rejected\n",
                   static_cast<unsigned long long>(Op));
      std::exit(1);
    }
  }
  if (Jv && !Jv->sync().ok()) {
    std::fprintf(stderr, "FATAL: sync failed\n");
    std::exit(1);
  }
  return Pipeline.ledger().busyMicros(Resource::Ssd);
}

std::vector<OverheadRow> runOverhead(std::uint64_t Ops) {
  std::vector<OverheadRow> Rows;
  double PlainUs = 0.0;
  for (const std::size_t Group : {std::size_t{0}, std::size_t{1},
                                  std::size_t{4}, std::size_t{16}}) {
    removeArtefacts();
    auto Pipeline = makePipeline();
    VolumeConfig VolConfig;
    VolConfig.BlockCount = Ops;
    Volume Vol(*Pipeline, VolConfig);
    double SsdUs;
    if (Group == 0) {
      SsdUs = writeStream(Vol, nullptr, Ops, *Pipeline);
      PlainUs = SsdUs;
    } else {
      JournaledVolumeConfig Config;
      Config.JournalPath = WalPath;
      Config.CheckpointPath = CkptPath;
      Config.GroupCommitOps = Group;
      JournaledVolume Jv(Vol, *Pipeline, Config);
      SsdUs = writeStream(Vol, &Jv, Ops, *Pipeline);
    }
    OverheadRow Row;
    Row.GroupCommitOps = Group;
    Row.SsdUs = SsdUs;
    Row.OverheadPct =
        PlainUs > 0.0 ? (SsdUs / PlainUs - 1.0) * 100.0 : 0.0;
    Rows.push_back(Row);
  }
  return Rows;
}

//===--------------------------------------------------------------===//
// 2 + 3. Recovery cost sweeps.
//===--------------------------------------------------------------===//

struct RecoveryRow {
  std::uint64_t VolumeBlocks = 0;
  std::uint64_t OpsSinceCheckpoint = 0;
  std::uint64_t ReplayedRecords = 0;
  double ModelledUs = 0.0;
};

/// Fills \p BaseOps blocks, checkpoints, runs \p TailOps more ops and
/// measures recovery of the resulting artefacts.
RecoveryRow runRecovery(std::uint64_t VolumeBlocks, std::uint64_t BaseOps,
                        std::uint64_t TailOps) {
  removeArtefacts();
  {
    auto Pipeline = makePipeline();
    VolumeConfig VolConfig;
    VolConfig.BlockCount = VolumeBlocks;
    Volume Vol(*Pipeline, VolConfig);
    JournaledVolumeConfig Config;
    Config.JournalPath = WalPath;
    Config.CheckpointPath = CkptPath;
    JournaledVolume Jv(Vol, *Pipeline, Config);
    for (std::uint64_t Op = 0; Op < BaseOps; ++Op) {
      const ByteVector Data = blockOf(Op);
      if (!Jv.writeBlocks(Op % VolumeBlocks,
                          ByteSpan(Data.data(), Data.size()))
               .ok()) {
        std::fprintf(stderr, "FATAL: base write rejected\n");
        std::exit(1);
      }
    }
    if (!Jv.checkpoint().ok()) {
      std::fprintf(stderr, "FATAL: checkpoint failed\n");
      std::exit(1);
    }
    for (std::uint64_t Op = 0; Op < TailOps; ++Op) {
      const ByteVector Data = blockOf(BaseOps + Op);
      if (!Jv.writeBlocks((BaseOps + Op) % VolumeBlocks,
                          ByteSpan(Data.data(), Data.size()))
               .ok()) {
        std::fprintf(stderr, "FATAL: tail write rejected\n");
        std::exit(1);
      }
    }
    // The frontend is simply abandoned here — the crash.
  }
  auto Fresh = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = VolumeBlocks;
  Volume Restored(*Fresh, VolConfig);
  const RecoveryReport Report =
      recoverVolume(WalPath, CkptPath, *Fresh, Restored);
  if (!Report.ok()) {
    std::fprintf(stderr, "FATAL: recovery failed: %s\n",
                 Report.St.message());
    std::exit(1);
  }
  RecoveryRow Row;
  Row.VolumeBlocks = VolumeBlocks;
  Row.OpsSinceCheckpoint = TailOps;
  Row.ReplayedRecords = Report.ReplayedRecords;
  Row.ModelledUs = Report.ModelledMicros;
  return Row;
}

bool writeJson(const char *Path, const std::vector<OverheadRow> &Overhead,
               const std::vector<RecoveryRow> &LogSweep,
               const std::vector<RecoveryRow> &VolumeSweep) {
  std::FILE *File = std::fopen(Path, "w");
  if (!File)
    return false;
  std::fprintf(File, "{\n  \"experiment\": \"E7-recovery\",\n");
  std::fprintf(File, "  \"overhead\": [\n");
  for (std::size_t I = 0; I < Overhead.size(); ++I)
    std::fprintf(File,
                 "    {\"group_commit\": %zu, \"ssd_us\": %.3f, "
                 "\"overhead_pct\": %.3f}%s\n",
                 Overhead[I].GroupCommitOps, Overhead[I].SsdUs,
                 Overhead[I].OverheadPct,
                 I + 1 < Overhead.size() ? "," : "");
  std::fprintf(File, "  ],\n");
  const auto Sweep = [&](const char *Name,
                         const std::vector<RecoveryRow> &Rows,
                         bool Last) {
    std::fprintf(File, "  \"%s\": [\n", Name);
    for (std::size_t I = 0; I < Rows.size(); ++I)
      std::fprintf(
          File,
          "    {\"volume_blocks\": %llu, \"ops_since_checkpoint\": "
          "%llu, \"replayed\": %llu, \"modelled_us\": %.3f}%s\n",
          static_cast<unsigned long long>(Rows[I].VolumeBlocks),
          static_cast<unsigned long long>(Rows[I].OpsSinceCheckpoint),
          static_cast<unsigned long long>(Rows[I].ReplayedRecords),
          Rows[I].ModelledUs, I + 1 < Rows.size() ? "," : "");
    std::fprintf(File, "  ]%s\n", Last ? "" : ",");
  };
  Sweep("log_scaling", LogSweep, false);
  Sweep("volume_scaling", VolumeSweep, true);
  std::fprintf(File, "}\n");
  std::fclose(File);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  banner("E7", Smoke ? "crash-consistency cost (smoke)"
                     : "crash-consistency cost — journal overhead and "
                       "recovery scaling");

  //===------------------------------------------------------------===//
  // 1. Write-path overhead.
  //===------------------------------------------------------------===//
  const std::uint64_t Ops = Smoke ? 256 : 2048;
  const std::vector<OverheadRow> Overhead = runOverhead(Ops);
  std::printf("\njournal overhead (%llu 4 KiB write ops, modelled SSD "
              "time):\n%14s %14s %12s\n",
              static_cast<unsigned long long>(Ops), "group commit",
              "ssd (ms)", "overhead");
  for (const OverheadRow &Row : Overhead)
    std::printf("%14s %14.3f %11.2f%%\n",
                Row.GroupCommitOps == 0
                    ? "off"
                    : std::to_string(Row.GroupCommitOps).c_str(),
                Row.SsdUs / 1e3, Row.OverheadPct);
  std::printf("expected shape: per-op commits pay the per-I/O floor "
              "(why group commit exists);\nbatching amortizes it down "
              "to the metadata-bytes residue.\n");

  //===------------------------------------------------------------===//
  // 2. Recovery vs log length (fixed volume).
  //===------------------------------------------------------------===//
  const std::uint64_t FixedBlocks = Smoke ? 512 : 2048;
  const std::uint64_t BaseOps = FixedBlocks / 2;
  std::vector<RecoveryRow> LogSweep;
  for (const std::uint64_t Tail :
       Smoke ? std::vector<std::uint64_t>{0, 128}
             : std::vector<std::uint64_t>{0, 64, 256, 1024})
    LogSweep.push_back(runRecovery(FixedBlocks, BaseOps, Tail));
  std::printf("\nrecovery vs ops since checkpoint (%llu-block "
              "volume):\n%18s %12s %14s\n",
              static_cast<unsigned long long>(FixedBlocks),
              "ops since ckpt", "replayed", "modelled (ms)");
  for (const RecoveryRow &Row : LogSweep)
    std::printf("%18llu %12llu %14.3f\n",
                static_cast<unsigned long long>(Row.OpsSinceCheckpoint),
                static_cast<unsigned long long>(Row.ReplayedRecords),
                Row.ModelledUs / 1e3);

  //===------------------------------------------------------------===//
  // 3. Recovery vs volume size (fixed data + log).
  //===------------------------------------------------------------===//
  const std::uint64_t FixedBase = Smoke ? 128 : 256;
  const std::uint64_t FixedTail = Smoke ? 64 : 128;
  std::vector<RecoveryRow> VolumeSweep;
  for (const std::uint64_t Blocks :
       Smoke ? std::vector<std::uint64_t>{1024, 16384}
             : std::vector<std::uint64_t>{1024, 4096, 16384, 65536})
    VolumeSweep.push_back(runRecovery(Blocks, FixedBase, FixedTail));
  std::printf("\nrecovery vs volume size (%llu base ops, %llu logged "
              "ops):\n%16s %12s %14s\n",
              static_cast<unsigned long long>(FixedBase),
              static_cast<unsigned long long>(FixedTail), "volume blocks",
              "replayed", "modelled (ms)");
  for (const RecoveryRow &Row : VolumeSweep)
    std::printf("%16llu %12llu %14.3f\n",
                static_cast<unsigned long long>(Row.VolumeBlocks),
                static_cast<unsigned long long>(Row.ReplayedRecords),
                Row.ModelledUs / 1e3);
  std::printf("expected shape: time follows the log, not the address "
              "space.\n");

  const char *JsonPath = "BENCH_recovery.json";
  if (!writeJson(JsonPath, Overhead, LogSweep, VolumeSweep))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath);
  else
    std::printf("\njson: %s\n", JsonPath);
  removeArtefacts();

  //===------------------------------------------------------------===//
  // Acceptance gates.
  //===------------------------------------------------------------===//
  bool Pass = true;
  // Journaling must cost something (the commits are real I/O)...
  for (const OverheadRow &Row : Overhead)
    if (Row.GroupCommitOps != 0 && Row.OverheadPct <= 0.0) {
      std::fprintf(stderr, "FAIL: group-commit %zu charged no "
                           "overhead\n",
                   Row.GroupCommitOps);
      Pass = false;
    }
  // ...per-op commits pay the per-I/O floor, so batching must shrink
  // the cost monotonically, down to a small residue.
  for (std::size_t I = 2; I < Overhead.size(); ++I)
    if (Overhead[I].SsdUs >= Overhead[I - 1].SsdUs) {
      std::fprintf(stderr,
                   "FAIL: group commit %zu not cheaper than %zu\n",
                   Overhead[I].GroupCommitOps,
                   Overhead[I - 1].GroupCommitOps);
      Pass = false;
    }
  if (Overhead.back().OverheadPct >= 15.0) {
    std::fprintf(stderr,
                 "FAIL: group-commit %zu overhead %.2f%% above the "
                 "15%% bar\n",
                 Overhead.back().GroupCommitOps,
                 Overhead.back().OverheadPct);
    Pass = false;
  }
  // Recovery grows with the log...
  for (std::size_t I = 1; I < LogSweep.size(); ++I)
    if (LogSweep[I].ModelledUs <= LogSweep[I - 1].ModelledUs) {
      std::fprintf(stderr,
                   "FAIL: recovery at %llu ops (%.1fus) not above "
                   "%llu ops (%.1fus)\n",
                   static_cast<unsigned long long>(
                       LogSweep[I].OpsSinceCheckpoint),
                   LogSweep[I].ModelledUs,
                   static_cast<unsigned long long>(
                       LogSweep[I - 1].OpsSinceCheckpoint),
                   LogSweep[I - 1].ModelledUs);
      Pass = false;
    }
  // ...but not with the address space.
  const double Smallest = VolumeSweep.front().ModelledUs;
  const double Largest = VolumeSweep.back().ModelledUs;
  if (Smallest <= 0.0 || Largest / Smallest > 1.5) {
    std::fprintf(stderr,
                 "FAIL: recovery scaled with volume size (%.1fus -> "
                 "%.1fus for %llux the blocks)\n",
                 Smallest, Largest,
                 static_cast<unsigned long long>(
                     VolumeSweep.back().VolumeBlocks /
                     VolumeSweep.front().VolumeBlocks));
    Pass = false;
  }
  if (!Pass)
    return 1;
  std::printf("\nPASS: journal overhead bounded, recovery scales with "
              "the log, not the volume\n");
  return 0;
}
