//===----------------------------------------------------------------------===//
///
/// \file
/// X2 — delta compression potential (extension): how much a
/// similarity-detection + delta-encoding stage adds on top of
/// dedup + LZ for an *evolving dataset* (the workload where exact
/// dedup fails: each version of a chunk differs by a few edits, so the
/// SHA-1s differ, but 95%+ of the bytes are shared).
///
/// Three schemes over the same stream of chunk versions:
///   dedup          exact-duplicate elimination only
///   dedup+lz       the paper's pipeline
///   dedup+lz+delta similarity lookup first; delta against the base
///                  when it beats LZ
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "compress/LzCodec.h"
#include "delta/DeltaCodec.h"
#include "delta/SimilarityIndex.h"
#include "hash/Fingerprint.h"
#include "util/Random.h"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace padre;
using namespace padre::bench;

namespace {

constexpr std::size_t ChunkSize = 4096;

struct SchemeTotals {
  std::uint64_t Logical = 0;
  std::uint64_t DedupOnly = 0;
  std::uint64_t DedupLz = 0;
  std::uint64_t DedupLzDelta = 0;
  std::uint64_t DeltaHits = 0;
  std::uint64_t Uniques = 0;
};

/// Simulates `Versions` generations of a `Chunks`-chunk dataset where
/// each generation edits `EditFraction` of the chunks in place.
SchemeTotals run(unsigned Chunks, unsigned Versions, double EditFraction,
                 std::uint64_t Seed) {
  SchemeTotals Totals;
  const LzCodec Lz(LzCodec::MatcherKind::SingleProbe);
  Random Rng(Seed);

  // Current content of every chunk slot.
  std::vector<ByteVector> Dataset(Chunks);
  for (ByteVector &Chunk : Dataset) {
    Chunk.resize(ChunkSize);
    Rng.fillBytes(Chunk.data(), Chunk.size());
  }

  std::unordered_set<std::string> Seen; // exact-dup filter (hex digests)
  SimilarityIndex Similarity(4096);
  std::unordered_map<std::uint64_t, ByteVector> BaseStore;
  std::uint64_t NextLocation = 0;

  for (unsigned Version = 0; Version < Versions; ++Version) {
    // Edit a fraction of the dataset in place (a few splices each).
    if (Version != 0) {
      for (ByteVector &Chunk : Dataset) {
        if (!Rng.nextBool(EditFraction))
          continue;
        for (int Edit = 0; Edit < 4; ++Edit) {
          const std::size_t At = Rng.nextBelow(Chunk.size() - 32);
          Rng.fillBytes(Chunk.data() + At, 1 + Rng.nextBelow(24));
        }
      }
    }
    // Ingest the full generation.
    for (const ByteVector &Chunk : Dataset) {
      Totals.Logical += Chunk.size();
      const Fingerprint Fp =
          Fingerprint::ofData(ByteSpan(Chunk.data(), Chunk.size()));
      if (!Seen.insert(Fp.hex()).second)
        continue; // exact duplicate: free under every scheme
      ++Totals.Uniques;
      Totals.DedupOnly += Chunk.size();

      const CompressResult LzResult =
          Lz.compress(ByteSpan(Chunk.data(), Chunk.size()));
      const std::size_t LzBytes =
          std::min(LzResult.Payload.size(), Chunk.size());
      Totals.DedupLz += LzBytes;

      // Delta path: similarity lookup, then keep whichever of
      // delta/LZ is smaller.
      std::size_t Best = LzBytes;
      const SuperFeatureSet Fs =
          computeSuperFeatures(ByteSpan(Chunk.data(), Chunk.size()));
      if (const auto Base = Similarity.findBase(Fs)) {
        const ByteVector &BaseChunk = BaseStore[*Base];
        const DeltaResult Delta =
            deltaEncode(ByteSpan(BaseChunk.data(), BaseChunk.size()),
                        ByteSpan(Chunk.data(), Chunk.size()));
        if (Delta.Payload.size() < Best) {
          Best = Delta.Payload.size();
          ++Totals.DeltaHits;
        }
      }
      Totals.DedupLzDelta += Best;

      const std::uint64_t Location = NextLocation++;
      BaseStore[Location] = Chunk;
      Similarity.insert(Fs, Location);
    }
  }
  return Totals;
}

} // namespace

int main() {
  banner("X2", "delta compression on evolving datasets (extension)");

  std::printf("%10s %10s %12s %12s %14s %10s\n", "versions", "edits",
              "dedup x", "dedup+lz x", "dedup+lz+dlt x", "dlt hits");
  for (double EditFraction : {0.1, 0.3, 0.6}) {
    const SchemeTotals Totals = run(/*Chunks=*/256, /*Versions=*/6,
                                    EditFraction, 42);
    std::printf("%10u %9.0f%% %11.2fx %11.2fx %13.2fx %9.0f%%\n", 6u,
                EditFraction * 100.0,
                static_cast<double>(Totals.Logical) / Totals.DedupOnly,
                static_cast<double>(Totals.Logical) / Totals.DedupLz,
                static_cast<double>(Totals.Logical) /
                    Totals.DedupLzDelta,
                100.0 * static_cast<double>(Totals.DeltaHits) /
                    static_cast<double>(Totals.Uniques));
  }

  std::printf("\nexpected shape: the chunk content here is random (LZ "
              "gains ~nothing), and\nedited versions defeat exact dedup "
              "— only the delta stage recovers the\ncross-version "
              "redundancy, with gains shrinking as the edit rate "
              "grows.\n");
  paperRow("delta stage status", "future work (not in paper)",
           "substrate implemented; pipeline integration documented "
           "in DESIGN.md");
  return 0;
}
