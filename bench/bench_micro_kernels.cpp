//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-kernels for the functional substrates: SHA-1
/// fingerprinting, both LZ matchers, GPU lane compression + refinement,
/// bin-index probes and the chunkers. These measure *host* wall time of
/// the functional code (not modelled time) — useful for keeping the
/// simulation itself fast and for profiling regressions.
///
//===----------------------------------------------------------------------===//

#include "chunk/FastCdcChunker.h"
#include "chunk/FixedChunker.h"
#include "chunk/RabinChunker.h"
#include "compress/GpuLaneCompressor.h"
#include "compress/LzCodec.h"
#include "hash/Sha1.h"
#include "index/DedupIndex.h"
#include "util/Random.h"
#include "workload/VdbenchStream.h"

#include <benchmark/benchmark.h>

using namespace padre;

namespace {

ByteVector makeData(std::size_t Size, double CompressRatio) {
  WorkloadConfig Config;
  Config.TotalBytes = std::max<std::size_t>(Size, 4096);
  Config.DedupRatio = 1.0;
  Config.CompressRatio = CompressRatio;
  ByteVector Data = VdbenchStream(Config).generateAll();
  Data.resize(Size);
  return Data;
}

void BM_Sha1(benchmark::State &State) {
  const ByteVector Data = makeData(static_cast<std::size_t>(State.range(0)),
                                   1.0);
  for (auto _ : State) {
    auto Digest = Sha1::digest(ByteSpan(Data.data(), Data.size()));
    benchmark::DoNotOptimize(Digest);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          Data.size());
}
BENCHMARK(BM_Sha1)->Arg(4096)->Arg(65536);

void BM_LzCompress(benchmark::State &State) {
  const auto Kind = State.range(0) == 0 ? LzCodec::MatcherKind::HashChain
                                        : LzCodec::MatcherKind::SingleProbe;
  const LzCodec Codec(Kind);
  const ByteVector Data = makeData(4096, 2.0);
  for (auto _ : State) {
    auto Result = Codec.compress(ByteSpan(Data.data(), Data.size()));
    benchmark::DoNotOptimize(Result);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          Data.size());
}
BENCHMARK(BM_LzCompress)->Arg(0)->Arg(1);

void BM_LzDecompress(benchmark::State &State) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = makeData(4096, 2.0);
  const CompressResult Compressed =
      Codec.compress(ByteSpan(Data.data(), Data.size()));
  for (auto _ : State) {
    ByteVector Out;
    const bool Ok = LzCodec::decompress(
        ByteSpan(Compressed.Payload.data(), Compressed.Payload.size()),
        Data.size(), Out);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(Out);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          Data.size());
}
BENCHMARK(BM_LzDecompress);

void BM_GpuLaneKernel(benchmark::State &State) {
  GpuLaneConfig Config;
  Config.Lanes = static_cast<unsigned>(State.range(0));
  const GpuLaneCompressor Compressor(Config);
  const ByteVector Data = makeData(4096, 2.0);
  for (auto _ : State) {
    auto Outputs = Compressor.runLanes(ByteSpan(Data.data(), Data.size()));
    auto Refined = GpuLaneCompressor::refine(
        Outputs, ByteSpan(Data.data(), Data.size()));
    benchmark::DoNotOptimize(Refined);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          Data.size());
}
BENCHMARK(BM_GpuLaneKernel)->Arg(4)->Arg(8)->Arg(16);

void BM_IndexBatch(benchmark::State &State) {
  DedupIndexConfig Config;
  Config.BinBits = 8;
  DedupIndex Index(Config);
  ThreadPool Pool(static_cast<unsigned>(State.range(0)));

  std::vector<Fingerprint> Fps;
  std::vector<std::uint64_t> Locations;
  for (std::uint64_t I = 0; I < 4096; ++I) {
    std::uint8_t Data[8];
    storeLe64(Data, I);
    Fps.push_back(Fingerprint::ofData(ByteSpan(Data, 8)));
    Locations.push_back(I);
  }
  std::vector<LookupResult> Results(Fps.size());
  std::vector<FlushEvent> Flushes;
  for (auto _ : State) {
    Index.processBatch(Fps, Locations, {}, Pool, Results, Flushes);
    benchmark::DoNotOptimize(Results);
    Flushes.clear();
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(State.iterations()) *
                          static_cast<std::int64_t>(Fps.size()));
}
BENCHMARK(BM_IndexBatch)->Arg(1)->Arg(4);

void BM_Chunker(benchmark::State &State) {
  const ByteVector Data = makeData(1 << 20, 2.0);
  FixedChunker Fixed(4096);
  RabinChunker Rabin;
  FastCdcChunker FastCdc;
  const Chunker *Chunkers[] = {&Fixed, &Rabin, &FastCdc};
  const Chunker *Chunker = Chunkers[State.range(0)];
  for (auto _ : State) {
    std::vector<ChunkView> Chunks;
    Chunker->split(ByteSpan(Data.data(), Data.size()), 0, Chunks);
    benchmark::DoNotOptimize(Chunks);
  }
  State.SetBytesProcessed(static_cast<std::int64_t>(State.iterations()) *
                          Data.size());
  State.SetLabel(Chunker->name());
}
BENCHMARK(BM_Chunker)->Arg(0)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
