//===----------------------------------------------------------------------===//
///
/// \file
/// A4 — the §1 motivation: inline vs background data reduction on SSD
/// write endurance, measured with *real flows*. Background reduction
/// "generates more write I/O than systems without the data reduction
/// operations", which is why the paper applies reduction on the
/// critical (inline) path. Three schemes over the same stream:
///
///   no reduction  raw writes through the volume (writeBlocksRaw)
///   background    raw writes, then core/BackgroundReducer.h sweeps the
///                 volume during "idle time" (reads every block back
///                 and rewrites it reduced)
///   inline        the paper's pipeline on the write path
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/BackgroundReducer.h"
#include "core/Volume.h"

#include <cstdio>
#include <memory>

using namespace padre;
using namespace padre::bench;

namespace {

struct SchemeOutcome {
  std::uint64_t HostMiB = 0;
  double NandMiB = 0.0;
  double Ratio = 0.0;
  double PhysicalMiB = 0.0;
};

SchemeOutcome runScheme(int Scheme, const ByteVector &Data) {
  PipelineConfig Config;
  Config.Mode = PipelineMode::CpuOnly;
  Config.Dedup.Index.BinBits = 8;
  auto Pipeline =
      std::make_unique<ReductionPipeline>(Platform::paper(), Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = Data.size() / Config.ChunkSize;
  Volume Vol(*Pipeline, VolConfig);

  switch (Scheme) {
  case 0: // no reduction
    Vol.writeBlocksRaw(0, ByteSpan(Data.data(), Data.size()));
    break;
  case 1: // background: raw first, reduce when idle
    Vol.writeBlocksRaw(0, ByteSpan(Data.data(), Data.size()));
    backgroundReduce(Vol);
    break;
  default: // inline
    Vol.writeBlocks(0, ByteSpan(Data.data(), Data.size()));
    Vol.flush();
    break;
  }

  SchemeOutcome Outcome;
  Outcome.HostMiB = Pipeline->ssd().hostBytesWritten() >> 20;
  Outcome.NandMiB =
      static_cast<double>(Pipeline->ssd().nandBytesWritten()) / (1 << 20);
  Outcome.Ratio = Pipeline->ssd().enduranceRatio();
  Outcome.PhysicalMiB =
      static_cast<double>(Pipeline->store().storedBytes()) / (1 << 20);
  return Outcome;
}

} // namespace

int main() {
  banner("A4", "inline vs background reduction: SSD endurance "
               "(paper §1 motivation, real flows)");

  WorkloadConfig Load;
  Load.TotalBytes = 16ull << 20;
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  Load.Seed = 99;
  const ByteVector Data = VdbenchStream(Load).generateAll();

  static const char *Names[] = {"no reduction", "background reduction",
                                "inline reduction (ours)"};
  SchemeOutcome Outcomes[3];
  std::printf("%-26s %12s %14s %12s %14s\n", "scheme", "host MiB",
              "NAND MiB", "NAND/host", "resident MiB");
  for (int Scheme = 0; Scheme < 3; ++Scheme) {
    Outcomes[Scheme] = runScheme(Scheme, Data);
    std::printf("%-26s %12llu %14.1f %12.2f %14.2f\n", Names[Scheme],
                static_cast<unsigned long long>(Outcomes[Scheme].HostMiB),
                Outcomes[Scheme].NandMiB, Outcomes[Scheme].Ratio,
                Outcomes[Scheme].PhysicalMiB);
  }

  std::printf("\n");
  paperRow("background reduction endurance", "worse than no reduction",
           Outcomes[1].NandMiB > Outcomes[0].NandMiB
               ? "worse (as predicted)"
               : "NOT worse");
  char Measured[96];
  std::snprintf(Measured, sizeof(Measured),
                "%.0f%% of raw NAND writes; space %.2f -> %.2f MiB",
                Outcomes[2].NandMiB / Outcomes[0].NandMiB * 100.0,
                Outcomes[0].PhysicalMiB, Outcomes[2].PhysicalMiB);
  paperRow("inline reduction", "endurance AND capacity win", Measured);
  std::printf("\nnote: the background scheme ends at the same resident "
              "size as inline\n(%.2f vs %.2f MiB) but paid %.1f MiB of "
              "NAND to get there — §1's point.\n",
              Outcomes[1].PhysicalMiB, Outcomes[2].PhysicalMiB,
              Outcomes[1].NandMiB);
  return 0;
}
