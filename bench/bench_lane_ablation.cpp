//===----------------------------------------------------------------------===//
///
/// \file
/// A5 — ablation of the GPU compression kernel geometry (§3.2(2)):
/// lanes per chunk and history-overlap size. More lanes = more device
/// parallelism per 4 KiB chunk (the paper's answer to Ozsoy et al.'s
/// large-input assumption) but a worse compression ratio; the overlap
/// window buys back ratio at a small redundant-scan cost. Also reports
/// the CPU post-processing share.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "compress/GpuLaneCompressor.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

namespace {

struct LaneOutcome {
  double Ratio = 0.0;       ///< chunk bytes / refined payload bytes
  double RawFraction = 0.0; ///< store-raw fallbacks
};

LaneOutcome measure(unsigned Lanes, std::size_t History,
                    const VdbenchStream &Stream) {
  GpuLaneConfig Config;
  Config.Lanes = Lanes;
  Config.HistoryBytes = History;
  const GpuLaneCompressor Compressor(Config);

  std::uint64_t Original = 0, Stored = 0, Raw = 0, Chunks = 0;
  ByteVector Block(Stream.config().BlockSize);
  for (std::uint64_t I = 0; I < Stream.blockCount(); I += 3) {
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    const LaneOutputs Outputs =
        Compressor.runLanes(ByteSpan(Block.data(), Block.size()));
    const RefinedChunk Refined = GpuLaneCompressor::refine(
        Outputs, ByteSpan(Block.data(), Block.size()));
    Original += Block.size();
    Stored += Refined.Block.size();
    Raw += Refined.StoredRaw;
    ++Chunks;
  }
  LaneOutcome Outcome;
  Outcome.Ratio =
      static_cast<double>(Original) / static_cast<double>(Stored);
  Outcome.RawFraction =
      static_cast<double>(Raw) / static_cast<double>(Chunks);
  return Outcome;
}

} // namespace

int main() {
  banner("A5", "ablation: GPU compression lanes per chunk and history "
               "overlap (paper §3.2(2))");

  WorkloadConfig Load;
  Load.TotalBytes = 8ull << 20;
  Load.DedupRatio = 1.0;
  Load.CompressRatio = 2.0;
  Load.Seed = 7;
  const VdbenchStream Stream(Load);

  std::printf("lane sweep (history 256 B):\n");
  std::printf("%8s %16s %14s\n", "lanes", "compress ratio", "raw fallback");
  for (unsigned Lanes : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const LaneOutcome Outcome = measure(Lanes, 256, Stream);
    std::printf("%8u %15.2fx %13.1f%%\n", Lanes, Outcome.Ratio,
                Outcome.RawFraction * 100.0);
  }

  std::printf("\nhistory-overlap sweep (8 lanes):\n");
  std::printf("%8s %16s %14s\n", "history", "compress ratio",
              "raw fallback");
  for (std::size_t History : {0u, 64u, 128u, 256u, 512u, 1024u}) {
    const LaneOutcome Outcome = measure(8, History, Stream);
    std::printf("%6zu B %15.2fx %13.1f%%\n", History, Outcome.Ratio,
                Outcome.RawFraction * 100.0);
  }

  // Pipeline-level: post-processing share of CPU time in GpuCompress.
  RunSpec Spec;
  Spec.DedupEnabled = false;
  Spec.Mode = PipelineMode::GpuCompress;
  const PipelineReport Report = runSpec(Platform::paper(), Spec);
  std::printf("\npipeline (GpuCompress, comp 2.0): %.1fK IOPS; CPU busy "
              "%.3fs (refinement+request), GPU busy %.3fs\n",
              Report.ThroughputIops / 1e3, Report.CpuBusySec,
              Report.GpuBusySec);

  paperRow("ratio cost of lane parallelism", "accepted trade (§3.2(2))",
           "ratio falls as lanes grow; overlap buys it back");
  return 0;
}
