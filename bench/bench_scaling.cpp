//===----------------------------------------------------------------------===//
///
/// \file
/// S1 — CPU-core scaling of the integration choice (extension of
/// §4(3)): "because hardware specifications may be different on
/// different platforms, we cannot guarantee that this integration is
/// always right." The paper ran on 8 hardware threads; this bench
/// replays the whole integration comparison as the CPU grows, showing
/// the GPU's advantage eroding until the dummy-I/O calibrator flips
/// its verdict back to the CPU — the forward-looking reason the
/// calibration step exists at all.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/Calibrator.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

int main() {
  banner("S1", "integration choice vs CPU core count (extension of "
               "§4(3))");

  std::printf("%10s %12s %12s %12s %12s %16s\n", "threads", "cpu-only",
              "gpu-dedup", "gpu-comp", "gpu-both", "calibrator picks");
  for (unsigned Threads : {4u, 8u, 16u, 32u, 64u}) {
    Platform Plat = Platform::paper();
    Plat.Model.Cpu.Threads = Threads;

    double Iops[PipelineModeCount];
    for (unsigned Mode = 0; Mode < PipelineModeCount; ++Mode) {
      RunSpec Spec;
      Spec.Mode = static_cast<PipelineMode>(Mode);
      Iops[Mode] = runSpec(Plat, Spec).ThroughputIops;
    }
    CalibratorConfig CalConfig;
    CalConfig.Base.Dedup.Index.BinBits = 8;
    const CalibrationResult Verdict = calibrate(Plat, CalConfig);
    std::printf("%10u %11.1fK %11.1fK %11.1fK %11.1fK %16s\n", Threads,
                Iops[0] / 1e3, Iops[1] / 1e3, Iops[2] / 1e3,
                Iops[3] / 1e3, pipelineModeName(Verdict.BestMode));
  }

  std::printf("\nexpected shape: at the paper's 8 threads the GPU "
              "carries compression\n(+~90%%); as cores grow the CPU "
              "pool absorbs compression itself and the\nGPU's fixed "
              "kernel economics stop paying — the calibrator flips to\n"
              "cpu-only, which is precisely why it probes instead of "
              "hard-coding.\n");
  return 0;
}
