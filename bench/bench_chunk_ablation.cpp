//===----------------------------------------------------------------------===//
///
/// \file
/// A2 — ablation of the chunk size (the paper uses 4 KiB chunks for
/// compression, §3.2, and an 8 KiB example for index sizing, §2).
/// Sweeps 4/8/16 KiB on the full integrated pipeline: larger chunks
/// amortize per-chunk costs (higher MB/s) but lower IOPS per chunk and
/// coarsen dedup granularity.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

int main() {
  banner("A2", "ablation: chunk size (integrated pipeline, "
               "dedup 2.0 / comp 2.0)");

  std::printf("%12s %12s %12s %12s %12s\n", "chunk", "IOPS (K)", "MB/s",
              "dedup", "reduction");
  for (std::size_t ChunkKiB : {4u, 8u, 16u}) {
    RunSpec Spec;
    Spec.Mode = PipelineMode::GpuCompress;
    Spec.ChunkSize = ChunkKiB * 1024;
    const PipelineReport Report = runSpec(Platform::paper(), Spec);
    std::printf("%9zu KiB %12.1f %12.1f %11.2fx %11.2fx\n", ChunkKiB,
                Report.ThroughputIops / 1e3, Report.ThroughputMBps,
                Report.DedupRatio, Report.ReductionRatio);
  }

  std::printf("\nindex-memory example (§2): 4 TB at 8 KiB chunks, 32 B "
              "entries -> %.0f GiB;\n2-byte prefix removal saves %.0f GiB "
              "(see bench_prefix_memory).\n",
              (4.0 * (1ull << 40) / 8192) * 32 / (1ull << 30),
              (4.0 * (1ull << 40) / 8192) * 2 / (1ull << 30));
  return 0;
}
