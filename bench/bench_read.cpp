//===----------------------------------------------------------------------===//
///
/// \file
/// R1 / E11 — batched restore with decode v2 (extension; the paper's
/// pipeline is write-only, but a primary system serves reads). Views:
///
///   1. the decode-mode batch-depth sweep — the read-side launch
///      crossover, now three-way: the v1 lane kernel loses to the
///      8-thread CPU pool at shallow depths (LaunchUs dominates) and
///      crosses over near depth ~100, while the v2 warp kernel over
///      framed sub-blocks amortizes the launch into a persistent-kernel
///      doorbell and is expected to beat the CPU pool at *every* depth
///      — killing the crossover. The Auto probe must pick the winner;
///   2. the sub-block ratio sweep — what the framed format costs in
///      compression ratio at counts {1,2,4,8};
///   3. a fault-plan replay — warp dispatches dying mid-run must evict
///      the kernel and fall back to the CPU pool bit-exactly;
///   4. the cache-size sweep and a mixed R/W trace replay (full runs
///      only), the deployment shape.
///
/// Emits BENCH_read.json. Exit status is the acceptance gate (E11):
/// every decoded chunk bit-identical to the serial CPU decode across
/// modes, sub-block counts and fault replays; warp-GPU beats the CPU
/// pool at batch depth <= 16; sub-block ratio loss <= 5% on the
/// vdbench workload. `--smoke` runs a reduced stream and depth set
/// with the same gates (the CI crossover check).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/TraceRunner.h"
#include "restore/VolumeReader.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace padre;
using namespace padre::bench;
using namespace padre::restore;

namespace {

/// Decode-side makespan (s): the busiest compute lane, SSD excluded.
/// Cold full-stream reads are flash-bound end to end, so the CPU/GPU
/// decode contest only shows on the compute lanes (exactly like the
/// write side, where compression hides behind destage until the SSD
/// is taken out of the picture).
double decodeSec(const ReadReport &Report) {
  const double CpuSec =
      Report.CpuBusySec /
      static_cast<double>(Platform::paper().Model.Cpu.Threads);
  return std::max({CpuSec, Report.GpuBusySec, Report.PcieBusySec});
}

/// One measured restore pass over the whole written stream; returns the
/// report and (via \p Restored) the decoded bytes for bit-identity.
ReadReport restorePass(ReductionPipeline &Pipeline, const ReadConfig &Config,
                       ByteVector *Restored = nullptr) {
  ReadPipeline Reader(Pipeline, Config);
  Reader.resetMeasurement();
  auto Out = Reader.readStream(Pipeline.recipe());
  if (!Out) {
    std::fprintf(stderr, "FATAL: restore pass failed to decode\n");
    std::exit(1);
  }
  if (Restored)
    *Restored = std::move(*Out);
  return Reader.report();
}

/// Writes the standard measured stream into a fresh pipeline.
/// \p SubBlocks > 1 stores v2 framed chunks (decode v2's format).
std::unique_ptr<ReductionPipeline>
writtenPipeline(std::uint64_t CacheBytes, const ByteVector &Data,
                unsigned SubBlocks = 1,
                fault::FaultInjector *Faults = nullptr) {
  PipelineConfig Config;
  Config.Mode = PipelineMode::CpuOnly; // write side out of the way
  Config.ReadCacheBytes = CacheBytes;
  Config.Compress.SubBlocks = SubBlocks;
  Config.Faults = Faults;
  auto Pipeline =
      std::make_unique<ReductionPipeline>(Platform::paper(), Config);
  Pipeline->write(ByteSpan(Data.data(), Data.size()));
  Pipeline->finish();
  return Pipeline;
}

ByteVector benchStream(bool Smoke) {
  WorkloadConfig Load;
  Load.BlockSize = 4096;
  Load.TotalBytes = Smoke ? (4ull << 20) : (12ull << 20);
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  Load.Seed = 1234;
  return VdbenchStream(Load).generateAll();
}

/// One depth row of the three-way decode sweep.
struct DepthRow {
  std::size_t Depth = 0;
  double CpuKiops = 0.0;
  double LaneKiops = 0.0;
  double WarpKiops = 0.0;
  const char *ProbePick = "";
  bool BitIdentical = false;
};

/// One sub-block count row of the ratio sweep.
struct RatioRow {
  unsigned SubBlocks = 0;
  std::uint64_t StoredBytes = 0;
  double DeltaPct = 0.0;
  bool BitIdentical = false;
};

bool writeJson(const char *Path, const std::vector<DepthRow> &Depths,
               const std::vector<RatioRow> &Ratios, double FaultFallbacks,
               bool FaultBitIdentical) {
  std::FILE *File = std::fopen(Path, "w");
  if (!File)
    return false;
  std::fprintf(File, "{\n  \"bench\": \"read\",\n  \"depth_rows\": [\n");
  for (std::size_t I = 0; I < Depths.size(); ++I) {
    const DepthRow &R = Depths[I];
    std::fprintf(File,
                 "    {\"depth\": %zu, \"cpu_kiops\": %.2f, "
                 "\"lane_kiops\": %.2f, \"warp_kiops\": %.2f, "
                 "\"probe\": \"%s\", \"bit_identical\": %s}%s\n",
                 R.Depth, R.CpuKiops, R.LaneKiops, R.WarpKiops, R.ProbePick,
                 R.BitIdentical ? "true" : "false",
                 I + 1 < Depths.size() ? "," : "");
  }
  std::fprintf(File, "  ],\n  \"ratio_rows\": [\n");
  for (std::size_t I = 0; I < Ratios.size(); ++I) {
    const RatioRow &R = Ratios[I];
    std::fprintf(File,
                 "    {\"sub_blocks\": %u, \"stored_bytes\": %llu, "
                 "\"ratio_delta_pct\": %.3f, \"bit_identical\": %s}%s\n",
                 R.SubBlocks, static_cast<unsigned long long>(R.StoredBytes),
                 R.DeltaPct, R.BitIdentical ? "true" : "false",
                 I + 1 < Ratios.size() ? "," : "");
  }
  std::fprintf(File,
               "  ],\n  \"fault_replay\": {\"fallbacks\": %.0f, "
               "\"bit_identical\": %s}\n}\n",
               FaultFallbacks, FaultBitIdentical ? "true" : "false");
  std::fclose(File);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  banner("R1/E11", Smoke ? "batched restore, decode v2 (smoke: "
                           "crossover + ratio + fault gates)"
                         : "batched restore: warp decode crossover, "
                           "sub-block ratio, cache tier, R/W mix");

  const ByteVector Data = benchStream(Smoke);

  //===------------------------------------------------------------===//
  // 1. Three-way decode batch-depth sweep (no cache: decode vs decode).
  //    CPU and warp read the framed store; the v1 lane kernel reads the
  //    unframed store (it cannot decode framed payloads — that
  //    asymmetry is decode v2's point, not an unfairness: each decoder
  //    gets the format it was designed for, same logical bytes).
  //===------------------------------------------------------------===//
  std::printf("decode batch-depth sweep (cold reads, no cache, comp 2.0; "
              "decode-limited\nKIOPS = chunks / busiest compute lane — "
              "end-to-end reads are flash-bound):\n");
  std::printf("%8s %12s %12s %12s %10s %8s %6s\n", "depth", "cpu (K)",
              "lane (K)", "warp (K)", "warp/cpu", "probe", "bits");
  const auto Unframed = writtenPipeline(0, Data, 1);
  const auto Framed = writtenPipeline(0, Data, 4);
  std::vector<DepthRow> Depths;
  const auto DepthSet = Smoke
                            ? std::vector<std::size_t>{8, 16, 256}
                            : std::vector<std::size_t>{8, 16, 32, 64, 96,
                                                       128, 256, 512};
  for (const std::size_t Depth : DepthSet) {
    ReadConfig Config;
    Config.BatchDepth = Depth;
    DepthRow Row;
    Row.Depth = Depth;
    ByteVector CpuBytes, LaneBytes, WarpBytes;
    Config.Mode = DecodeMode::Cpu;
    const ReadReport Cpu = restorePass(*Framed, Config, &CpuBytes);
    Config.Mode = DecodeMode::Gpu;
    const ReadReport Lane = restorePass(*Unframed, Config, &LaneBytes);
    Config.Mode = DecodeMode::WarpGpu;
    const ReadReport Warp = restorePass(*Framed, Config, &WarpBytes);
    Config.Mode = DecodeMode::Auto;
    const ReadPipeline Probe(*Framed, Config);
    Row.CpuKiops =
        static_cast<double>(Cpu.ChunksRequested) / decodeSec(Cpu) / 1e3;
    Row.LaneKiops =
        static_cast<double>(Lane.ChunksRequested) / decodeSec(Lane) / 1e3;
    Row.WarpKiops =
        static_cast<double>(Warp.ChunksRequested) / decodeSec(Warp) / 1e3;
    Row.ProbePick = decodeModeName(Probe.effectiveMode());
    Row.BitIdentical =
        CpuBytes == Data && LaneBytes == Data && WarpBytes == Data;
    Depths.push_back(Row);
    std::printf("%8zu %12.1f %12.1f %12.1f %10.2f %8s %6s\n", Depth,
                Row.CpuKiops, Row.LaneKiops, Row.WarpKiops,
                Row.WarpKiops / Row.CpuKiops, Row.ProbePick,
                Row.BitIdentical ? "ok" : "DIFF");
  }
  std::printf("expected shape: cpu flat; lane climbs with depth (LaunchUs "
              "amortized), crossing\ncpu near depth ~100; warp above cpu "
              "at every depth (doorbell, not launch) —\nthe crossover is "
              "gone and the probe picks warp throughout.\n");

  //===------------------------------------------------------------===//
  // 2. Sub-block ratio sweep: what the framed format costs. History
  //    resets shorten matches and the header adds 4 + 8N bytes per
  //    chunk, so stored bytes grow with the sub-block count.
  //===------------------------------------------------------------===//
  std::printf("\nsub-block ratio sweep (same stream, framed store at "
              "count N vs unframed):\n");
  std::printf("%12s %14s %12s %6s\n", "sub-blocks", "stored", "delta",
              "bits");
  const std::uint64_t Baseline = Unframed->store().storedBytes();
  std::vector<RatioRow> Ratios;
  for (const unsigned Count : {1u, 2u, 4u, 8u}) {
    const auto Pipe = writtenPipeline(0, Data, Count);
    RatioRow Row;
    Row.SubBlocks = Count;
    Row.StoredBytes = Pipe->store().storedBytes();
    Row.DeltaPct = 100.0 *
                   (static_cast<double>(Row.StoredBytes) -
                    static_cast<double>(Baseline)) /
                   static_cast<double>(Baseline);
    ReadConfig Config;
    Config.Mode = DecodeMode::WarpGpu;
    ByteVector Restored;
    restorePass(*Pipe, Config, &Restored);
    Row.BitIdentical = Restored == Data;
    Ratios.push_back(Row);
    std::printf("%12u %14s %11.2f%% %6s\n", Count,
                formatSize(Row.StoredBytes).c_str(), Row.DeltaPct,
                Row.BitIdentical ? "ok" : "DIFF");
  }
  std::printf("expected shape: delta grows with N (shorter histories, "
              "bigger headers) but\nstays within the 5%% acceptance bar "
              "— the price of warp independence.\n");

  //===------------------------------------------------------------===//
  // 3. Fault-plan replay: warp dispatches die mid-run; the persistent
  //    kernel is evicted and the CPU pool re-decodes bit-exactly.
  //===------------------------------------------------------------===//
  fault::FaultPlan Plan;
  fault::FaultRule Rule;
  Rule.Site = fault::FaultSite::GpuKernel;
  Rule.Kind = fault::FaultKind::GpuEccError;
  Rule.EveryN = 3;
  Plan.Rules.push_back(Rule);
  fault::FaultInjector Injector(Plan);
  // CpuOnly writes never touch the GPU sites, so the injector only
  // fires on the read side's warp dispatches.
  const auto Faulted = writtenPipeline(0, Data, 4, &Injector);
  ReadConfig FaultConfig;
  FaultConfig.Mode = DecodeMode::WarpGpu;
  FaultConfig.BatchDepth = 32;
  ReadPipeline FaultReader(*Faulted, FaultConfig);
  ByteVector FaultBytes;
  double Fallbacks = 0.0;
  bool FaultBitIdentical = false;
  {
    auto Out = FaultReader.readStream(Faulted->recipe());
    if (!Out) {
      std::fprintf(stderr, "FATAL: faulted restore failed to decode\n");
      return 1;
    }
    FaultBitIdentical = *Out == Data;
    Fallbacks = static_cast<double>(FaultReader.gpuDecodeFallbackCount());
  }
  std::printf("\nfault replay (gpu-kernel ECC every 3rd dispatch, warp "
              "mode, depth 32):\n  fallbacks=%.0f  decode %s\n", Fallbacks,
              FaultBitIdentical ? "bit-identical" : "DIVERGED");

  if (!Smoke) {
    //===----------------------------------------------------------===//
    // 4. Cache-size sweep: cold pass fills, warm pass hits.
    //===----------------------------------------------------------===//
    std::printf("\ncache-size sweep (two full-stream passes, cpu decode, "
                "depth 256):\n");
    std::printf("%10s %12s %14s %14s\n", "cache", "warm hits",
                "cold IOPS (K)", "warm IOPS (K)");
    for (std::uint64_t CacheBytes :
         {0ull, 1ull << 20, 4ull << 20, 16ull << 20, 64ull << 20}) {
      const auto Cached = writtenPipeline(CacheBytes, Data);
      ReadConfig Config;
      Config.Mode = DecodeMode::Cpu;
      const ReadReport Cold = restorePass(*Cached, Config);
      const ReadReport Warm = restorePass(*Cached, Config);
      std::printf("%10s %11.0f%% %14.1f %14.1f\n",
                  CacheBytes == 0 ? "off"
                                  : formatSize(CacheBytes).c_str(),
                  Warm.cacheHitRate() * 100.0, Cold.ThroughputIops / 1e3,
                  Warm.ThroughputIops / 1e3);
    }
    std::printf("expected shape: warm hit rate grows with capacity "
                "(dedup concentrates reads\non shared chunks, so hits "
                "exceed capacity/footprint); warm IOPS follows.\n");

    //===----------------------------------------------------------===//
    // 5. Mixed R/W trace through volume + restore engine.
    //===----------------------------------------------------------===//
    std::printf("\nmixed R/W trace replay (restore reads, paper-pipeline "
                "writes, 16 MiB cache):\n");
    std::printf("%12s %10s %10s %12s %12s\n", "read frac", "reads",
                "writes", "cache hits", "runs");
    for (const double ReadFraction : {0.2, 0.5, 0.8}) {
      PipelineConfig Config;
      Config.Mode = PipelineMode::CpuOnly;
      Config.ReadCacheBytes = 16ull << 20;
      ReductionPipeline Mixed(Platform::paper(), Config);
      VolumeConfig VolConfig;
      VolConfig.BlockCount = 4096;
      Volume Vol(Mixed, VolConfig);
      TraceSynthesisConfig Synth;
      Synth.Operations = 4000;
      Synth.VolumeBlocks = VolConfig.BlockCount;
      Synth.WriteFraction = 0.9 - ReadFraction;
      Synth.ReadFraction = ReadFraction;
      Synth.Seed = 7;
      const TraceLog Log = TraceLog::synthesize(Synth);
      VolumeReader Reader(Vol);
      const TraceRunStats Stats = replayTrace(
          Vol, Log, [&](std::uint64_t Lba, std::uint64_t Count) {
            return Reader.readBlocks(Lba, Count);
          });
      if (!Stats.clean()) {
        std::fprintf(stderr, "FATAL: mixed replay verification failed\n");
        return 1;
      }
      const ReadReport Report = Reader.pipeline().report();
      std::printf("%12.1f %10llu %10llu %11.0f%% %12llu\n", ReadFraction,
                  static_cast<unsigned long long>(Stats.Reads),
                  static_cast<unsigned long long>(Stats.Writes),
                  Report.cacheHitRate() * 100.0,
                  static_cast<unsigned long long>(Report.CoalescedRuns));
    }
    std::printf("expected shape: every mix verifies byte-exact; hot-spot "
                "re-reads hit the cache.\n");
  }

  const char *JsonPath = "BENCH_read.json";
  if (!writeJson(JsonPath, Depths, Ratios, Fallbacks, FaultBitIdentical))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath);
  else
    std::printf("\njson: %s (%zu depth rows, %zu ratio rows)\n", JsonPath,
                Depths.size(), Ratios.size());

  // Gate 1 (E11): bit-identity everywhere — every decode mode at every
  // depth, every sub-block count, and the fault replay must reproduce
  // the original stream exactly.
  for (const DepthRow &R : Depths) {
    if (!R.BitIdentical) {
      std::fprintf(stderr, "FAIL: decode diverged at depth %zu\n", R.Depth);
      return 1;
    }
  }
  for (const RatioRow &R : Ratios) {
    if (!R.BitIdentical) {
      std::fprintf(stderr, "FAIL: decode diverged at sub-blocks=%u\n",
                   R.SubBlocks);
      return 1;
    }
  }
  if (!FaultBitIdentical || Fallbacks == 0.0) {
    std::fprintf(stderr, "FAIL: fault replay %s (fallbacks=%.0f)\n",
                 FaultBitIdentical ? "never exercised the fallback"
                                   : "diverged",
                 Fallbacks);
    return 1;
  }
  std::printf("bit-identity: all modes, depths, sub-block counts and the "
              "fault replay\n");

  // Gate 2 (E11): the tentpole's headline — warp-GPU decode beats the
  // CPU pool at batch depth <= 16, where the v1 lane kernel loses. The
  // crossover is dead.
  for (const DepthRow &R : Depths) {
    if (R.Depth > 16)
      continue;
    std::printf("depth %zu: warp %.1fK vs cpu %.1fK (lane %.1fK)\n",
                R.Depth, R.WarpKiops, R.CpuKiops, R.LaneKiops);
    if (R.WarpKiops <= R.CpuKiops) {
      std::fprintf(stderr,
                   "FAIL: warp decode does not beat the CPU pool at "
                   "depth %zu (E11)\n",
                   R.Depth);
      return 1;
    }
  }

  // Gate 3 (E11): the format tax — sub-block ratio loss <= 5% on the
  // vdbench workload at every supported count.
  for (const RatioRow &R : Ratios) {
    if (R.DeltaPct > 5.0) {
      std::fprintf(stderr,
                   "FAIL: sub-blocks=%u costs %.2f%% ratio, above the "
                   "5%% bar (E11)\n",
                   R.SubBlocks, R.DeltaPct);
      return 1;
    }
  }
  std::printf("PASS: read gates met (crossover killed, ratio tax "
              "bounded, decode bit-exact)\n");
  return 0;
}
