//===----------------------------------------------------------------------===//
///
/// \file
/// R1 — batched restore (extension; the paper's pipeline is
/// write-only, but a primary system serves reads). Three views:
///
///   1. the decode-mode batch-depth sweep — the read-side launch
///      crossover: the GPU lane-decompression kernel loses to the
///      8-thread CPU pool at shallow depths (LaunchUs dominates) and
///      wins once deep batches amortize it, with the Auto probe
///      expected to pick the winner at every depth;
///   2. the cache-size sweep — the DRAM front tier absorbing re-reads
///      (dedup concentrates reads, so even small caches earn hits);
///   3. a mixed R/W trace replay — reads through the restore engine
///      while writes run the paper pipeline, the deployment shape.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/TraceRunner.h"
#include "restore/VolumeReader.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace padre;
using namespace padre::bench;
using namespace padre::restore;

namespace {

/// Decode-side makespan (s): the busiest compute lane, SSD excluded.
/// Cold full-stream reads are flash-bound end to end, so the CPU/GPU
/// decode contest only shows on the compute lanes (exactly like the
/// write side, where compression hides behind destage until the SSD
/// is taken out of the picture).
double decodeSec(const ReadReport &Report) {
  const double CpuSec =
      Report.CpuBusySec /
      static_cast<double>(Platform::paper().Model.Cpu.Threads);
  return std::max({CpuSec, Report.GpuBusySec, Report.PcieBusySec});
}

/// One measured restore pass over the whole written stream.
ReadReport restorePass(ReductionPipeline &Pipeline,
                       const ReadConfig &Config) {
  ReadPipeline Reader(Pipeline, Config);
  Reader.resetMeasurement();
  const auto Restored = Reader.readStream(Pipeline.recipe());
  if (!Restored) {
    std::fprintf(stderr, "FATAL: restore pass failed to decode\n");
    std::exit(1);
  }
  return Reader.report();
}

/// Writes the standard measured stream into a fresh pipeline.
std::unique_ptr<ReductionPipeline> writtenPipeline(std::uint64_t CacheBytes) {
  PipelineConfig Config;
  Config.Mode = PipelineMode::CpuOnly; // write side out of the way
  Config.ReadCacheBytes = CacheBytes;
  WorkloadConfig Load;
  Load.BlockSize = Config.ChunkSize;
  Load.TotalBytes = 12ull << 20;
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  Load.Seed = 1234;
  const ByteVector Data = VdbenchStream(Load).generateAll();
  auto Pipeline =
      std::make_unique<ReductionPipeline>(Platform::paper(), Config);
  Pipeline->write(ByteSpan(Data.data(), Data.size()));
  Pipeline->finish();
  return Pipeline;
}

} // namespace

int main() {
  banner("R1", "batched restore: decode crossover, cache tier, R/W mix "
               "(extension)");

  //===------------------------------------------------------------===//
  // 1. Decode-mode batch-depth sweep (no cache: decode vs decode).
  //===------------------------------------------------------------===//
  std::printf("decode batch-depth sweep (cold reads, no cache, "
              "comp 2.0; decode-limited\nKIOPS = chunks / busiest "
              "compute lane — end-to-end reads are flash-bound):\n");
  std::printf("%8s %14s %14s %10s %12s %8s\n", "depth", "cpu dec (K)",
              "gpu dec (K)", "gpu/cpu", "e2e (K)", "probe");
  const auto Pipeline = writtenPipeline(0);
  for (std::size_t Depth : {8u, 32u, 64u, 96u, 128u, 256u, 512u}) {
    ReadConfig Config;
    Config.BatchDepth = Depth;
    Config.Mode = DecodeMode::Cpu;
    const ReadReport Cpu = restorePass(*Pipeline, Config);
    Config.Mode = DecodeMode::Gpu;
    const ReadReport Gpu = restorePass(*Pipeline, Config);
    Config.Mode = DecodeMode::Auto;
    ReadPipeline Probe(*Pipeline, Config);
    const double CpuDecIops =
        static_cast<double>(Cpu.ChunksRequested) / decodeSec(Cpu);
    const double GpuDecIops =
        static_cast<double>(Gpu.ChunksRequested) / decodeSec(Gpu);
    std::printf("%8zu %14.1f %14.1f %10.2f %12.1f %8s\n", Depth,
                CpuDecIops / 1e3, GpuDecIops / 1e3,
                GpuDecIops / CpuDecIops, Gpu.ThroughputIops / 1e3,
                decodeModeName(Probe.effectiveMode()));
  }
  std::printf("expected shape: cpu flat; gpu climbs with depth "
              "(LaunchUs amortized), crossing\ncpu near depth ~100; "
              "the probe picks the faster side of the crossover.\n");

  //===------------------------------------------------------------===//
  // 2. Cache-size sweep: cold pass fills, warm pass hits.
  //===------------------------------------------------------------===//
  std::printf("\ncache-size sweep (two full-stream passes, cpu "
              "decode, depth 256):\n");
  std::printf("%10s %12s %14s %14s\n", "cache", "warm hits",
              "cold IOPS (K)", "warm IOPS (K)");
  for (std::uint64_t CacheBytes :
       {0ull, 1ull << 20, 4ull << 20, 16ull << 20, 64ull << 20}) {
    const auto Cached = writtenPipeline(CacheBytes);
    ReadConfig Config;
    Config.Mode = DecodeMode::Cpu;
    const ReadReport Cold = restorePass(*Cached, Config);
    const ReadReport Warm = restorePass(*Cached, Config);
    std::printf("%10s %11.0f%% %14.1f %14.1f\n",
                CacheBytes == 0 ? "off"
                                : formatSize(CacheBytes).c_str(),
                Warm.cacheHitRate() * 100.0, Cold.ThroughputIops / 1e3,
                Warm.ThroughputIops / 1e3);
  }
  std::printf("expected shape: warm hit rate grows with capacity "
              "(dedup concentrates reads\non shared chunks, so hits "
              "exceed capacity/footprint); warm IOPS follows.\n");

  //===------------------------------------------------------------===//
  // 3. Mixed R/W trace through volume + restore engine.
  //===------------------------------------------------------------===//
  std::printf("\nmixed R/W trace replay (restore reads, paper-pipeline "
              "writes, 16 MiB cache):\n");
  std::printf("%12s %10s %10s %12s %12s\n", "read frac", "reads",
              "writes", "cache hits", "runs");
  for (const double ReadFraction : {0.2, 0.5, 0.8}) {
    PipelineConfig Config;
    Config.Mode = PipelineMode::CpuOnly;
    Config.ReadCacheBytes = 16ull << 20;
    ReductionPipeline Mixed(Platform::paper(), Config);
    VolumeConfig VolConfig;
    VolConfig.BlockCount = 4096;
    Volume Vol(Mixed, VolConfig);
    TraceSynthesisConfig Synth;
    Synth.Operations = 4000;
    Synth.VolumeBlocks = VolConfig.BlockCount;
    Synth.WriteFraction = 0.9 - ReadFraction;
    Synth.ReadFraction = ReadFraction;
    Synth.Seed = 7;
    const TraceLog Log = TraceLog::synthesize(Synth);
    VolumeReader Reader(Vol);
    const TraceRunStats Stats = replayTrace(
        Vol, Log, [&](std::uint64_t Lba, std::uint64_t Count) {
          return Reader.readBlocks(Lba, Count);
        });
    if (!Stats.clean()) {
      std::fprintf(stderr, "FATAL: mixed replay verification failed\n");
      return 1;
    }
    const ReadReport Report = Reader.pipeline().report();
    std::printf("%12.1f %10llu %10llu %11.0f%% %12llu\n", ReadFraction,
                static_cast<unsigned long long>(Stats.Reads),
                static_cast<unsigned long long>(Stats.Writes),
                Report.cacheHitRate() * 100.0,
                static_cast<unsigned long long>(Report.CoalescedRuns));
  }
  std::printf("expected shape: every mix verifies byte-exact; hot-spot "
              "re-reads hit the cache.\n");
  return 0;
}
