//===----------------------------------------------------------------------===//
///
/// \file
/// E10 — lock-free hot path: modelled dedup-stage throughput of the
/// concurrent sharded index plus multi-buffer batched SHA-1 against the
/// P-Dedupe-style mutexed baseline (SerialIndexing: every index
/// microsecond also holds the capacity-one IndexLock lane). The bench
/// drives DedupEngine directly — hash + probe + maintain only, no
/// chunking overhead, verify or compression — so the CPU-lane charges
/// isolate exactly the stage the hot-path rework touches.
///
/// Rows sweep the two knobs independently (index: mutexed / serial /
/// concurrent-8-shard; hash width: 1 / 8) over one fixed vdbench
/// stream. Functional results — every chunk's outcome and resolved
/// location, the dup/unique totals — must be bit-identical on every
/// row; the throughput column is bytes / makespan over the compute
/// lanes at the paper's 8 hardware threads (CPU pool capacity 8,
/// IndexLock capacity 1).
///
/// Emits BENCH_hotpath.json. Exit status is the acceptance gate:
/// nonzero unless the concurrent index + width-8 hashing beats the
/// mutexed width-1 baseline by >= 2.0x dedup-stage throughput, with
/// zero bit-level change to results. `--smoke` runs a reduced stream
/// and only the baseline/hotpath pair — the CI (and TSan CI) variant.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "core/DedupEngine.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace padre;
using namespace padre::bench;

namespace {

struct HotRow {
  const char *Label;
  bool Mutexed;    ///< SerialIndexing: index time also on IndexLock
  bool Concurrent; ///< lock-free ConcurrentBinIndex
  unsigned Shards;
  unsigned HashWidth;
  std::uint64_t UniqueChunks = 0;
  std::uint64_t DupChunks = 0;
  /// Per-chunk (outcome, location) pairs — the bit-identity witness.
  std::vector<std::uint64_t> Outcomes;
  double DedupStageSec = 0.0; ///< compute-lane makespan at 8 threads
  double ThroughputMBps = 0.0;
};

HotRow runRow(const char *Label, bool Mutexed, bool Concurrent,
              unsigned Shards, unsigned HashWidth, const ByteVector &Data) {
  CostModel Model = Platform::paper().Model;
  Model.Cpu.HashBatchWidth = HashWidth;

  DedupEngineConfig Config;
  Config.Index.BinBits = 8;
  Config.Index.BufferCapacityPerBin = 8;
  Config.Index.Concurrent = Concurrent;
  Config.Index.Shards = Shards;
  Config.SerialIndexing = Mutexed;

  ResourceLedger Ledger;
  ThreadPool Pool(4);
  SsdModel Ssd(Model, Ledger);
  DedupEngine Engine(Model, Ledger, Pool, Ssd, nullptr, Config);

  constexpr std::size_t ChunkSize = 4096;
  constexpr std::size_t BatchChunks = 256;
  HotRow Row;
  Row.Label = Label;
  Row.Mutexed = Mutexed;
  Row.Concurrent = Concurrent;
  Row.Shards = Shards;
  Row.HashWidth = HashWidth;

  std::vector<ChunkView> Views;
  std::vector<std::uint64_t> Locations;
  std::vector<DedupItem> Items;
  std::uint64_t NextLocation = 0;
  for (std::size_t Offset = 0; Offset < Data.size();) {
    Views.clear();
    Locations.clear();
    while (Views.size() < BatchChunks && Offset < Data.size()) {
      const std::size_t Size = std::min(ChunkSize, Data.size() - Offset);
      Views.push_back(ChunkView{ByteSpan(Data.data() + Offset, Size), Offset});
      Locations.push_back(NextLocation++);
      Offset += Size;
    }
    Engine.processBatch(Views, Locations, Items);
    for (const DedupItem &Item : Items) {
      if (Item.Outcome == LookupOutcome::Unique)
        ++Row.UniqueChunks;
      else
        ++Row.DupChunks;
      Row.Outcomes.push_back(static_cast<std::uint64_t>(Item.Outcome));
      Row.Outcomes.push_back(Item.Location);
    }
  }
  Engine.finish();

  Row.DedupStageSec =
      Ledger.makespanSeconds(Model.Cpu.Threads, ComputeResources);
  Row.ThroughputMBps =
      Row.DedupStageSec > 0.0
          ? static_cast<double>(Data.size()) / 1e6 / Row.DedupStageSec
          : 0.0;
  return Row;
}

bool sameResults(const HotRow &A, const HotRow &B) {
  return A.Outcomes == B.Outcomes && A.UniqueChunks == B.UniqueChunks &&
         A.DupChunks == B.DupChunks;
}

bool writeJson(const char *Path, const std::vector<HotRow> &Rows) {
  std::FILE *File = std::fopen(Path, "w");
  if (!File)
    return false;
  std::fprintf(File, "{\n  \"bench\": \"hotpath\",\n  \"rows\": [\n");
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const HotRow &R = Rows[I];
    std::fprintf(File,
                 "    {\"label\": \"%s\", \"mutexed\": %s, "
                 "\"concurrent\": %s, \"shards\": %u, \"hash_width\": %u, "
                 "\"dedup_stage_sec\": %.9f, \"dedup_mbps\": %.3f, "
                 "\"unique_chunks\": %llu, \"dup_chunks\": %llu}%s\n",
                 R.Label, R.Mutexed ? "true" : "false",
                 R.Concurrent ? "true" : "false", R.Shards, R.HashWidth,
                 R.DedupStageSec, R.ThroughputMBps,
                 static_cast<unsigned long long>(R.UniqueChunks),
                 static_cast<unsigned long long>(R.DupChunks),
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(File, "  ]\n}\n");
  std::fclose(File);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  const bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  banner("E10", Smoke ? "lock-free hot path (smoke: mutexed vs "
                        "concurrent+width-8)"
                      : "lock-free sharded index + batched hashing vs "
                        "mutexed baseline");

  WorkloadConfig Load;
  Load.BlockSize = 4096;
  Load.TotalBytes = Smoke ? (4ull << 20) : (16ull << 20);
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  Load.Seed = 4242;
  const ByteVector Data = VdbenchStream(Load).generateAll();

  std::vector<HotRow> Rows;
  Rows.push_back(runRow("mutexed w1", true, false, 1, 1, Data));
  if (!Smoke) {
    Rows.push_back(runRow("serial w1", false, false, 1, 1, Data));
    Rows.push_back(runRow("serial w8", false, false, 1, 8, Data));
    Rows.push_back(runRow("concurrent w1", false, true, 8, 1, Data));
  }
  Rows.push_back(runRow("concurrent w8", false, true, 8, 8, Data));

  std::printf("%-16s %8s %7s %14s %14s %10s\n", "configuration", "shards",
              "width", "stage (s)", "dedup MB/s", "speedup");
  const HotRow &Baseline = Rows.front();
  for (const HotRow &R : Rows) {
    const double Speedup =
        Baseline.DedupStageSec > 0.0 && R.DedupStageSec > 0.0
            ? Baseline.DedupStageSec / R.DedupStageSec
            : 0.0;
    std::printf("%-16s %8u %7u %14.4f %14.1f %9.2fx\n", R.Label,
                R.Concurrent ? R.Shards : 1u, R.HashWidth, R.DedupStageSec,
                R.ThroughputMBps, Speedup);
  }

  const char *JsonPath = "BENCH_hotpath.json";
  if (!writeJson(JsonPath, Rows))
    std::fprintf(stderr, "warning: cannot write %s\n", JsonPath);
  else
    std::printf("\njson: %s (%zu rows)\n", JsonPath, Rows.size());

  // Gate 1: zero bit-level change to results on every row — the same
  // outcome and resolved location for every chunk.
  for (const HotRow &R : Rows) {
    if (!sameResults(Baseline, R)) {
      std::fprintf(stderr, "FAIL: '%s' changed functional results vs '%s'\n",
                   R.Label, Baseline.Label);
      return 1;
    }
  }
  std::printf("\nbit-identity: %zu rows, identical outcomes and "
              "locations for every chunk\n",
              Rows.size());

  // Gate 2: the tentpole's headline number — the lock-free index plus
  // width-8 hashing must at least double modelled dedup-stage
  // throughput at the paper's 8 threads.
  const HotRow &Hot = Rows.back();
  const double Gain = Baseline.DedupStageSec / Hot.DedupStageSec;
  std::printf("concurrent+width-8 vs mutexed width-1: %.2fx dedup-stage "
              "throughput\n",
              Gain);
  if (Gain < 2.0) {
    std::fprintf(stderr, "FAIL: %.2fx below the 2.0x acceptance bar (E10)\n",
                 Gain);
    return 1;
  }
  std::printf("PASS: hot-path gate met\n");
  return 0;
}
