//===----------------------------------------------------------------------===//
///
/// \file
/// E1 — the §3.1(3) preliminary experiment: CPU vs GPU indexing
/// execution time over equal-size tables. The paper reports the CPU
/// 4.16x–5.45x faster, with the GPU's time floored by kernel-launch
/// latency. This bench sweeps the probe-batch size and prints the
/// modelled execution times and their ratio.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "index/CpuBinStore.h"
#include "index/GpuBinTable.h"

#include <cstdio>
#include <vector>

using namespace padre;
using namespace padre::bench;

namespace {

struct IndexingTimes {
  double CpuMicros = 0.0;
  double GpuMicros = 0.0;
  double GpuLaunchShare = 0.0; ///< fraction of GPU time that is launch
};

IndexingTimes measure(std::size_t BatchSize, std::size_t TableEntries) {
  const Platform Plat = Platform::paper();
  const BinLayout Layout(8);

  ResourceLedger Ledger;
  GpuDevice Device(Plat.Model, Ledger);
  GpuBinTable GpuTable(Device, Layout, 256, 1);
  CpuBinStore CpuTable(Layout, 0, 1);

  // Equal entry counts on both sides — the paper's fairness rule.
  std::vector<Fingerprint> Fps;
  Fps.reserve(TableEntries);
  for (std::size_t I = 0; I < TableEntries; ++I) {
    std::uint8_t Data[8];
    storeLe64(Data, I);
    const Fingerprint Fp = Fingerprint::ofData(ByteSpan(Data, 8));
    Fps.push_back(Fp);
    std::uint8_t Suffix[Fingerprint::Size];
    Layout.extractSuffix(Fp, Suffix);
    ByteVector Suffixes(Suffix, Suffix + Layout.suffixBytes());
    CpuTable.mergeRun(Layout.binOf(Fp),
                      ByteSpan(Suffixes.data(), Suffixes.size()), {I});
    GpuTable.applyFlush(Layout.binOf(Fp),
                        ByteSpan(Suffixes.data(), Suffixes.size()), {I});
  }

  IndexingTimes Times;

  // CPU: a hot probe loop.
  for (std::size_t I = 0; I < BatchSize; ++I) {
    std::uint8_t Suffix[Fingerprint::Size];
    const Fingerprint &Fp = Fps[I % Fps.size()];
    Layout.extractSuffix(Fp, Suffix);
    (void)CpuTable.lookup(Layout.binOf(Fp), Suffix);
    Times.CpuMicros += Plat.Model.Cpu.IndexProbeHotUs;
  }

  // GPU: one kernel per batch — DMA digests in, probe, results out.
  Ledger.reset();
  Device.transferToDevice(BatchSize * Fingerprint::Size);
  Device.launchKernel(
      KernelFamily::Indexing,
      static_cast<double>(BatchSize) * Plat.Model.Gpu.ProbePerEntryUs, [&] {
        for (std::size_t I = 0; I < BatchSize; ++I)
          (void)GpuTable.probe(Fps[I % Fps.size()]);
      });
  Device.transferFromDevice(BatchSize * sizeof(std::uint32_t));
  Times.GpuMicros = (Ledger.busySeconds(Resource::Gpu) +
                     Ledger.busySeconds(Resource::Pcie)) *
                    1e6;
  Times.GpuLaunchShare = Plat.Model.Gpu.LaunchUs / Times.GpuMicros;
  return Times;
}

} // namespace

int main() {
  banner("E1", "preliminary: CPU vs GPU indexing execution time "
               "(paper §3.1(3))");
  std::printf("%10s %14s %14s %10s %14s\n", "batch", "cpu (us)", "gpu (us)",
              "gpu/cpu", "launch share");

  double MinRatio = 1e9, MaxRatio = 0.0;
  for (std::size_t BatchSize : {128u, 192u, 256u, 384u, 512u, 768u, 1024u}) {
    const IndexingTimes Times = measure(BatchSize, 4096);
    const double Ratio = Times.GpuMicros / Times.CpuMicros;
    MinRatio = std::min(MinRatio, Ratio);
    MaxRatio = std::max(MaxRatio, Ratio);
    std::printf("%10zu %14.1f %14.1f %9.2fx %13.0f%%\n", BatchSize,
                Times.CpuMicros, Times.GpuMicros, Ratio,
                Times.GpuLaunchShare * 100.0);
  }

  std::printf("\n");
  char Measured[64];
  std::snprintf(Measured, sizeof(Measured), "%.2fx – %.2fx", MinRatio,
                MaxRatio);
  paperRow("CPU faster than GPU by", "4.16x – 5.45x", Measured);
  paperRow("GPU time floored by kernel launch", "yes (\"fixed\")",
           MinRatio > 1.0 ? "yes" : "no");
  return 0;
}
