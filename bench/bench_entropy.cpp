//===----------------------------------------------------------------------===//
///
/// \file
/// X1 — the Huffman entropy-stage extension: compression ratio and
/// throughput with and without the LZ+Huffman second stage, across
/// workload compressibility and both backends. The classic Deflate
/// trade: more CPU cycles per chunk for a better ratio.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace padre;
using namespace padre::bench;

int main() {
  banner("X1", "LZ+Huffman entropy stage: ratio vs throughput "
               "(extension)");

  std::printf("%-14s %10s %8s %12s %12s %12s %12s\n", "mode", "content",
              "comp", "plain x", "entropy x", "plain IOPS",
              "entropy IOPS");
  for (PipelineMode Mode :
       {PipelineMode::CpuOnly, PipelineMode::GpuCompress}) {
    // 256-symbol cells are true random bytes (entropy coding declines);
    // 16-symbol cells model text-like content (4 bits/byte of real
    // entropy that LZ cannot reach but Huffman can).
    for (unsigned Alphabet : {256u, 16u}) {
      for (double Ratio : {1.5, 2.0, 4.0}) {
        RunSpec Spec;
        Spec.Mode = Mode;
        Spec.DedupEnabled = false;
        Spec.CompressRatio = Ratio;
        Spec.DedupRatio = 1.0;
        Spec.ContentAlphabet = Alphabet;
        Spec.MeasureBytes = 8ull << 20;
        Spec.WarmupBytes = 2ull << 20;

        Spec.EntropyStage = false;
        const PipelineReport Plain = runSpec(Platform::paper(), Spec);
        Spec.EntropyStage = true;
        const PipelineReport Entropy = runSpec(Platform::paper(), Spec);

        std::printf(
            "%-14s %10s %8.1f %11.2fx %11.2fx %11.1fK %11.1fK\n",
            pipelineModeName(Mode),
            Alphabet == 256 ? "random" : "text-like", Ratio,
            Plain.CompressRatio, Entropy.CompressRatio,
            Plain.ThroughputIops / 1e3, Entropy.ThroughputIops / 1e3);
      }
    }
  }

  std::printf("\nexpected shape: the entropy stage never stores more "
              "bytes and costs\nthroughput on the CPU path; on the GPU "
              "path the Huffman pass joins the\nCPU post-processing, so "
              "the throughput cost appears only once the CPU\nbecomes "
              "the bottleneck.\n");
  return 0;
}
