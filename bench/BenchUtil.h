//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the experiment benches: steady-state pipeline
/// runs over vdbench-style streams and paper-vs-measured row printing.
/// Every bench regenerates one table/figure from the paper's §4 (see
/// DESIGN.md §4 and EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_BENCH_BENCHUTIL_H
#define PADRE_BENCH_BENCHUTIL_H

#include "core/ReductionPipeline.h"
#include "workload/VdbenchStream.h"

#include <cstdio>

namespace padre {
namespace bench {

/// Default experiment knobs (scaled-down stream; see DESIGN.md §1).
struct RunSpec {
  PipelineMode Mode = PipelineMode::CpuOnly;
  bool DedupEnabled = true;
  bool CompressEnabled = true;
  double DedupRatio = 2.0;
  double CompressRatio = 2.0;
  std::size_t ChunkSize = 4096;
  std::uint64_t WarmupBytes = 4ull << 20;
  std::uint64_t MeasureBytes = 12ull << 20;
  std::uint64_t Seed = 1234;
  unsigned BinBits = 8;
  std::size_t BufferCapacityPerBin = 8;
  bool EntropyStage = false;
  std::size_t BatchChunks = 256;
  unsigned ContentAlphabet = 256;
  /// In-flight write batches for the pipelined scheduler (E6).
  /// Depth 1 reproduces the serial stage chain exactly.
  std::size_t PipelineDepth = 4;
  /// Optional observability sinks (non-owning). When set, the measured
  /// phase records spans/metrics — spans from the warmup are cleared by
  /// resetMeasurement alongside the ledger.
  obs::TraceRecorder *Trace = nullptr;
  obs::MetricsRegistry *Metrics = nullptr;
};

/// Runs one steady-state pipeline measurement.
inline PipelineReport runSpec(const Platform &Plat, const RunSpec &Spec) {
  PipelineConfig Config;
  Config.Mode = Spec.Mode;
  Config.ChunkSize = Spec.ChunkSize;
  Config.DedupEnabled = Spec.DedupEnabled;
  Config.CompressEnabled = Spec.CompressEnabled;
  Config.Dedup.Index.BinBits = Spec.BinBits;
  Config.Dedup.Index.BufferCapacityPerBin = Spec.BufferCapacityPerBin;
  Config.Compress.EntropyStage = Spec.EntropyStage;
  Config.BatchChunks = Spec.BatchChunks;
  Config.PipelineDepth = Spec.PipelineDepth;
  Config.Trace = Spec.Trace;
  Config.Metrics = Spec.Metrics;

  WorkloadConfig Load;
  Load.BlockSize = Spec.ChunkSize;
  Load.TotalBytes = Spec.WarmupBytes + Spec.MeasureBytes;
  Load.DedupRatio = Spec.DedupRatio;
  Load.CompressRatio = Spec.CompressRatio;
  Load.Seed = Spec.Seed;
  Load.ContentAlphabet = Spec.ContentAlphabet;
  const VdbenchStream Stream(Load);
  const ByteVector Data = Stream.generateAll();

  ReductionPipeline Pipeline(Plat, Config);
  Pipeline.write(ByteSpan(Data.data(), Spec.WarmupBytes));
  Pipeline.resetMeasurement();
  Pipeline.write(ByteSpan(Data.data() + Spec.WarmupBytes,
                          Spec.MeasureBytes));
  return Pipeline.report();
}

/// Prints the bench banner.
inline void banner(const char *Id, const char *Title) {
  std::printf("================================================================"
              "================\n");
  std::printf("%s — %s\n", Id, Title);
  std::printf("platform: %s (modelled time; see EXPERIMENTS.md)\n",
              Platform::paper().Name.c_str());
  std::printf("================================================================"
              "================\n");
}

/// Prints one "paper vs measured" comparison row.
inline void paperRow(const char *Label, const char *PaperValue,
                     const char *MeasuredValue) {
  std::printf("  %-38s paper: %-18s measured: %s\n", Label, PaperValue,
              MeasuredValue);
}

} // namespace bench
} // namespace padre

#endif // PADRE_BENCH_BENCHUTIL_H
